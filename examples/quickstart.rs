//! Quickstart: put a delay guard in front of an embedded database.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Shows the core loop of the paper: the engine learns per-tuple
//! popularity from the query stream and charges each returned tuple a
//! delay inversely related to it — popular lookups become free, obscure
//! ones stay expensive, and a full-table crawl is charged a fortune.

use delayguard::core::{GuardConfig, GuardedDatabase};

fn main() {
    let db = GuardedDatabase::new(GuardConfig::paper_default());

    // Schema + data: a tiny movie directory.
    db.execute_at(
        "CREATE TABLE movies (id INT NOT NULL, title TEXT NOT NULL, gross FLOAT)",
        0.0,
    )
    .unwrap();
    db.execute_at("CREATE UNIQUE INDEX movies_pk ON movies (id)", 0.0)
        .unwrap();
    db.execute_at(
        "INSERT INTO movies VALUES \
         (1, 'Spider-Man', 403.7), \
         (2, 'The Two Towers', 339.8), \
         (3, 'Attack of the Clones', 302.2), \
         (4, 'Signs', 228.0), \
         (5, 'Austin Powers in Goldmember', 213.1)",
        0.0,
    )
    .unwrap();

    // Before anything is learned, every lookup pays the 10-second cap
    // (start-up transient, §2.3 of the paper).
    let first = db
        .execute_at("SELECT title FROM movies WHERE id = 1", 1.0)
        .unwrap();
    println!(
        "cold lookup of id=1          -> delay {:6.3} s",
        first.delay_secs
    );

    // Popularity accrues: the crowd hammers Spider-Man.
    for t in 0..500 {
        db.execute_at("SELECT title FROM movies WHERE id = 1", 2.0 + t as f64)
            .unwrap();
    }

    let hot = db
        .execute_at("SELECT title FROM movies WHERE id = 1", 600.0)
        .unwrap();
    let cold = db
        .execute_at("SELECT title FROM movies WHERE id = 5", 600.0)
        .unwrap();
    println!(
        "popular lookup of id=1       -> delay {:6.3} s",
        hot.delay_secs
    );
    println!(
        "unpopular lookup of id=5     -> delay {:6.3} s",
        cold.delay_secs
    );

    // An extraction attempt returns every tuple and is charged the
    // aggregate of per-tuple delays (§2.1).
    let crawl = db.execute_at("SELECT * FROM movies", 601.0).unwrap();
    println!(
        "full crawl ({} tuples)        -> delay {:6.3} s",
        crawl.tuples_charged, crawl.delay_secs
    );

    assert!(hot.delay_secs < cold.delay_secs);
    assert!(crawl.delay_secs > cold.delay_secs);
    println!("\nthe popular path is fast; wholesale copying is not.");
}
