//! Defeating parallel extraction: the gatekeeper (§2.4).
//!
//! ```text
//! cargo run --release --example sybil_defense
//! ```
//!
//! Per-tuple delay punishes one identity; an adversary who can mint
//! identities extracts in parallel and pays only the maximum share. The
//! gatekeeper closes that hole with registration throttling, per-subnet
//! aggregate budgets, and storefront flagging — and the §2.4 economics
//! say how to size the registration interval.

use delayguard::core::analysis::{registration_interval_for, sybil_optimum};
use delayguard::core::gatekeeper::{
    Admission, Gatekeeper, GatekeeperConfig, Ipv4, RegistrationOutcome, RegistrationPolicy,
};
use delayguard::workload::{ExtractionOrder, SybilPlan};

fn main() {
    // Suppose the delay policy charges a lone extractor 30 days.
    let total_delay = 30.0 * 24.0 * 3600.0;

    println!(
        "single-identity extraction cost: {:.1} days\n",
        total_delay / 86_400.0
    );
    println!("parallel attack economics (registration interval t, optimal fleet k):");
    for t_register in [1.0, 60.0, 3600.0] {
        let (k, wall) = sybil_optimum(total_delay, t_register);
        println!(
            "  t = {:>6.0} s  ->  k* = {:>6.0} identities, wall clock {:>6.2} days",
            t_register,
            k,
            wall / 86_400.0
        );
    }
    let t_needed = registration_interval_for(total_delay, 0.5);
    println!(
        "\nto keep any parallel attack above 50% of the serial cost, register at most one\naccount every {t_needed:.0} s ({:.1} h)\n",
        t_needed / 3600.0
    );

    // Enforce it.
    let mut keeper = Gatekeeper::new(GatekeeperConfig {
        per_user_rate: 2.0,
        per_user_burst: 5.0,
        per_subnet_rate: 4.0,
        per_subnet_burst: 10.0,
        registration: RegistrationPolicy::interval(t_needed),
        storefront_query_threshold: 20,
    });

    // The adversary scripts registrations from one /24.
    let mut admitted = Vec::new();
    let mut refused = 0;
    for i in 0..50u8 {
        let ip = Ipv4::parse(&format!("198.51.100.{i}")).unwrap();
        match keeper.register(ip, i as f64) {
            RegistrationOutcome::Admitted { user, .. } => admitted.push(user),
            RegistrationOutcome::TooSoon { .. } => refused += 1,
        }
    }
    println!(
        "sybil registration burst: {} admitted, {refused} throttled (interval {:.0} s)",
        admitted.len(),
        t_needed
    );

    // Whatever identities exist share one subnet budget.
    let mut granted = 0;
    let mut denied = 0;
    for round in 0..100 {
        for &user in &admitted {
            match keeper.admit(user, 1_000.0 + round as f64 * 0.1) {
                Admission::Granted => granted += 1,
                Admission::Refused(_) => denied += 1,
            }
        }
    }
    println!("same-/24 query storm: {granted} granted, {denied} refused by aggregate budget");

    // A storefront forwarding thousands of user queries gets flagged.
    let shop = match keeper.register(Ipv4::parse("203.0.113.7").unwrap(), 1e6) {
        RegistrationOutcome::Admitted { user, .. } => user,
        other => panic!("{other:?}"),
    };
    let mut t = 2e6;
    for _ in 0..60 {
        keeper.admit(shop, t);
        t += 1.0;
    }
    println!(
        "storefront suspects after 60 forwarded queries: {:?}",
        keeper.storefront_suspects()
    );

    // And even with k identities, the wall clock is bounded by the max
    // partition — concentrated delays defeat parallelism outright.
    let plan = SybilPlan {
        identities: admitted.len().max(1),
        order: ExtractionOrder::Sequential,
    };
    let per_key_delay = 10.0; // everything at the cap: worst case for us
    let wall = plan.wall_clock(100_000, |_| per_key_delay);
    println!(
        "\neven with {} identities and a 100k-tuple capped dataset, extraction wall clock\nis still {:.1} days per identity-partition",
        plan.identities,
        wall / 86_400.0
    );
}
