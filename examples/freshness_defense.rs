//! The update-rate defense: whatever you steal is already stale (§3).
//!
//! ```text
//! cargo run --release --example freshness_defense
//! ```
//!
//! When access patterns are uniform the popularity scheme has nothing to
//! exploit — but update rates are rarely uniform. Charging delay inversely
//! to a tuple's update rate guarantees (Eq. 12) that by the time an
//! extraction finishes, a tunable fraction of the copy is obsolete.

use delayguard::core::UpdateDelayPolicy;
use delayguard::sim::{extract_update_based, fmt_pct, fmt_secs, uniform_user_median_delay};
use delayguard::workload::{ExtractionOrder, UpdateRates};

fn main() {
    let n = 50_000u64;
    let alpha = 1.0;
    let rates = UpdateRates::zipf(n, alpha, n as f64, 7);
    println!(
        "dataset: {n} tuples, Zipf({alpha}) update rates, {:.0} updates/s total\n",
        rates.total_rate()
    );

    // Pick c for a target staleness guarantee.
    for target in [0.25, 0.5, 0.9] {
        let policy = UpdateDelayPolicy::for_staleness(target, alpha).with_cap(10.0);
        let report = extract_update_based(&rates, &policy, ExtractionOrder::Sequential);
        let stale_paper = report.schedule.paper_stale_fraction(&rates);
        let stale_expected = report.schedule.expected_stale_fraction(&rates);
        let stale_mc = report.schedule.simulated_stale_fraction(&rates, 99);
        println!("target staleness {:>4}:", fmt_pct(target));
        println!("  chosen c                    : {:.4}", policy.c);
        println!(
            "  median user delay (uniform) : {}",
            fmt_secs(uniform_user_median_delay(&rates, &policy))
        );
        println!(
            "  extraction takes            : {}",
            fmt_secs(report.total_delay_secs)
        );
        println!(
            "  stale on completion         : {} (Eq.10 criterion), {} (Poisson expected), {} (Monte-Carlo)",
            fmt_pct(stale_paper),
            fmt_pct(stale_expected),
            fmt_pct(stale_mc)
        );
        println!(
            "  Eq. 12 prediction           : {}\n",
            fmt_pct(policy.smax(alpha))
        );
    }

    println!("the adversary can have speed or freshness — never both.");
}
