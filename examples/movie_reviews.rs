//! A movie-review site with fast-shifting popularity (paper §4.2).
//!
//! ```text
//! cargo run --release --example movie_reviews
//! ```
//!
//! Box-office popularity shifts weekly: new releases surge, then fade.
//! This example synthesizes a 52-week season (Figures 2–3), generates the
//! request stream (one per $100k of weekly sales), and sweeps the decay
//! rate applied at weekly boundaries — the Table 4 experiment — showing
//! how decay keeps the scheme tracking a moving distribution.

use delayguard::core::access::FmaxMode;
use delayguard::core::AccessDelayPolicy;
use delayguard::sim::{fmt_dollars, fmt_secs, replay, DecayMode, ReplayConfig};
use delayguard::workload::{BoxOfficeConfig, WEEK_SECS};

fn main() {
    let season = BoxOfficeConfig::default().generate();
    let trace = season.trace();
    println!(
        "season: {} films, {} weeks, {} review requests\n",
        season.films(),
        season.weeks(),
        trace.len()
    );

    println!("top 5 by annual sales (flat, Fig. 2):");
    for (rank, (film, sales)) in season.top_annual(5).into_iter().enumerate() {
        println!("  #{:<2} film {:<4} {}", rank + 1, film, fmt_dollars(sales));
    }
    println!("top 5 in week 1 alone (sharp, Fig. 3):");
    for (rank, (film, sales)) in season.top_week(0, 5).into_iter().enumerate() {
        println!("  #{:<2} film {:<4} {}", rank + 1, film, fmt_dollars(sales));
    }

    println!("\nweekly-boundary decay sweep (Table 4):");
    println!(
        "{:>10} | {:>18} | {:>16}",
        "decay", "median user delay", "adversary delay"
    );
    for rate in [1.0, 1.1, 1.5, 2.0, 5.0] {
        let config = ReplayConfig {
            policy: AccessDelayPolicy::new(1.5, 1.0)
                .with_cap(10.0)
                .with_fmax_mode(FmaxMode::RawCount),
            decay: DecayMode::PerBoundary {
                rate,
                period_secs: WEEK_SECS,
            },
            pretrack_all: true,
        };
        let result = replay(&trace, &config);
        println!(
            "{:>10.2} | {:>18} | {:>16}",
            rate,
            fmt_secs(result.median_user_delay_secs()),
            fmt_secs(result.adversary_total_secs)
        );
    }
    println!(
        "\nmax possible adversary delay: {}",
        fmt_secs(season.films() as f64 * 10.0)
    );
    println!(
        "stronger decay forgets last month's hits faster, pushing an extractor toward the maximum."
    );
}
