//! Server demo: the delay defense enforced over a real TCP connection.
//!
//! ```text
//! cargo run --release --example server_demo
//! ```
//!
//! Boots a guarded database behind `delayguard-server` on an ephemeral
//! loopback port, registers an identity through the gatekeeper, and runs
//! three queries that show the paper's economics *on the wire*: a popular
//! tuple streams back almost immediately, an obscure one waits out the
//! policy cap, and an unregistered caller is refused outright. Finishes
//! with the `STATS` verb and a graceful drain.

use delayguard::core::access::AccessDelayPolicy;
use delayguard::core::gatekeeper::{GatekeeperConfig, RegistrationPolicy};
use delayguard::core::{ChargingModel, GuardConfig, GuardPolicy, GuardedDatabase};
use delayguard::server::client::{Client, QueryOutcome, RegisterOutcome};
use delayguard::server::server::{Server, ServerConfig};
use delayguard::sim::Registry;
use std::sync::Arc;

fn main() {
    // A small directory with a modest 1.5 s delay cap so the demo is
    // quick; paper deployments use 10 s.
    let config = GuardConfig::paper_default()
        .with_policy(GuardPolicy::AccessRate(
            AccessDelayPolicy::new(1.5, 1.0).with_cap(1.5),
        ))
        .with_charging(ChargingModel::PerQueryMax);
    let db = GuardedDatabase::new(config);
    db.execute_at(
        "CREATE TABLE directory (id INT NOT NULL, entry TEXT NOT NULL)",
        0.0,
    )
    .unwrap();
    db.execute_at("CREATE UNIQUE INDEX directory_pk ON directory (id)", 0.0)
        .unwrap();
    for id in 0..100 {
        db.execute_at(
            &format!("INSERT INTO directory VALUES ({id}, 'entry-{id}')"),
            0.0,
        )
        .unwrap();
    }
    // Simulate a history of legitimate traffic: everyone asks for entry 7.
    for t in 0..500 {
        db.execute_at("SELECT entry FROM directory WHERE id = 7", t as f64)
            .unwrap();
    }

    let server_config = ServerConfig {
        gatekeeper: GatekeeperConfig {
            registration: RegistrationPolicy::interval(0.0),
            ..GatekeeperConfig::default()
        },
        ..ServerConfig::default()
    };
    let handle = Server::start("127.0.0.1:0", server_config, Arc::new(db), Registry::new())
        .expect("server starts");
    println!("server listening on {}", handle.addr());

    // An unregistered caller gets an explicit refusal, not a timeout.
    let mut stranger = Client::connect(handle.addr()).unwrap();
    match stranger
        .query(424_242, "SELECT entry FROM directory WHERE id = 7")
        .unwrap()
    {
        QueryOutcome::Refused { reason, .. } => {
            println!("unregistered query refused: {reason:?}")
        }
        other => println!("unexpected: {other:?}"),
    }

    // Register, then compare a popular and an unpopular lookup.
    let mut client = Client::connect(handle.addr()).unwrap();
    let user = match client.register().unwrap() {
        RegisterOutcome::Registered { user, .. } => user,
        other => panic!("registration refused: {other:?}"),
    };
    println!("registered as user {user}");

    for (label, sql) in [
        (
            "popular  (id=7) ",
            "SELECT entry FROM directory WHERE id = 7",
        ),
        (
            "obscure  (id=83)",
            "SELECT entry FROM directory WHERE id = 83",
        ),
    ] {
        match client.query(user, sql).unwrap() {
            QueryOutcome::Rows {
                rows,
                delay_secs,
                elapsed,
                ..
            } => println!(
                "{label}: {} row(s), charged {delay_secs:.3}s, served in {:.3}s",
                rows.len(),
                elapsed.as_secs_f64()
            ),
            other => println!("{label}: {other:?}"),
        }
    }

    println!("\n--- STATS ---\n{}", client.stats().unwrap());
    drop(client);
    drop(stranger);
    handle.shutdown();
    println!("server drained and stopped");
}
