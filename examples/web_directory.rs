//! A web-directory provider under extraction attack (paper §4.1).
//!
//! ```text
//! cargo run --release --example web_directory
//! ```
//!
//! Replays a year of Calgary-shaped legitimate traffic against the
//! learn→rank→delay pipeline, then totals what a sequential extraction
//! robot would pay with the learned statistics — the Table 2/3 setup.

use delayguard::core::AccessDelayPolicy;
use delayguard::sim::{fmt_secs, replay_keys, DecayMode, ReplayConfig};
use delayguard::workload::CalgaryConfig;

fn main() {
    // A directory the size of the paper's Calgary trace.
    let trace = CalgaryConfig {
        objects: 12_179,
        requests: 725_091,
        alpha: 1.5,
        inter_arrival_secs: 43.5,
        seed: 2026,
    };
    println!(
        "directory: {} records; replaying {} legitimate requests...\n",
        trace.objects, trace.requests
    );

    for cap in [1.0, 10.0, 100.0] {
        let config = ReplayConfig {
            policy: AccessDelayPolicy::new(1.5, 1.0).with_cap(cap),
            decay: DecayMode::PerRequest(1.0),
            pretrack_all: true,
        };
        let result = replay_keys(trace.key_stream(), trace.objects, &config, 1);
        println!("cap = {cap:>5.1} s:");
        println!(
            "  median legitimate-user delay : {}",
            fmt_secs(result.median_user_delay_secs())
        );
        println!(
            "  p99 legitimate-user delay    : {}",
            fmt_secs(delayguard::sim::Quantiles::of(result.delays.clone()).p99())
        );
        println!(
            "  full-extraction delay        : {}  ({} of the N x cap maximum)",
            fmt_secs(result.adversary_total_secs),
            delayguard::sim::fmt_pct(result.fraction_of_max()),
        );
        let ratio = result.adversary_total_secs / result.median_user_delay_secs().max(1e-9);
        println!("  adversary / median-user      : {ratio:.2e}\n");
    }

    println!("raising the cap punishes extraction without touching the median user.");
}
