//! End-to-end tests against a live server on an ephemeral port:
//! concurrent clients observing the delay policy on the wire, explicit
//! refusals for unregistered / rate-exhausted identities, graceful
//! shutdown delivering in-flight delayed tuples, and 10 000 concurrent
//! delays on a single scheduler thread.
//!
//! These genuinely sleep: every enforced cap is paid in wall clock, so
//! the caps here are the smallest that still order events reliably
//! (suite runtime ~1.7 s, down from ~2.9 s). The same scenarios run with
//! exact arithmetic and zero real waiting in
//! `crates/testkit/tests/virtual_time.rs`; this suite remains as the
//! real-socket smoke check.

use delayguard_core::access::AccessDelayPolicy;
use delayguard_core::config::GuardConfig;
use delayguard_core::gatekeeper::{GatekeeperConfig, RegistrationPolicy};
use delayguard_core::policy::{ChargingModel, GuardPolicy};
use delayguard_core::GuardedDatabase;
use delayguard_server::client::{Client, MutateOutcome, QueryOutcome, RegisterOutcome};
use delayguard_server::protocol::RefuseReason;
use delayguard_server::server::{Server, ServerConfig, ServerHandle};
use delayguard_sim::{MetricValue, Registry};
use std::sync::Arc;
use std::time::Duration;

/// A guarded database with `rows` directory entries and a delay cap of
/// `cap_secs` per tuple under `charging`.
fn seeded_db(rows: usize, cap_secs: f64, charging: ChargingModel) -> Arc<GuardedDatabase> {
    let config = GuardConfig::paper_default()
        .with_policy(GuardPolicy::AccessRate(
            AccessDelayPolicy::new(1.5, 1.0).with_cap(cap_secs),
        ))
        .with_charging(charging);
    let db = GuardedDatabase::new(config);
    db.execute_at(
        "CREATE TABLE directory (id INT NOT NULL, entry TEXT NOT NULL)",
        0.0,
    )
    .unwrap();
    db.execute_at("CREATE UNIQUE INDEX directory_pk ON directory (id)", 0.0)
        .unwrap();
    for id in 0..rows {
        db.execute_at(
            &format!("INSERT INTO directory VALUES ({id}, 'entry-{id}')"),
            0.0,
        )
        .unwrap();
    }
    Arc::new(db)
}

/// A permissive gatekeeper: tests that exercise rate limits override it.
fn open_gatekeeper() -> GatekeeperConfig {
    GatekeeperConfig {
        per_user_rate: 1000.0,
        per_user_burst: 1000.0,
        per_subnet_rate: 1000.0,
        per_subnet_burst: 1000.0,
        registration: RegistrationPolicy::interval(0.0),
        storefront_query_threshold: 0,
    }
}

fn start(config: ServerConfig, db: Arc<GuardedDatabase>) -> ServerHandle {
    Server::start("127.0.0.1:0", config, db, Registry::new()).expect("server starts")
}

fn register(client: &mut Client) -> u64 {
    match client.register().expect("register exchange") {
        RegisterOutcome::Registered { user, .. } => user,
        other => panic!("registration refused: {other:?}"),
    }
}

#[test]
fn popular_tuple_streams_faster_than_unpopular() {
    let cap = 0.2;
    let db = seeded_db(50, cap, ChargingModel::PerQueryMax);
    // Make tuple 1 overwhelmingly popular before the server opens: the
    // tracker learns fmax ≈ 1, so rank-1 delay collapses toward zero
    // while never-accessed tuples stay at the cap.
    for t in 0..200 {
        db.execute_at("SELECT entry FROM directory WHERE id = 1", t as f64)
            .unwrap();
    }
    let handle = start(
        ServerConfig {
            gatekeeper: open_gatekeeper(),
            ..ServerConfig::default()
        },
        db,
    );
    let addr = handle.addr();

    // Two clients race: one for the popular tuple, one for an unpopular
    // one. Delay is enforced per tuple on the wire, so the popular query
    // must come back faster by roughly the policy cap.
    let popular = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        let user = register(&mut c);
        c.query(user, "SELECT entry FROM directory WHERE id = 1")
            .unwrap()
    });
    let unpopular = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        let user = register(&mut c);
        c.query(user, "SELECT entry FROM directory WHERE id = 37")
            .unwrap()
    });
    let popular = popular.join().unwrap();
    let unpopular = unpopular.join().unwrap();

    let (pop_delay, pop_elapsed) = match &popular {
        QueryOutcome::Rows {
            rows,
            delay_secs,
            elapsed,
            ..
        } => {
            assert_eq!(rows.len(), 1);
            (*delay_secs, *elapsed)
        }
        other => panic!("popular query: {other:?}"),
    };
    let (unpop_delay, unpop_elapsed) = match &unpopular {
        QueryOutcome::Rows {
            rows,
            delay_secs,
            elapsed,
            ..
        } => {
            assert_eq!(rows.len(), 1);
            (*delay_secs, *elapsed)
        }
        other => panic!("unpopular query: {other:?}"),
    };

    // The policy margin: unpopular sits at the cap, popular near zero.
    assert!(
        unpop_delay >= cap - 1e-9,
        "unpopular tuple should be charged the cap, got {unpop_delay}"
    );
    assert!(
        pop_delay < cap / 4.0,
        "popular tuple should be charged far below the cap, got {pop_delay}"
    );
    // Enforcement is real wall time, never early.
    assert!(
        unpop_elapsed >= Duration::from_secs_f64(unpop_delay),
        "unpopular released early: {unpop_elapsed:?} < {unpop_delay}s"
    );
    assert!(
        unpop_elapsed >= pop_elapsed + Duration::from_secs_f64(cap / 2.0),
        "popular ({pop_elapsed:?}) should beat unpopular ({unpop_elapsed:?}) by the policy margin"
    );
    handle.shutdown();
}

#[test]
fn unregistered_and_exhausted_clients_refused_explicitly() {
    let db = seeded_db(10, 0.0, ChargingModel::PerQueryMax);
    let handle = start(
        ServerConfig {
            gatekeeper: GatekeeperConfig {
                per_user_rate: 0.001, // effectively no refill within the test
                per_user_burst: 2.0,
                per_subnet_rate: 1000.0,
                per_subnet_burst: 1000.0,
                registration: RegistrationPolicy::interval(0.0),
                storefront_query_threshold: 0,
            },
            ..ServerConfig::default()
        },
        db,
    );
    let addr = handle.addr();

    // Never registered: refused with the explicit reason.
    let mut stranger = Client::connect(addr).unwrap();
    let outcome = stranger
        .query(999_999, "SELECT * FROM directory WHERE id = 1")
        .unwrap();
    assert_eq!(outcome.refusal(), Some(RefuseReason::Unregistered));

    // Registered but burst-exhausted: two queries pass, the third is
    // refused with a retry hint.
    let mut member = Client::connect(addr).unwrap();
    let user = register(&mut member);
    for _ in 0..2 {
        let ok = member
            .query(user, "SELECT * FROM directory WHERE id = 1")
            .unwrap();
        assert!(matches!(ok, QueryOutcome::Rows { .. }), "{ok:?}");
    }
    match member
        .query(user, "SELECT * FROM directory WHERE id = 1")
        .unwrap()
    {
        QueryOutcome::Refused {
            reason: RefuseReason::UserRate,
            retry_after_secs,
        } => assert!(retry_after_secs > 0.0),
        other => panic!("expected user-rate refusal, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn graceful_shutdown_delivers_inflight_delayed_tuples() {
    // Cold table: every tuple of the first query is charged the full cap.
    let cap = 0.3;
    let db = seeded_db(10, cap, ChargingModel::PerQueryMax);
    let handle = start(
        ServerConfig {
            gatekeeper: open_gatekeeper(),
            ..ServerConfig::default()
        },
        db,
    );
    let addr = handle.addr();

    let client = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        let user = register(&mut c);
        c.query(user, "SELECT * FROM directory").unwrap()
    });
    // Let the query reach the wheel, then shut down while all ten tuples
    // are still pending delivery.
    std::thread::sleep(Duration::from_millis(100));
    handle.shutdown();

    match client.join().unwrap() {
        QueryOutcome::Rows {
            rows,
            delay_secs,
            elapsed,
            ..
        } => {
            assert_eq!(rows.len(), 10, "drain must deliver every in-flight tuple");
            assert!(delay_secs >= cap - 1e-9);
            assert!(
                elapsed >= Duration::from_secs_f64(cap),
                "shutdown must not release tuples early ({elapsed:?})"
            );
        }
        other => panic!("expected full result set after drain, got {other:?}"),
    }
}

#[test]
fn draining_server_refuses_new_queries() {
    let cap = 0.4;
    let db = seeded_db(8, cap, ChargingModel::PerQueryMax);
    let handle = start(
        ServerConfig {
            gatekeeper: open_gatekeeper(),
            ..ServerConfig::default()
        },
        db,
    );
    let addr = handle.addr();

    // Park one slow query on the wheel so shutdown has something to drain.
    let mut first = Client::connect(addr).unwrap();
    let user = register(&mut first);
    let inflight =
        std::thread::spawn(move || first.query(user, "SELECT * FROM directory").unwrap());
    std::thread::sleep(Duration::from_millis(100));

    // Second client connects *before* the drain starts, then queries
    // after: the request must be refused as shutting down, not hang.
    let mut second = Client::connect(addr).unwrap();
    let second_user = register(&mut second);
    let shutdown = std::thread::spawn(move || handle.shutdown());
    std::thread::sleep(Duration::from_millis(100));
    match second.query(second_user, "SELECT * FROM directory") {
        Ok(QueryOutcome::Refused {
            reason: RefuseReason::ShuttingDown,
            ..
        }) => {}
        // The drain may already have severed the connection.
        Err(_) => {}
        Ok(other) => panic!("expected shutting-down refusal, got {other:?}"),
    }
    assert!(matches!(
        inflight.join().unwrap(),
        QueryOutcome::Rows { rows, .. } if rows.len() == 8
    ));
    shutdown.join().unwrap();
}

#[test]
fn ten_thousand_delays_share_one_scheduler_thread() {
    // 10 000 cold tuples, each charged the cap under PerQueryMax
    // charging: every row in a chunk shares one deadline, so the gate
    // coalesces each chunk into a single wheel entry — pending scales
    // with chunks, not rows, and the whole query still runs on one
    // scheduler thread.
    let cap = 0.25;
    let db = seeded_db(10_000, cap, ChargingModel::PerQueryMax);
    let handle = start(
        ServerConfig {
            gatekeeper: open_gatekeeper(),
            send_queue_rows: 20_000,
            ..ServerConfig::default()
        },
        db,
    );
    let addr = handle.addr();

    let mut c = Client::connect(addr).unwrap();
    let user = register(&mut c);
    match c.query(user, "SELECT * FROM directory").unwrap() {
        QueryOutcome::Rows { rows, elapsed, .. } => {
            assert_eq!(rows.len(), 10_000);
            assert!(elapsed >= Duration::from_secs_f64(cap));
        }
        other => panic!("{other:?}"),
    }

    // The acceptance criterion, read off the metrics registry: the
    // wheel held one coalesced entry per same-deadline chunk (40 chunks
    // of 256 rows, plus the end-of-stream trailers) — never one entry
    // per tuple, and never a task or thread per delay.
    let chunks = (10_000i64 + 255) / 256;
    let registry = handle.registry();
    match registry.value("scheduler_pending") {
        Some(MetricValue::Gauge { high_water, .. }) => {
            assert!(
                high_water >= chunks && high_water <= chunks + 4,
                "pending high water {high_water}, expected ~{chunks} coalesced sends"
            )
        }
        other => panic!("scheduler_pending missing: {other:?}"),
    }
    match registry.value("scheduler_threads") {
        Some(MetricValue::Gauge { high_water, .. }) => {
            assert_eq!(high_water, 1, "scheduler must not spawn per-delay tasks")
        }
        other => panic!("scheduler_threads missing: {other:?}"),
    }
    match registry.value("server_rows_streamed") {
        Some(MetricValue::Counter(n)) => assert_eq!(n, 10_000),
        other => panic!("server_rows_streamed missing: {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn stats_verb_reports_counters() {
    let db = seeded_db(5, 0.0, ChargingModel::PerQueryMax);
    let handle = start(
        ServerConfig {
            gatekeeper: open_gatekeeper(),
            ..ServerConfig::default()
        },
        db,
    );
    let mut c = Client::connect(handle.addr()).unwrap();
    let user = register(&mut c);
    c.query(user, "SELECT * FROM directory WHERE id = 1")
        .unwrap();
    let stats = c.stats().unwrap();
    for metric in [
        "server_connections_accepted",
        "server_users_registered",
        "server_queries_admitted",
        "server_rows_streamed",
        "scheduler_threads",
    ] {
        assert!(stats.contains(metric), "missing {metric} in:\n{stats}");
    }
    handle.shutdown();
}

#[test]
fn writes_flow_through_the_front_door_end_to_end() {
    let db = seeded_db(10, 0.0, ChargingModel::PerQueryMax);
    let handle = start(
        ServerConfig {
            gatekeeper: open_gatekeeper(),
            ..ServerConfig::default()
        },
        db,
    );
    let addr = handle.addr();
    let mut c = Client::connect(addr).unwrap();
    let user = register(&mut c);

    // INSERT commits and reports the table's bumped data version.
    let v_insert = match c
        .insert(user, "INSERT INTO directory VALUES (100, 'entry-100')")
        .unwrap()
    {
        MutateOutcome::Mutated {
            rows, data_version, ..
        } => {
            assert_eq!(rows, 1);
            data_version
        }
        other => panic!("insert: {other:?}"),
    };

    // The row is immediately visible to reads on the same connection.
    match c
        .query(user, "SELECT entry FROM directory WHERE id = 100")
        .unwrap()
    {
        QueryOutcome::Rows { rows, .. } => assert_eq!(rows.len(), 1),
        other => panic!("select after insert: {other:?}"),
    }

    // UPDATE and DELETE advance the version monotonically.
    let v_update = match c
        .update(
            user,
            "UPDATE directory SET entry = 'renamed' WHERE id = 100",
        )
        .unwrap()
    {
        MutateOutcome::Mutated {
            rows, data_version, ..
        } => {
            assert_eq!(rows, 1);
            data_version
        }
        other => panic!("update: {other:?}"),
    };
    assert!(v_update > v_insert, "{v_update} vs {v_insert}");
    match c
        .delete(user, "DELETE FROM directory WHERE id = 100")
        .unwrap()
    {
        MutateOutcome::Mutated {
            rows, data_version, ..
        } => {
            assert_eq!(rows, 1);
            assert!(data_version > v_update);
        }
        other => panic!("delete: {other:?}"),
    }

    // The opcode is a claim the server checks: SQL that does not match
    // the frame's verb is rejected without touching the database.
    match c
        .insert(user, "DELETE FROM directory WHERE id = 1")
        .unwrap()
    {
        MutateOutcome::Failed { message } => {
            assert!(message.contains("INSERT"), "{message}")
        }
        other => panic!("verb mismatch: {other:?}"),
    }

    // A v1 session never negotiated the write surface: explicit refusal
    // code, connection stays usable for reads.
    let mut legacy = Client::connect(addr).unwrap();
    let legacy_user = match legacy.register_v1().unwrap() {
        RegisterOutcome::Registered { user, .. } => user,
        other => panic!("v1 register: {other:?}"),
    };
    match legacy
        .insert(legacy_user, "INSERT INTO directory VALUES (101, 'x')")
        .unwrap()
    {
        MutateOutcome::Refused {
            reason: RefuseReason::WritesUnsupported,
            ..
        } => {}
        other => panic!("v1 write: {other:?}"),
    }
    match legacy
        .query(legacy_user, "SELECT entry FROM directory WHERE id = 1")
        .unwrap()
    {
        QueryOutcome::Rows { rows, .. } => assert_eq!(rows.len(), 1),
        other => panic!("v1 read after refused write: {other:?}"),
    }
    handle.shutdown();
}

/// The STATS leak audit: the popularity rank order is the secret the
/// delay policy defends, so by default a `STATS` reply must not carry
/// any of it — an adversary who could read ranks off the stats surface
/// would not need the timing side channel at all. The rank detail only
/// appears behind the explicit opt-in knob (an operator-facing surface).
#[test]
fn stats_reply_hides_rank_order_unless_opted_in() {
    for expose in [false, true] {
        let db = seeded_db(5, 0.0, ChargingModel::PerQueryMax);
        let handle = start(
            ServerConfig {
                gatekeeper: open_gatekeeper(),
                stats_expose_popularity: expose,
                ..ServerConfig::default()
            },
            db,
        );
        let mut c = Client::connect(handle.addr()).unwrap();
        let user = register(&mut c);
        // Create a rank order worth leaking before asking for stats.
        for _ in 0..3 {
            c.query(user, "SELECT * FROM directory WHERE id = 1")
                .unwrap();
        }
        c.query(user, "SELECT * FROM directory WHERE id = 3")
            .unwrap();
        let stats = c.stats().unwrap();
        assert!(stats.contains("server_queries_admitted"));
        if expose {
            assert!(
                stats.contains("popularity_table directory")
                    && stats.contains("popularity_rank directory")
                    && stats.contains("rank 1"),
                "opted-in stats must carry the rank detail:\n{stats}"
            );
        } else {
            assert!(
                !stats.contains("popularity") && !stats.contains("rank"),
                "default stats must not leak popularity/rank fields:\n{stats}"
            );
        }
        handle.shutdown();
    }
}
