//! Regression tests for same-tick release coalescing.
//!
//! The wheel groups consecutive rows whose deadlines land on the same
//! scheduler tick into one job, and that job hands the whole batch to the
//! sink in a single `push_rows` call — one queue lock and one writer
//! wakeup per tick per connection instead of one per row. These tests pin
//! both halves of that contract against a recording sink: batching when
//! deadlines coincide, and per-deadline delivery order when they do not.

use delayguard_core::clock::{secs_to_nanos, Clock, ManualClock};
use delayguard_core::gatekeeper::RegistrationPolicy;
use delayguard_core::{ChargingModel, GatekeeperConfig, GuardConfig, GuardedDatabase};
use delayguard_query::Engine;
use delayguard_server::gate::{FrameSink, FrontDoor, GateConfig, SessionState};
use delayguard_server::metrics::ServerMetrics;
use delayguard_server::protocol::Frame;
use delayguard_server::scheduler::DelayScheduler;
use delayguard_sim::Registry;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// What the sink observed, in arrival order. Every `push_rows` call is
/// one `Batch` entry — a per-row fallback would show up as many
/// single-frame batches.
#[derive(Debug)]
enum Event {
    Control(Frame),
    Batch(Vec<Frame>),
}

struct RecordingSink {
    events: Mutex<Vec<Event>>,
}

impl RecordingSink {
    fn new() -> Arc<RecordingSink> {
        Arc::new(RecordingSink {
            events: Mutex::new(Vec::new()),
        })
    }
}

impl FrameSink for RecordingSink {
    fn push_control(&self, frame: Frame) {
        self.events.lock().push(Event::Control(frame));
    }

    fn push_row(&self, frame: Frame) {
        self.events.lock().push(Event::Batch(vec![frame]));
    }

    fn push_rows(&self, frames: &mut Vec<Frame>) {
        self.events
            .lock()
            .push(Event::Batch(std::mem::take(frames)));
    }

    fn try_reserve_rows(&self, _n: usize) -> bool {
        true
    }
}

struct Rig {
    clock: Arc<ManualClock>,
    scheduler: Arc<DelayScheduler>,
    gate: Arc<FrontDoor>,
}

/// The real front door on a manual clock and a manual-mode scheduler,
/// with `rows` one-column tuples seeded at time zero.
fn rig(charging: ChargingModel, rows: usize) -> Rig {
    let clock = ManualClock::shared();
    let dyn_clock: Arc<dyn Clock> = Arc::clone(&clock) as Arc<dyn Clock>;
    let guard = GuardConfig::paper_default().with_charging(charging);
    let db = Arc::new(GuardedDatabase::with_engine_and_clock(
        Engine::new(),
        guard,
        Arc::clone(&dyn_clock),
    ));
    db.execute_at("CREATE TABLE directory (id INT NOT NULL)", 0.0)
        .unwrap();
    for id in 0..rows {
        db.execute_at(&format!("INSERT INTO directory VALUES ({id})"), 0.0)
            .unwrap();
    }
    let registry = Registry::new();
    let metrics = ServerMetrics::new(&registry);
    let scheduler = DelayScheduler::manual(
        Duration::from_millis(1),
        metrics.clone(),
        Arc::clone(&dyn_clock),
    );
    let gate = Arc::new(FrontDoor::new(
        GateConfig {
            gatekeeper: GatekeeperConfig {
                registration: RegistrationPolicy::interval(0.0),
                ..GatekeeperConfig::default()
            },
            ..GateConfig::default()
        },
        db,
        Arc::clone(&scheduler),
        dyn_clock,
        metrics,
        registry,
    ));
    Rig {
        clock,
        scheduler,
        gate,
    }
}

/// Register, run one `SELECT *`, then advance time until the wheel is
/// drained; returns everything the sink saw.
fn run_select(rig: &Rig, sink: &Arc<RecordingSink>) -> Vec<Event> {
    let session = SessionState::new();
    rig.gate.handle_frame(
        Frame::Register {
            claimed_ip: [0; 4],
            version: 2,
        },
        [10, 0, 0, 1],
        &session,
        sink,
    );
    let user = match sink.events.lock().pop() {
        Some(Event::Control(Frame::Registered { user, .. })) => user,
        other => panic!("expected Registered, got {other:?}"),
    };
    rig.gate.handle_frame(
        Frame::Query {
            query_id: 7,
            user,
            sql: "SELECT * FROM directory".into(),
        },
        [10, 0, 0, 1],
        &session,
        sink,
    );
    // Walk the wheel deadline by deadline so jobs fire exactly when (and
    // in the order) the scheduler says they are due.
    while let Some(at) = rig.scheduler.next_deadline_nanos() {
        rig.clock.advance_to_nanos(at);
        rig.scheduler.poll();
    }
    std::mem::take(&mut sink.events.lock())
}

/// PerQueryMax charges every row the same offset, so all deadlines share
/// one tick — the whole result set must arrive as ONE `push_rows` batch,
/// in sequence order, trailed by `ROWS_END` and `DONE`.
#[test]
fn same_tick_rows_coalesce_into_one_send() {
    let rig = rig(ChargingModel::PerQueryMax, 16);
    let sink = RecordingSink::new();
    let events = run_select(&rig, &sink);

    let batches: Vec<&Vec<Frame>> = events
        .iter()
        .filter_map(|e| match e {
            Event::Batch(frames) => Some(frames),
            Event::Control(_) => None,
        })
        .collect();
    assert_eq!(
        batches.len(),
        1,
        "16 same-deadline rows must be one send, got {batches:?}"
    );
    let seqs: Vec<u32> = batches[0]
        .iter()
        .map(|f| match f {
            Frame::Row {
                query_id: 7, seq, ..
            } => *seq,
            other => panic!("non-row frame in batch: {other:?}"),
        })
        .collect();
    assert_eq!(seqs, (0..16).collect::<Vec<u32>>());

    // Controls bracket the batch: RowsBegin before, RowsEnd + Done after.
    match &events[0] {
        Event::Control(Frame::RowsBegin { query_id: 7, .. }) => {}
        other => panic!("expected RowsBegin first, got {other:?}"),
    }
    let tail: Vec<&Event> = events.iter().rev().take(2).collect();
    assert!(matches!(
        tail[1],
        Event::Control(Frame::RowsEnd {
            query_id: 7,
            rows: 16
        })
    ));
    assert!(matches!(
        tail[0],
        Event::Control(Frame::Done {
            query_id: 7,
            tuples: 16,
            ..
        })
    ));
}

/// PerTupleSum on a cold table prices every tuple at the 10 s cap, so
/// offsets are strictly increasing prefix sums — no two rows share a
/// tick. Coalescing must degrade to one single-row send per deadline,
/// delivered in deadline (= sequence) order, never early.
#[test]
fn distinct_tick_rows_keep_deadline_order() {
    let rig = rig(ChargingModel::PerTupleSum, 8);
    let sink = RecordingSink::new();
    let session = SessionState::new();
    rig.gate.handle_frame(
        Frame::Register {
            claimed_ip: [0; 4],
            version: 2,
        },
        [10, 0, 0, 1],
        &session,
        &sink,
    );
    let user = match sink.events.lock().pop() {
        Some(Event::Control(Frame::Registered { user, .. })) => user,
        other => panic!("expected Registered, got {other:?}"),
    };
    rig.gate.handle_frame(
        Frame::Query {
            query_id: 9,
            user,
            sql: "SELECT * FROM directory".into(),
        },
        [10, 0, 0, 1],
        &session,
        &sink,
    );

    // Each row's deadline is its prefix-sum offset: 10 s, 20 s, … 80 s.
    // Step the clock to just before each deadline (nothing may fire),
    // then onto it (exactly one single-row batch fires).
    for row in 0..8u64 {
        let due = secs_to_nanos(10.0 * (row + 1) as f64);
        rig.clock.advance_to_nanos(due - secs_to_nanos(0.5));
        rig.scheduler.poll();
        let early: usize = sink
            .events
            .lock()
            .iter()
            .filter(|e| matches!(e, Event::Batch(_)))
            .count();
        assert_eq!(early as u64, row, "row {row} released before its deadline");

        rig.clock.advance_to_nanos(due + secs_to_nanos(0.001));
        rig.scheduler.poll();
        let events = sink.events.lock();
        let batches: Vec<&Vec<Frame>> = events
            .iter()
            .filter_map(|e| match e {
                Event::Batch(frames) => Some(frames),
                Event::Control(_) => None,
            })
            .collect();
        assert_eq!(batches.len() as u64, row + 1);
        let last = batches.last().unwrap();
        assert_eq!(last.len(), 1, "distinct ticks must not coalesce");
        assert!(
            matches!(&last[0], Frame::Row { seq, .. } if *seq as u64 == row),
            "rows must release in deadline order"
        );
    }

    // Drain the trailer; the full transcript ends RowsEnd then Done.
    while let Some(at) = rig.scheduler.next_deadline_nanos() {
        rig.clock.advance_to_nanos(at);
        rig.scheduler.poll();
    }
    let events = sink.events.lock();
    assert!(matches!(
        events[events.len() - 2],
        Event::Control(Frame::RowsEnd {
            query_id: 9,
            rows: 8
        })
    ));
    assert!(matches!(
        events[events.len() - 1],
        Event::Control(Frame::Done {
            query_id: 9,
            tuples: 8,
            ..
        })
    ));
}

/// Two interleaved connections on one wheel: coalescing is per
/// connection. Each sink still receives its own rows as one batch even
/// though both queries share every tick of the scheduler.
#[test]
fn coalescing_is_per_connection() {
    let rig = rig(ChargingModel::PerQueryMax, 12);
    let sink_a = RecordingSink::new();
    let sink_b = RecordingSink::new();
    for (query_id, sink) in [(1u32, &sink_a), (2u32, &sink_b)] {
        let session = SessionState::new();
        rig.gate.handle_frame(
            Frame::Register {
                claimed_ip: [0; 4],
                version: 2,
            },
            [10, 0, (query_id % 256) as u8, 1],
            &session,
            sink,
        );
        let user = match sink.events.lock().pop() {
            Some(Event::Control(Frame::Registered { user, .. })) => user,
            other => panic!("expected Registered, got {other:?}"),
        };
        rig.gate.handle_frame(
            Frame::Query {
                query_id,
                user,
                sql: "SELECT * FROM directory".into(),
            },
            [10, 0, (query_id % 256) as u8, 1],
            &session,
            sink,
        );
    }
    while let Some(at) = rig.scheduler.next_deadline_nanos() {
        rig.clock.advance_to_nanos(at);
        rig.scheduler.poll();
    }
    for sink in [&sink_a, &sink_b] {
        let events = sink.events.lock();
        let batches: Vec<&Vec<Frame>> = events
            .iter()
            .filter_map(|e| match e {
                Event::Batch(frames) => Some(frames),
                Event::Control(_) => None,
            })
            .collect();
        assert_eq!(batches.len(), 1, "one send per connection per tick");
        assert_eq!(batches[0].len(), 12);
    }
}
