//! Property tests for the zero-copy frame codec: random frames of every
//! type must round-trip exactly, the coalesced append-into-one-buffer
//! encode must be byte-identical to the old one-write-per-frame path,
//! legacy (v1) REGISTER framing must keep decoding, and the MAX_FRAME
//! boundary must be exact on both the encode and decode side.
//!
//! Deterministic harness (no external property-testing crate in this
//! offline build): a splitmix64 generator drives 128 cases per property
//! from fixed seeds, so failures reproduce exactly.

use delayguard_core::gatekeeper::{Charge, GateDelta, SubnetCharges};
use delayguard_core::replica::{ReplicaDelta, TableDelta};
use delayguard_server::protocol::{
    encode_frame_into, read_frame, read_frame_buffered, write_frame, write_frame_buffered, Frame,
    ProtocolError, RefuseReason, MAX_FRAME, PROTOCOL_VERSION,
};
use delayguard_storage::{Row, Value};

const CASES: u64 = 128;

/// splitmix64: tiny, full-period, good enough to drive test shapes.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn f64(&mut self) -> f64 {
        // Finite, varied magnitudes; equality must survive the codec.
        (self.next() as i64 as f64) / ((1 + self.below(1_000_000)) as f64)
    }
}

fn cases(seed: u64, mut body: impl FnMut(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = Rng(seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ case);
        body(&mut rng);
    }
}

fn arb_string(rng: &mut Rng, max_len: u64) -> String {
    let len = rng.below(max_len);
    (0..len)
        .map(|_| match rng.below(8) {
            // Mostly ASCII, some multi-byte to exercise UTF-8 validation.
            0 => 'é',
            1 => '→',
            2 => '本',
            _ => (b'a' + (rng.below(26) as u8)) as char,
        })
        .collect()
}

fn arb_value(rng: &mut Rng) -> Value {
    match rng.below(6) {
        0 => Value::Null,
        1 => Value::Bool(rng.below(2) == 0),
        2 => Value::Int(rng.next() as i64),
        3 => Value::Float(rng.f64()),
        4 => Value::Text(arb_string(rng, 24)),
        _ => Value::Bytes((0..rng.below(24)).map(|_| rng.next() as u8).collect()),
    }
}

fn arb_row(rng: &mut Rng) -> Row {
    Row::new((0..rng.below(6)).map(|_| arb_value(rng)).collect())
}

fn arb_charges(rng: &mut Rng) -> Vec<Charge> {
    (0..rng.below(4))
        .map(|i| Charge {
            seq: i + 1,
            at_secs: rng.f64().abs(),
            amount: 1.0,
        })
        .collect()
}

fn arb_counts(rng: &mut Rng) -> Vec<(u64, f64)> {
    let mut keys: Vec<u64> = (0..rng.below(6)).map(|_| rng.below(10_000)).collect();
    keys.sort_unstable();
    keys.dedup();
    keys.into_iter().map(|k| (k, rng.f64().abs())).collect()
}

fn arb_delta(rng: &mut Rng) -> ReplicaDelta {
    let origin = rng.below(8) as u16;
    ReplicaDelta {
        origin,
        seq: rng.below(1 << 40),
        tables: (0..rng.below(3))
            .map(|i| {
                (
                    format!("t{i}"),
                    TableDelta {
                        accesses: arb_counts(rng),
                        updates: arb_counts(rng),
                        rows: rng.below(1 << 20),
                        epoch: if rng.below(2) == 0 {
                            Some(rng.f64().abs())
                        } else {
                            None
                        },
                    },
                )
            })
            .collect(),
        gate: GateDelta {
            origin,
            users: (0..rng.below(3))
                .map(|i| (1000 + i, arb_charges(rng)))
                .collect(),
            subnets: (0..rng.below(3))
                .map(|_| SubnetCharges {
                    base: [10, rng.below(256) as u8, rng.below(256) as u8, 0],
                    prefix: 24,
                    log: arb_charges(rng),
                })
                .collect(),
        },
    }
}

/// One random frame, uniformly over every variant the wire carries.
fn arb_frame(rng: &mut Rng) -> Frame {
    match rng.below(17) {
        0 => Frame::Register {
            claimed_ip: [
                rng.below(256) as u8,
                rng.below(256) as u8,
                rng.below(256) as u8,
                rng.below(256) as u8,
            ],
            version: if rng.below(2) == 0 {
                1
            } else {
                PROTOCOL_VERSION
            },
        },
        1 => Frame::Query {
            query_id: rng.next() as u32,
            user: rng.next(),
            sql: arb_string(rng, 64),
        },
        2 => Frame::Stats,
        3 => Frame::Registered {
            user: rng.next(),
            fee: rng.f64(),
        },
        4 => Frame::Refused {
            query_id: rng.next() as u32,
            reason: [
                RefuseReason::Unregistered,
                RefuseReason::UserRate,
                RefuseReason::SubnetRate,
                RefuseReason::RegistrationTooSoon,
                RefuseReason::Overloaded,
                RefuseReason::ShuttingDown,
                RefuseReason::WritesUnsupported,
            ][rng.below(7) as usize],
            retry_after_secs: rng.f64().abs(),
        },
        5 => Frame::RowsBegin {
            query_id: rng.next() as u32,
            columns: (0..rng.below(5)).map(|_| arb_string(rng, 12)).collect(),
            rows: rng.next() as u32,
        },
        6 => Frame::Row {
            query_id: rng.next() as u32,
            seq: rng.next() as u32,
            row: arb_row(rng),
        },
        7 => Frame::RowsEnd {
            query_id: rng.next() as u32,
            rows: rng.next() as u32,
        },
        8 => Frame::Done {
            query_id: rng.next() as u32,
            delay_secs: rng.f64().abs(),
            tuples: rng.next() as u32,
        },
        9 => Frame::StatsReply {
            rendered: arb_string(rng, 200),
        },
        10 => Frame::Error {
            query_id: rng.next() as u32,
            message: arb_string(rng, 80),
        },
        11 => Frame::Delta {
            delta: arb_delta(rng),
        },
        12 => Frame::Insert {
            query_id: rng.next() as u32,
            user: rng.next(),
            sql: arb_string(rng, 64),
        },
        13 => Frame::Update {
            query_id: rng.next() as u32,
            user: rng.next(),
            sql: arb_string(rng, 64),
        },
        14 => Frame::Delete {
            query_id: rng.next() as u32,
            user: rng.next(),
            sql: arb_string(rng, 64),
        },
        15 => Frame::Mutated {
            query_id: rng.next() as u32,
            rows: rng.next() as u32,
            data_version: rng.below(1 << 40),
        },
        _ => Frame::DeltaAck {
            origin: rng.below(8) as u16,
            seq: rng.below(1 << 40),
        },
    }
}

#[test]
fn random_frames_round_trip_through_every_encode_path() {
    cases(0xC0DEC, |rng| {
        let frames: Vec<Frame> = (0..1 + rng.below(8)).map(|_| arb_frame(rng)).collect();

        // Old path: one throwaway buffer and one write per frame.
        let mut one_by_one = Vec::new();
        for f in &frames {
            write_frame(&mut one_by_one, f).unwrap();
        }

        // Zero-copy path: every frame appended into one coalesced buffer
        // (what the batched writer hands to a single syscall) …
        let mut coalesced = Vec::new();
        for f in &frames {
            encode_frame_into(f, &mut coalesced).unwrap();
        }
        assert_eq!(
            coalesced, one_by_one,
            "coalesced encode must be byte-identical to per-frame writes"
        );

        // … and the buffered writer with one reused scratch buffer.
        let mut buffered = Vec::new();
        let mut scratch = Vec::new();
        for f in &frames {
            write_frame_buffered(&mut buffered, f, &mut scratch).unwrap();
        }
        assert_eq!(buffered, one_by_one);

        // Decode side: the reused-scratch reader must hand back exactly
        // the frames that went in, then a clean EOF.
        let mut slice = coalesced.as_slice();
        let mut read_scratch = Vec::new();
        for f in &frames {
            let back = read_frame_buffered(&mut slice, &mut read_scratch)
                .unwrap()
                .expect("frame present");
            assert_eq!(&back, f);
        }
        assert!(read_frame_buffered(&mut slice, &mut read_scratch)
            .unwrap()
            .is_none());
    });
}

#[test]
fn legacy_v1_register_framing_still_decodes() {
    cases(0x0F1, |rng| {
        let ip = [
            rng.below(256) as u8,
            rng.below(256) as u8,
            rng.below(256) as u8,
            rng.below(256) as u8,
        ];
        // A v1 client's REGISTER: length prefix, opcode, 4 ip bytes — no
        // version byte at all.
        let mut legacy = Vec::new();
        legacy.extend_from_slice(&5u32.to_le_bytes());
        legacy.push(0x01);
        legacy.extend_from_slice(&ip);
        let decoded = read_frame(&mut legacy.as_slice()).unwrap().unwrap();
        assert_eq!(
            decoded,
            Frame::Register {
                claimed_ip: ip,
                version: 1
            }
        );
        // The modern encoder writes an explicit version byte; a v1 value
        // must survive its own round trip too (the two forms are
        // distinct on the wire but decode to the same frame).
        let mut modern = Vec::new();
        write_frame(
            &mut modern,
            &Frame::Register {
                claimed_ip: ip,
                version: 1,
            },
        )
        .unwrap();
        assert_ne!(modern, legacy, "v2 framing carries the version byte");
        assert_eq!(
            read_frame(&mut modern.as_slice()).unwrap().unwrap(),
            decoded
        );
    });
}

#[test]
fn max_frame_boundary_is_exact_on_encode_and_decode() {
    // A StatsReply body is opcode + u32 length + payload: the largest
    // legal payload is MAX_FRAME - 5.
    let fits = Frame::StatsReply {
        rendered: "x".repeat(MAX_FRAME - 5),
    };
    let mut buf = Vec::new();
    encode_frame_into(&fits, &mut buf).unwrap();
    assert_eq!(buf.len(), MAX_FRAME + 4, "body exactly at the limit");
    let back = read_frame(&mut buf.as_slice()).unwrap().unwrap();
    assert_eq!(back, fits);

    // One byte more: the encoder must refuse and roll the buffer back to
    // its prior contents, leaving earlier coalesced frames intact.
    let over = Frame::StatsReply {
        rendered: "x".repeat(MAX_FRAME - 4),
    };
    let mut buf = Vec::new();
    encode_frame_into(&Frame::Stats, &mut buf).unwrap();
    let before = buf.clone();
    match encode_frame_into(&over, &mut buf) {
        Err(ProtocolError::Oversized(n)) => assert_eq!(n, MAX_FRAME + 1),
        other => panic!("expected Oversized, got {other:?}"),
    }
    assert_eq!(buf, before, "failed encode must not corrupt the buffer");

    // Decode side: a length prefix past the limit is rejected before any
    // body is read.
    let mut wire = Vec::new();
    wire.extend_from_slice(&((MAX_FRAME + 1) as u32).to_le_bytes());
    wire.push(0x03);
    match read_frame(&mut wire.as_slice()) {
        Err(ProtocolError::Oversized(n)) => assert_eq!(n, MAX_FRAME + 1),
        other => panic!("expected Oversized, got {other:?}"),
    }
}
