//! Property test for the hierarchical timer wheel: under random
//! insertions and random advance steps, entries pop in non-decreasing
//! deadline order within a batch, never fire early, preserve insertion
//! order among equal deadlines, and are never lost.
//!
//! Deterministic harness (no external property-testing crate in this
//! offline build): a splitmix64 generator drives 128 cases per property
//! from fixed seeds, so failures reproduce exactly.

use delayguard_server::wheel::TimerWheel;

const CASES: u64 = 128;

/// splitmix64: tiny, full-period, good enough to drive test shapes.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn cases(seed: u64, mut body: impl FnMut(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = Rng(seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ case);
        body(&mut rng);
    }
}

#[test]
fn random_insertions_fire_ordered_never_early_never_lost() {
    cases(0x77EE1, |rng| {
        let mut wheel = TimerWheel::new();
        // Mix of near, mid, far, and cross-level deadlines; some batches
        // interleave with advances, and inserts may land in the past.
        let inserts = 1 + rng.below(300) as usize;
        let rounds = 1 + rng.below(12);
        let horizon = [64u64, 4_096, 262_144, 20_000_000][rng.below(4) as usize];

        let mut seq = 0u64;
        let mut inserted = 0usize;
        let mut fired_total = 0usize;
        let mut now = 0u64;
        for _ in 0..rounds {
            for _ in 0..inserts / rounds as usize + 1 {
                // Occasionally schedule in the past relative to `now`.
                let deadline = if rng.below(8) == 0 && now > 0 {
                    rng.below(now)
                } else {
                    now + rng.below(horizon)
                };
                wheel.insert(deadline, seq);
                seq += 1;
                inserted += 1;
            }
            now += rng.below(horizon / 2 + 2);
            let batch = wheel.advance(now);
            // Within a batch: non-decreasing deadlines, insertion order
            // among equals, and nothing released after `now` (early).
            let mut last: Option<(u64, u64)> = None;
            for &(deadline, item_seq) in &batch {
                assert!(deadline <= now, "fired early: {deadline} > now {now}");
                if let Some((prev_d, prev_s)) = last {
                    assert!(
                        deadline > prev_d || (deadline == prev_d && item_seq > prev_s),
                        "order violated: ({prev_d},{prev_s}) before ({deadline},{item_seq})"
                    );
                }
                last = Some((deadline, item_seq));
            }
            fired_total += batch.len();
            assert_eq!(wheel.pending(), inserted - fired_total);
        }
        // Drain: everything inserted must eventually fire, exactly once.
        now += 30_000_000;
        fired_total += wheel.advance(now).len();
        assert_eq!(fired_total, inserted, "entries lost or duplicated");
        assert_eq!(wheel.pending(), 0);
    });
}

#[test]
fn entries_never_fire_before_their_deadline_tick() {
    cases(0xEA221, |rng| {
        let mut wheel = TimerWheel::new();
        let deadline = 1 + rng.below(2_000_000);
        wheel.insert(deadline, ());
        // Approach the deadline in random increments, checking just below.
        let mut now = 0;
        while now + 1 < deadline {
            now += 1 + rng.below((deadline - now).max(2) / 2 + 1);
            now = now.min(deadline - 1);
            assert!(
                wheel.advance(now).is_empty(),
                "deadline {deadline} fired at {now}"
            );
        }
        assert_eq!(wheel.advance(deadline).len(), 1);
    });
}

#[test]
fn equal_deadline_batches_preserve_insertion_order() {
    cases(0x0DE4, |rng| {
        let mut wheel = TimerWheel::new();
        let deadline = 1 + rng.below(500_000);
        let n = 2 + rng.below(40);
        for i in 0..n {
            wheel.insert(deadline, i);
        }
        let fired = wheel.advance(deadline + rng.below(1_000));
        let items: Vec<u64> = fired.into_iter().map(|(_, i)| i).collect();
        assert_eq!(items, (0..n).collect::<Vec<u64>>());
    });
}
