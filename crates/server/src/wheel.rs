//! A hierarchical timer wheel: thousands of pending delays at O(1)
//! amortized cost per tick, with no task or thread per delay.
//!
//! The wheel is pure and tick-indexed: time is a `u64` tick counter and
//! the caller decides what a tick means in wall-clock terms (the
//! [`scheduler`](crate::scheduler) drives one wheel from a single thread).
//! Four levels of 64 slots cover a horizon of `64^4` ≈ 16.7 M ticks
//! (≈ 4.6 hours at a 1 ms tick); rarer, farther deadlines sit in an
//! overflow list that is reconsidered when the top level turns over.
//!
//! Guarantees, relied on by the delivery path and checked by the property
//! test in `tests/wheel_prop.rs`:
//!
//! * an entry never fires **early** (before `advance` has reached its
//!   deadline tick), and
//! * one `advance` call yields entries in **non-decreasing deadline
//!   order**, with insertion order preserved among equal deadlines (so a
//!   query's `DONE` frame, scheduled after its rows at the same deadline,
//!   fires after them).

/// Slots per level.
const SLOTS: usize = 64;
/// Number of hierarchical levels.
const LEVELS: usize = 4;
/// Ticks covered by one slot of each level: 64^0, 64^1, 64^2, 64^3.
const fn level_span(level: usize) -> u64 {
    (SLOTS as u64).pow(level as u32)
}
/// Ticks covered by the whole wheel.
const HORIZON: u64 = (SLOTS as u64).pow(LEVELS as u32);

#[derive(Debug)]
struct Entry<T> {
    deadline: u64,
    /// Monotone insertion sequence, used to keep equal-deadline entries
    /// in insertion order across cascades.
    seq: u64,
    item: T,
}

/// A hierarchical timer wheel over an abstract `u64` tick clock.
#[derive(Debug)]
pub struct TimerWheel<T> {
    /// `levels[k][slot]` holds entries expiring within that slot's span.
    levels: Vec<Vec<Vec<Entry<T>>>>,
    /// Entries beyond the wheel horizon.
    overflow: Vec<Entry<T>>,
    /// Entries whose deadline had already passed at insertion; they fire
    /// on the next `advance`.
    due: Vec<Entry<T>>,
    /// Live entry count per level, for fast-forwarding over empty spans.
    level_counts: [usize; LEVELS],
    now: u64,
    next_seq: u64,
    pending: usize,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel positioned at tick 0.
    pub fn new() -> TimerWheel<T> {
        TimerWheel {
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            overflow: Vec::new(),
            due: Vec::new(),
            level_counts: [0; LEVELS],
            now: 0,
            next_seq: 0,
            pending: 0,
        }
    }

    /// The current tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of scheduled entries that have not fired yet.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// The earliest deadline of any pending entry, or `None` if the wheel
    /// is empty. Entries inserted with an already-passed deadline report
    /// their original (past) deadline. O(pending + slots) scan with an
    /// O(1) empty fast path — simulation drivers (the testkit and the
    /// cluster router) call this once per node per event-loop step, and
    /// most nodes' wheels are empty most of the time.
    pub fn next_deadline(&self) -> Option<u64> {
        if self.pending == 0 {
            return None;
        }
        let all = self
            .due
            .iter()
            .chain(self.levels.iter().flatten().flatten())
            .chain(self.overflow.iter());
        all.map(|e| e.deadline).min()
    }

    /// Schedule `item` to fire once `advance` reaches `deadline`.
    /// Deadlines at or before the current tick fire on the next `advance`.
    pub fn insert(&mut self, deadline: u64, item: T) {
        let entry = Entry {
            deadline,
            seq: self.next_seq,
            item,
        };
        self.next_seq += 1;
        self.pending += 1;
        self.place(entry);
    }

    /// File an entry into the right level/slot for the current tick.
    fn place(&mut self, entry: Entry<T>) {
        let delta = entry.deadline.saturating_sub(self.now);
        if entry.deadline <= self.now {
            self.due.push(entry);
            return;
        }
        if delta >= HORIZON {
            self.overflow.push(entry);
            return;
        }
        // Smallest level whose span covers the remaining delta.
        for level in 0..LEVELS {
            if delta < level_span(level + 1) {
                let slot = (entry.deadline / level_span(level)) as usize % SLOTS;
                self.levels[level][slot].push(entry);
                self.level_counts[level] += 1;
                return;
            }
        }
        unreachable!("delta {delta} below horizon must fit a level");
    }

    /// The tick `advance` may jump to without missing a fire or cascade:
    /// with the finest `k` levels empty, nothing happens until the next
    /// slot boundary of the coarsest span that still has entries.
    fn fast_forward_target(&self, to: u64) -> u64 {
        let mut level = 0;
        while level < LEVELS && self.level_counts[level] == 0 {
            level += 1;
        }
        if level == 0 {
            return self.now; // level 0 occupied: tick one at a time
        }
        if level == LEVELS && self.overflow.is_empty() {
            return to; // completely empty
        }
        let span = if level == LEVELS {
            HORIZON
        } else {
            level_span(level)
        };
        let next_boundary = (self.now / span + 1) * span;
        // Stop one tick short so the boundary tick runs its cascade.
        to.min(next_boundary.saturating_sub(1))
    }

    /// Advance the wheel to tick `to`, returning every entry whose
    /// deadline has been reached as `(deadline, item)` pairs in
    /// non-decreasing deadline order.
    pub fn advance(&mut self, to: u64) -> Vec<(u64, T)> {
        let mut fired: Vec<Entry<T>> = std::mem::take(&mut self.due);

        while self.now < to {
            let skip_to = self.fast_forward_target(to);
            if skip_to > self.now {
                self.now = skip_to;
                if self.now >= to {
                    break;
                }
            }
            self.now += 1;
            // Cascade each level whose slot boundary we just crossed:
            // entries move down to finer-grained levels (or fire).
            for level in 1..LEVELS {
                if self.now.is_multiple_of(level_span(level)) {
                    let slot = (self.now / level_span(level)) as usize % SLOTS;
                    let entries = std::mem::take(&mut self.levels[level][slot]);
                    self.level_counts[level] -= entries.len();
                    for e in entries {
                        if e.deadline <= self.now {
                            fired.push(e);
                        } else {
                            self.place(e);
                        }
                    }
                } else {
                    break;
                }
            }
            // Top level turned over: overflow entries may now fit. An
            // entry due exactly at the turnover tick must fire in this
            // batch — `place` would park it in `due` for the *next*
            // advance, one tick late.
            if self.now.is_multiple_of(HORIZON) && !self.overflow.is_empty() {
                let entries = std::mem::take(&mut self.overflow);
                for e in entries {
                    if e.deadline <= self.now {
                        fired.push(e);
                    } else {
                        self.place(e);
                    }
                }
            }
            // Fire this tick's level-0 slot.
            let slot = self.now as usize % SLOTS;
            self.level_counts[0] -= self.levels[0][slot].len();
            fired.append(&mut self.levels[0][slot]);
        }

        self.pending -= fired.len();
        // Per-tick batches are already time-ordered; a stable sort fixes
        // interleavings introduced by cascading while preserving insertion
        // order among equal deadlines.
        fired.sort_by_key(|e| (e.deadline, e.seq));
        fired.into_iter().map(|e| (e.deadline, e.item)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_at_exact_tick_not_before() {
        let mut w = TimerWheel::new();
        w.insert(10, "a");
        assert!(w.advance(9).is_empty());
        assert_eq!(w.pending(), 1);
        assert_eq!(w.advance(10), vec![(10, "a")]);
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn past_deadlines_fire_on_next_advance() {
        let mut w = TimerWheel::new();
        w.advance(100);
        w.insert(50, "late");
        w.insert(100, "now");
        let fired = w.advance(100);
        assert_eq!(fired, vec![(50, "late"), (100, "now")]);
    }

    #[test]
    fn batch_is_deadline_ordered() {
        let mut w = TimerWheel::new();
        for &d in &[500u64, 3, 70, 4096, 70, 12] {
            w.insert(d, d);
        }
        let fired = w.advance(10_000);
        let deadlines: Vec<u64> = fired.iter().map(|&(d, _)| d).collect();
        assert_eq!(deadlines, vec![3, 12, 70, 70, 500, 4096]);
    }

    #[test]
    fn equal_deadlines_keep_insertion_order() {
        let mut w = TimerWheel::new();
        w.insert(5000, "row0");
        w.insert(5000, "row1");
        w.insert(5000, "done");
        let fired = w.advance(6000);
        let items: Vec<&str> = fired.into_iter().map(|(_, i)| i).collect();
        assert_eq!(items, vec!["row0", "row1", "done"]);
    }

    #[test]
    fn cascades_across_levels() {
        let mut w = TimerWheel::new();
        // One entry per level plus overflow.
        let deadlines = [
            7u64,
            SLOTS as u64 + 1,
            level_span(2) + 5,
            level_span(3) + 9,
            HORIZON + 17,
        ];
        for &d in &deadlines {
            w.insert(d, d);
        }
        assert_eq!(w.pending(), 5);
        for &d in &deadlines {
            assert!(w.advance(d - 1).iter().all(|&(fd, _)| fd < d));
            let fired = w.advance(d);
            assert_eq!(fired, vec![(d, d)], "deadline {d}");
        }
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn next_deadline_tracks_minimum() {
        let mut w = TimerWheel::new();
        assert_eq!(w.next_deadline(), None);
        w.insert(HORIZON + 17, "overflow");
        assert_eq!(w.next_deadline(), Some(HORIZON + 17));
        w.insert(500, "mid");
        w.insert(3, "soon");
        assert_eq!(w.next_deadline(), Some(3));
        w.advance(3);
        assert_eq!(w.next_deadline(), Some(500));
        // A deadline already in the past still reports itself.
        w.insert(1, "late");
        assert_eq!(w.next_deadline(), Some(1));
    }

    #[test]
    fn level_boundary_deadline_fires_once_and_on_time() {
        // Regression: a deadline landing exactly on a level-boundary tick
        // (a multiple of 64, 64^2, 64^3, or the horizon) is cascaded and
        // fired in the same `advance` step — exactly once, never early,
        // never a tick late.
        let boundaries = [
            level_span(1),                     // 64
            level_span(2),                     // 4 096
            level_span(3),                     // 262 144
            HORIZON,                           // 16 777 216: top level turns over
            3 * level_span(1),                 // boundary later than one slot
            2 * level_span(2) + level_span(1), // mixed-level boundary
        ];
        for &d in &boundaries {
            let mut w = TimerWheel::new();
            w.insert(d, "x");
            assert!(
                w.advance(d - 1).is_empty(),
                "deadline {d} fired early (at {})",
                d - 1
            );
            assert_eq!(w.advance(d), vec![(d, "x")], "deadline {d} missed its tick");
            assert!(w.advance(d + 1).is_empty(), "deadline {d} fired twice");
            assert_eq!(w.pending(), 0);
        }
        // Same, crossing the boundary one tick at a time (the cascade path
        // the scheduler thread actually exercises).
        let mut w = TimerWheel::new();
        let d = level_span(2); // 4 096
        w.insert(d, "y");
        let mut fired = Vec::new();
        for t in 1..=d + 2 {
            fired.extend(w.advance(t));
            if t < d {
                assert!(fired.is_empty(), "fired at {t}, before {d}");
            }
        }
        assert_eq!(fired, vec![(d, "y")]);
    }

    #[test]
    fn ten_thousand_entries_one_wheel() {
        let mut w = TimerWheel::new();
        for i in 0..10_000u64 {
            w.insert(1 + (i * 37) % 5000, i);
        }
        assert_eq!(w.pending(), 10_000);
        let mut seen = 0;
        let mut last = 0;
        let mut t = 0;
        while t < 5000 {
            t += 13;
            for (d, _) in w.advance(t) {
                assert!(d >= last, "deadline order violated");
                assert!(d <= t, "fired early: {d} at tick {t}");
                last = d;
                seen += 1;
            }
        }
        assert_eq!(seen, 10_000);
        assert_eq!(w.pending(), 0);
    }

    /// Pins the `pending == 0` fast path: an emptied wheel answers
    /// `next_deadline` without scanning its slots, no matter how deep the
    /// cursor sits or how scattered the previous entries were. The
    /// scheduler leans on this — an idle server calls `next_deadline`
    /// every tick, and a sparse wheel (entries spread across all four
    /// levels, then drained) must not degrade that to a 4×64-slot walk.
    #[test]
    fn next_deadline_is_cheap_on_drained_sparse_wheel() {
        let mut w = TimerWheel::new();
        // One entry per level plus overflow, maximally spread out.
        for d in [
            5,
            SLOTS as u64 * 3,
            (SLOTS as u64).pow(2) * 7,
            HORIZON - 1,
            HORIZON * 2,
        ] {
            w.insert(d, d);
        }
        // Drain past each deadline in turn; between drains the wheel is
        // sparse and the minimum must still be exact.
        let mut remaining = [
            5,
            SLOTS as u64 * 3,
            (SLOTS as u64).pow(2) * 7,
            HORIZON - 1,
            HORIZON * 2,
        ]
        .to_vec();
        while let Some(&next) = remaining.first() {
            assert_eq!(w.next_deadline(), Some(next));
            let fired = w.advance(next);
            assert_eq!(fired.len(), 1);
            remaining.remove(0);
        }
        // Cursor is now deep past HORIZON with every slot empty: the
        // fast path must answer None, repeatedly, from the counter alone.
        assert_eq!(w.pending(), 0);
        for _ in 0..1_000_000 {
            assert_eq!(w.next_deadline(), None);
        }
        // And the wheel is still live: a fresh far insert is tracked.
        let base = HORIZON * 2;
        w.insert(base + 40, base + 40);
        assert_eq!(w.next_deadline(), Some(base + 40));
    }
}
