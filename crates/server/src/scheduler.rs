//! The delay scheduler: one thread (or none), one timer wheel, any
//! number of pending delays.
//!
//! `GuardedDatabase::execute_with_deadline` turns the paper's policy into
//! per-tuple nanosecond deadlines on a [`Clock`]; this module enforces
//! them at scale. In the default **threaded** mode a single
//! [`DelayScheduler`] thread owns a [`TimerWheel`](crate::wheel) and maps
//! clock time onto wheel ticks, so 10 000 concurrent delays cost 10 000
//! wheel entries — not 10 000 sleeping threads or tasks. In **manual**
//! mode there is no thread at all: a deterministic test harness advances
//! a simulated clock itself and calls [`DelayScheduler::poll`], making
//! every firing a pure function of (schedule calls, clock advances).
//!
//! Jobs (closures that push a `ROW`/`DONE` frame into a connection's
//! bounded send queue) must be quick and non-blocking: they run on the
//! scheduler thread (or the polling thread, in manual mode).
//!
//! Firing is never early: a deadline maps to the tick *ceiling*, and the
//! wheel releases a tick only once clock time has passed it.

use crate::metrics::ServerMetrics;
use crate::wheel::TimerWheel;
use delayguard_core::clock::{Clock, RealClock};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Work fired when a deadline expires.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

struct State {
    wheel: TimerWheel<Job>,
    running: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Wakes the scheduler thread (new work, shutdown).
    work_cv: Condvar,
    /// Wakes drainers when the wheel runs dry.
    idle_cv: Condvar,
    clock: Arc<dyn Clock>,
    tick: Duration,
    tick_nanos: u64,
    metrics: ServerMetrics,
}

impl Shared {
    fn now_tick(&self) -> u64 {
        self.clock.now_nanos() / self.tick_nanos
    }

    fn deadline_tick(&self, deadline_nanos: u64) -> u64 {
        deadline_nanos.div_ceil(self.tick_nanos)
    }
}

/// A single-threaded timer-wheel scheduler for delay enforcement.
pub struct DelayScheduler {
    shared: Arc<Shared>,
    thread: Mutex<Option<JoinHandle<()>>>,
    /// Manual mode: no thread; the owner drives [`Self::poll`].
    manual: bool,
}

impl DelayScheduler {
    /// Start the scheduler thread with the given tick granularity,
    /// reading the real clock.
    ///
    /// # Panics
    /// If `tick` is zero.
    pub fn start(tick: Duration, metrics: ServerMetrics) -> Arc<DelayScheduler> {
        DelayScheduler::start_with_clock(tick, metrics, RealClock::shared())
    }

    /// Start the scheduler thread against an explicit clock. Deadlines
    /// passed to [`Self::schedule`] are nanoseconds on that clock.
    pub fn start_with_clock(
        tick: Duration,
        metrics: ServerMetrics,
        clock: Arc<dyn Clock>,
    ) -> Arc<DelayScheduler> {
        let shared = DelayScheduler::shared(tick, metrics, clock);
        shared.metrics.scheduler_threads.set(1);
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("delayguard-wheel".into())
            .spawn(move || run(thread_shared))
            .expect("spawn scheduler thread");
        Arc::new(DelayScheduler {
            shared,
            thread: Mutex::new(Some(handle)),
            manual: false,
        })
    }

    /// A scheduler with **no thread**: deadlines fire only when the owner
    /// calls [`Self::poll`] after advancing `clock`. This is the
    /// deterministic-simulation mode — with a manual clock, the complete
    /// firing schedule is a pure function of the calls made.
    pub fn manual(
        tick: Duration,
        metrics: ServerMetrics,
        clock: Arc<dyn Clock>,
    ) -> Arc<DelayScheduler> {
        let shared = DelayScheduler::shared(tick, metrics, clock);
        Arc::new(DelayScheduler {
            shared,
            thread: Mutex::new(None),
            manual: true,
        })
    }

    fn shared(tick: Duration, metrics: ServerMetrics, clock: Arc<dyn Clock>) -> Arc<Shared> {
        assert!(tick > Duration::ZERO, "tick must be positive");
        Arc::new(Shared {
            state: Mutex::new(State {
                wheel: TimerWheel::new(),
                running: true,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            clock,
            tick,
            tick_nanos: tick.as_nanos() as u64,
            metrics,
        })
    }

    /// Schedule `job` to run once clock time reaches `deadline_nanos`
    /// (nanoseconds on the scheduler's clock).
    pub fn schedule(&self, deadline_nanos: u64, job: Job) {
        let tick = self.shared.deadline_tick(deadline_nanos);
        let mut st = self.shared.state.lock().unwrap();
        st.wheel.insert(tick, job);
        self.shared.metrics.scheduler_scheduled.inc();
        self.shared
            .metrics
            .scheduler_pending
            .set(st.wheel.pending() as i64);
        drop(st);
        self.shared.work_cv.notify_one();
    }

    /// Schedule a batch of `(deadline_nanos, job)` pairs under **one**
    /// lock acquisition and one scheduler wakeup, preserving the batch's
    /// order among equal deadlines. The streaming gate files a whole
    /// chunk's releases this way instead of taking the wheel lock per
    /// row.
    pub fn schedule_batch(&self, jobs: impl IntoIterator<Item = (u64, Job)>) {
        let mut st = self.shared.state.lock().unwrap();
        let mut n = 0u64;
        for (deadline_nanos, job) in jobs {
            let tick = self.shared.deadline_tick(deadline_nanos);
            st.wheel.insert(tick, job);
            n += 1;
        }
        if n == 0 {
            return;
        }
        self.shared.metrics.scheduler_scheduled.add(n);
        self.shared
            .metrics
            .scheduler_pending
            .set(st.wheel.pending() as i64);
        drop(st);
        self.shared.work_cv.notify_one();
    }

    /// Nanoseconds per wheel tick. Deadlines within the same tick fire in
    /// one batch; the gate uses this to coalesce same-tick row releases
    /// into a single job.
    pub fn tick_nanos(&self) -> u64 {
        self.shared.tick_nanos
    }

    /// Delays currently pending on the wheel.
    pub fn pending(&self) -> usize {
        self.shared.state.lock().unwrap().wheel.pending()
    }

    /// The earliest pending deadline, in nanoseconds on the scheduler's
    /// clock (the tick a simulated clock must reach for the next firing),
    /// or `None` if the wheel is empty.
    pub fn next_deadline_nanos(&self) -> Option<u64> {
        let st = self.shared.state.lock().unwrap();
        st.wheel
            .next_deadline()
            .map(|tick| tick.saturating_mul(self.shared.tick_nanos))
    }

    /// Fire everything whose deadline has been reached at the clock's
    /// current time, running the jobs on the calling thread. Returns the
    /// number of jobs fired. This is the manual-mode drive; it is also
    /// safe (if pointless) alongside the scheduler thread.
    pub fn poll(&self) -> usize {
        let mut st = self.shared.state.lock().unwrap();
        let now = self.shared.now_tick();
        let fired = st.wheel.advance(now);
        self.shared
            .metrics
            .scheduler_pending
            .set(st.wheel.pending() as i64);
        let wheel_dry = st.wheel.pending() == 0;
        drop(st);
        let n = fired.len();
        if n > 0 {
            self.shared.metrics.scheduler_fired.add(n as u64);
            for (_, job) in fired {
                job();
            }
        }
        if wheel_dry {
            self.shared.idle_cv.notify_all();
        }
        n
    }

    /// Wait until every scheduled delay has fired, then stop.
    ///
    /// The caller must ensure no new work is scheduled concurrently (the
    /// server refuses queries before draining), or this never returns.
    /// In manual mode this advances the scheduler's clock through every
    /// remaining deadline (a manual clock jumps; the firings still happen
    /// in deadline order, one poll per pending tick).
    pub fn drain(&self) {
        if self.manual {
            loop {
                self.poll();
                let Some(next) = self.next_deadline_nanos() else {
                    break;
                };
                self.shared.clock.sleep_until_nanos(next);
            }
            self.shared.state.lock().unwrap().running = false;
            return;
        }
        let mut st = self.shared.state.lock().unwrap();
        while st.wheel.pending() > 0 {
            st = self.shared.idle_cv.wait(st).unwrap();
        }
        st.running = false;
        drop(st);
        self.shared.work_cv.notify_all();
        self.join();
    }

    /// Stop immediately, discarding pending delays (tests / hard stop).
    pub fn stop_now(&self) {
        self.shared.state.lock().unwrap().running = false;
        self.shared.work_cv.notify_all();
        self.join();
    }

    fn join(&self) {
        if let Some(handle) = self.thread.lock().unwrap().take() {
            handle.join().expect("scheduler thread panicked");
        }
    }
}

fn run(shared: Arc<Shared>) {
    let mut st = shared.state.lock().unwrap();
    loop {
        if !st.running {
            break;
        }
        let now = shared.now_tick();
        let fired = st.wheel.advance(now);
        shared
            .metrics
            .scheduler_pending
            .set(st.wheel.pending() as i64);
        if !fired.is_empty() {
            shared.metrics.scheduler_fired.add(fired.len() as u64);
            let wheel_dry = st.wheel.pending() == 0;
            drop(st);
            // Run jobs off-lock: they push into per-connection queues.
            for (_, job) in fired {
                job();
            }
            if wheel_dry {
                shared.idle_cv.notify_all();
            }
            st = shared.state.lock().unwrap();
            continue;
        }
        if st.wheel.pending() == 0 {
            shared.idle_cv.notify_all();
            st = shared.work_cv.wait(st).unwrap();
        } else {
            // Sleep one tick; precision is bounded by the tick, and
            // deadlines round up, so firing is never early.
            let (guard, _) = shared.work_cv.wait_timeout(st, shared.tick).unwrap();
            st = guard;
        }
    }
    shared.metrics.scheduler_threads.set(0);
    shared.idle_cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayguard_core::clock::{secs_to_nanos, ManualClock};
    use delayguard_sim::Registry;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Instant;

    fn metrics() -> (Registry, ServerMetrics) {
        let r = Registry::new();
        let m = ServerMetrics::new(&r);
        (r, m)
    }

    #[test]
    fn fires_in_order_and_never_early() {
        let (_r, m) = metrics();
        let clock = RealClock::shared();
        let sched =
            DelayScheduler::start_with_clock(Duration::from_millis(1), m, Arc::clone(&clock));
        let (tx, rx) = mpsc::channel();
        let start_nanos = clock.now_nanos();
        let start = Instant::now();
        for &ms in &[30u64, 10, 20] {
            let tx = tx.clone();
            sched.schedule(
                start_nanos + ms * 1_000_000,
                Box::new(move || tx.send((ms, Instant::now())).unwrap()),
            );
        }
        let mut got = Vec::new();
        for _ in 0..3 {
            got.push(rx.recv_timeout(Duration::from_secs(2)).unwrap());
        }
        assert_eq!(
            got.iter().map(|&(ms, _)| ms).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
        for (ms, at) in got {
            assert!(
                at.duration_since(start) >= Duration::from_millis(ms),
                "{ms}ms job fired early"
            );
        }
        sched.stop_now();
    }

    #[test]
    fn drain_waits_for_all_jobs() {
        let (_r, m) = metrics();
        let clock = RealClock::shared();
        let sched =
            DelayScheduler::start_with_clock(Duration::from_millis(1), m, Arc::clone(&clock));
        let count = Arc::new(AtomicUsize::new(0));
        let start = clock.now_nanos();
        for i in 0..50u64 {
            let count = Arc::clone(&count);
            sched.schedule(
                start + (5 + i % 40) * 1_000_000,
                Box::new(move || {
                    count.fetch_add(1, Ordering::SeqCst);
                }),
            );
        }
        sched.drain();
        assert_eq!(count.load(Ordering::SeqCst), 50);
        assert_eq!(sched.pending(), 0);
    }

    #[test]
    fn one_thread_many_delays() {
        let (r, m) = metrics();
        let clock = RealClock::shared();
        let sched =
            DelayScheduler::start_with_clock(Duration::from_millis(1), m, Arc::clone(&clock));
        let start = clock.now_nanos();
        for _ in 0..10_000 {
            sched.schedule(start + 40_000_000, Box::new(|| {}));
        }
        assert!(sched.pending() >= 9_000);
        sched.drain();
        let pending_high = match r.value("scheduler_pending") {
            Some(delayguard_sim::MetricValue::Gauge { high_water, .. }) => high_water,
            other => panic!("{other:?}"),
        };
        assert!(pending_high >= 10_000, "high water {pending_high}");
        let threads_high = match r.value("scheduler_threads") {
            Some(delayguard_sim::MetricValue::Gauge { high_water, .. }) => high_water,
            other => panic!("{other:?}"),
        };
        assert_eq!(threads_high, 1, "one scheduler thread, not one per delay");
    }

    #[test]
    fn manual_mode_fires_only_when_polled() {
        let (_r, m) = metrics();
        let clock = ManualClock::shared();
        let sched = DelayScheduler::manual(
            Duration::from_millis(1),
            m,
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        let count = Arc::new(AtomicUsize::new(0));
        for secs in [3.0f64, 1.0, 2.0] {
            let count = Arc::clone(&count);
            sched.schedule(
                secs_to_nanos(secs),
                Box::new(move || {
                    count.fetch_add(1, Ordering::SeqCst);
                }),
            );
        }
        assert_eq!(sched.pending(), 3);
        assert_eq!(sched.next_deadline_nanos(), Some(secs_to_nanos(1.0)));
        // Time passes but nobody polls: nothing fires.
        clock.advance_to_secs(1.5);
        assert_eq!(count.load(Ordering::SeqCst), 0);
        assert_eq!(sched.poll(), 1);
        assert_eq!(count.load(Ordering::SeqCst), 1);
        assert_eq!(sched.next_deadline_nanos(), Some(secs_to_nanos(2.0)));
        // Polling without advancing fires nothing.
        assert_eq!(sched.poll(), 0);
        clock.advance_to_secs(10.0);
        assert_eq!(sched.poll(), 2);
        assert_eq!(sched.pending(), 0);
        assert_eq!(sched.next_deadline_nanos(), None);
    }

    #[test]
    fn manual_drain_jumps_through_deadlines() {
        let (_r, m) = metrics();
        let clock = ManualClock::shared();
        let sched = DelayScheduler::manual(
            Duration::from_millis(1),
            m,
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        let order = Arc::new(Mutex::new(Vec::new()));
        for secs in [5.0f64, 1.0, 3.0] {
            let order = Arc::clone(&order);
            sched.schedule(
                secs_to_nanos(secs),
                Box::new(move || order.lock().unwrap().push(secs as u64)),
            );
        }
        sched.drain();
        assert_eq!(*order.lock().unwrap(), vec![1, 3, 5]);
        assert!(clock.now_secs() >= 5.0);
    }
}
