//! The delay scheduler: one thread, one timer wheel, any number of
//! pending delays.
//!
//! `GuardedDatabase::execute_with_deadline` turns the paper's policy into
//! per-tuple `Instant` deadlines; this module enforces them at scale. A
//! single [`DelayScheduler`] thread owns a [`TimerWheel`](crate::wheel)
//! and maps wall-clock time onto wheel ticks, so 10 000 concurrent
//! delays cost 10 000 wheel entries — not 10 000 sleeping threads or
//! tasks. Jobs (closures that push a `ROW`/`DONE` frame into a
//! connection's bounded send queue) must be quick and non-blocking: they
//! run on the scheduler thread.
//!
//! Firing is never early: a deadline maps to the tick *ceiling*, and the
//! wheel releases a tick only once wall time has passed it.

use crate::metrics::ServerMetrics;
use crate::wheel::TimerWheel;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Work fired when a deadline expires.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

struct State {
    wheel: TimerWheel<Job>,
    running: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Wakes the scheduler thread (new work, shutdown).
    work_cv: Condvar,
    /// Wakes drainers when the wheel runs dry.
    idle_cv: Condvar,
    epoch: Instant,
    tick: Duration,
    metrics: ServerMetrics,
}

impl Shared {
    fn now_tick(&self) -> u64 {
        (self.epoch.elapsed().as_nanos() / self.tick.as_nanos()) as u64
    }

    fn deadline_tick(&self, deadline: Instant) -> u64 {
        let offset = deadline.saturating_duration_since(self.epoch).as_nanos();
        let tick = self.tick.as_nanos();
        (offset.div_ceil(tick)) as u64
    }
}

/// A single-threaded timer-wheel scheduler for delay enforcement.
pub struct DelayScheduler {
    shared: Arc<Shared>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl DelayScheduler {
    /// Start the scheduler thread with the given tick granularity.
    ///
    /// # Panics
    /// If `tick` is zero.
    pub fn start(tick: Duration, metrics: ServerMetrics) -> Arc<DelayScheduler> {
        assert!(tick > Duration::ZERO, "tick must be positive");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                wheel: TimerWheel::new(),
                running: true,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            epoch: Instant::now(),
            tick,
            metrics,
        });
        shared.metrics.scheduler_threads.set(1);
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("delayguard-wheel".into())
            .spawn(move || run(thread_shared))
            .expect("spawn scheduler thread");
        Arc::new(DelayScheduler {
            shared,
            thread: Mutex::new(Some(handle)),
        })
    }

    /// Schedule `job` to run once wall time reaches `deadline`.
    pub fn schedule(&self, deadline: Instant, job: Job) {
        let tick = self.shared.deadline_tick(deadline);
        let mut st = self.shared.state.lock().unwrap();
        st.wheel.insert(tick, job);
        self.shared.metrics.scheduler_scheduled.inc();
        self.shared
            .metrics
            .scheduler_pending
            .set(st.wheel.pending() as i64);
        drop(st);
        self.shared.work_cv.notify_one();
    }

    /// Delays currently pending on the wheel.
    pub fn pending(&self) -> usize {
        self.shared.state.lock().unwrap().wheel.pending()
    }

    /// Wait until every scheduled delay has fired, then stop the thread.
    ///
    /// The caller must ensure no new work is scheduled concurrently (the
    /// server refuses queries before draining), or this never returns.
    pub fn drain(&self) {
        let mut st = self.shared.state.lock().unwrap();
        while st.wheel.pending() > 0 {
            st = self.shared.idle_cv.wait(st).unwrap();
        }
        st.running = false;
        drop(st);
        self.shared.work_cv.notify_all();
        self.join();
    }

    /// Stop immediately, discarding pending delays (tests / hard stop).
    pub fn stop_now(&self) {
        self.shared.state.lock().unwrap().running = false;
        self.shared.work_cv.notify_all();
        self.join();
    }

    fn join(&self) {
        if let Some(handle) = self.thread.lock().unwrap().take() {
            handle.join().expect("scheduler thread panicked");
        }
    }
}

fn run(shared: Arc<Shared>) {
    let mut st = shared.state.lock().unwrap();
    loop {
        if !st.running {
            break;
        }
        let now = shared.now_tick();
        let fired = st.wheel.advance(now);
        shared
            .metrics
            .scheduler_pending
            .set(st.wheel.pending() as i64);
        if !fired.is_empty() {
            shared.metrics.scheduler_fired.add(fired.len() as u64);
            let wheel_dry = st.wheel.pending() == 0;
            drop(st);
            // Run jobs off-lock: they push into per-connection queues.
            for (_, job) in fired {
                job();
            }
            if wheel_dry {
                shared.idle_cv.notify_all();
            }
            st = shared.state.lock().unwrap();
            continue;
        }
        if st.wheel.pending() == 0 {
            shared.idle_cv.notify_all();
            st = shared.work_cv.wait(st).unwrap();
        } else {
            // Sleep one tick; precision is bounded by the tick, and
            // deadlines round up, so firing is never early.
            let (guard, _) = shared.work_cv.wait_timeout(st, shared.tick).unwrap();
            st = guard;
        }
    }
    shared.metrics.scheduler_threads.set(0);
    shared.idle_cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayguard_sim::Registry;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    fn metrics() -> (Registry, ServerMetrics) {
        let r = Registry::new();
        let m = ServerMetrics::new(&r);
        (r, m)
    }

    #[test]
    fn fires_in_order_and_never_early() {
        let (_r, m) = metrics();
        let sched = DelayScheduler::start(Duration::from_millis(1), m);
        let (tx, rx) = mpsc::channel();
        let start = Instant::now();
        for &ms in &[30u64, 10, 20] {
            let tx = tx.clone();
            sched.schedule(
                start + Duration::from_millis(ms),
                Box::new(move || tx.send((ms, Instant::now())).unwrap()),
            );
        }
        let mut got = Vec::new();
        for _ in 0..3 {
            got.push(rx.recv_timeout(Duration::from_secs(2)).unwrap());
        }
        assert_eq!(
            got.iter().map(|&(ms, _)| ms).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
        for (ms, at) in got {
            assert!(
                at.duration_since(start) >= Duration::from_millis(ms),
                "{ms}ms job fired early"
            );
        }
        sched.stop_now();
    }

    #[test]
    fn drain_waits_for_all_jobs() {
        let (_r, m) = metrics();
        let sched = DelayScheduler::start(Duration::from_millis(1), m);
        let count = Arc::new(AtomicUsize::new(0));
        let start = Instant::now();
        for i in 0..50u64 {
            let count = Arc::clone(&count);
            sched.schedule(
                start + Duration::from_millis(5 + i % 40),
                Box::new(move || {
                    count.fetch_add(1, Ordering::SeqCst);
                }),
            );
        }
        sched.drain();
        assert_eq!(count.load(Ordering::SeqCst), 50);
        assert_eq!(sched.pending(), 0);
    }

    #[test]
    fn one_thread_many_delays() {
        let (r, m) = metrics();
        let sched = DelayScheduler::start(Duration::from_millis(1), m);
        let start = Instant::now();
        for _ in 0..10_000 {
            sched.schedule(start + Duration::from_millis(40), Box::new(|| {}));
        }
        assert!(sched.pending() >= 9_000);
        sched.drain();
        let pending_high = match r.value("scheduler_pending") {
            Some(delayguard_sim::MetricValue::Gauge { high_water, .. }) => high_water,
            other => panic!("{other:?}"),
        };
        assert!(pending_high >= 10_000, "high water {pending_high}");
        let threads_high = match r.value("scheduler_threads") {
            Some(delayguard_sim::MetricValue::Gauge { high_water, .. }) => high_water,
            other => panic!("{other:?}"),
        };
        assert_eq!(threads_high, 1, "one scheduler thread, not one per delay");
    }
}
