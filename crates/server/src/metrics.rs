//! The server's metric handles, drawn from the shared
//! [`delayguard_sim::Registry`].
//!
//! One struct holds pre-resolved counter/gauge handles so hot paths never
//! touch the registry lock; the `STATS` verb renders the same registry,
//! and simulations can publish into it too (the registry type lives in
//! `delayguard-sim`).

use delayguard_sim::{Counter, Gauge, Registry};

/// Pre-resolved handles for every metric the server records.
#[derive(Debug, Clone)]
pub struct ServerMetrics {
    /// Connections accepted into a session.
    pub connections_accepted: Counter,
    /// Connections shed at accept time (session limit reached).
    pub connections_shed: Counter,
    /// Live sessions (high-water = peak concurrency).
    pub sessions: Gauge,
    /// Identities handed out.
    pub users_registered: Counter,
    /// Registrations refused by the one-per-`t`-seconds policy.
    pub registrations_refused: Counter,
    /// Queries admitted past the gatekeeper.
    pub queries_admitted: Counter,
    /// Queries refused: not registered.
    pub refused_unregistered: Counter,
    /// Queries refused: per-user bucket empty.
    pub refused_user_rate: Counter,
    /// Queries refused: subnet aggregate bucket empty.
    pub refused_subnet_rate: Counter,
    /// Queries refused: send queue could not take the result set.
    pub refused_backpressure: Counter,
    /// Requests refused because the server is draining.
    pub refused_shutdown: Counter,
    /// Tuples streamed to clients.
    pub rows_streamed: Counter,
    /// Total delay charged, in microseconds.
    pub delay_micros_charged: Counter,
    /// Statements that failed in the engine.
    pub query_errors: Counter,
    /// Threads dedicated to delay scheduling (the acceptance criterion:
    /// stays at 1 no matter how many delays are pending).
    pub scheduler_threads: Gauge,
    /// Delays currently waiting on the timer wheel.
    pub scheduler_pending: Gauge,
    /// Delays ever scheduled on the wheel.
    pub scheduler_scheduled: Counter,
    /// Delays fired off the wheel.
    pub scheduler_fired: Counter,
    /// Replication deltas folded from peers (cluster only).
    pub deltas_applied: Counter,
    /// Replication deltas discarded as stale/duplicate (cluster only).
    pub deltas_stale: Counter,
    /// Replication deltas exported to peers (cluster only).
    pub deltas_exported: Counter,
}

impl ServerMetrics {
    /// Resolve every handle against `registry` (creating the metrics).
    pub fn new(registry: &Registry) -> ServerMetrics {
        ServerMetrics {
            connections_accepted: registry.counter("server_connections_accepted"),
            connections_shed: registry.counter("server_connections_shed"),
            sessions: registry.gauge("server_sessions"),
            users_registered: registry.counter("server_users_registered"),
            registrations_refused: registry.counter("server_registrations_refused"),
            queries_admitted: registry.counter("server_queries_admitted"),
            refused_unregistered: registry.counter("server_refused_unregistered"),
            refused_user_rate: registry.counter("server_refused_user_rate"),
            refused_subnet_rate: registry.counter("server_refused_subnet_rate"),
            refused_backpressure: registry.counter("server_refused_backpressure"),
            refused_shutdown: registry.counter("server_refused_shutdown"),
            rows_streamed: registry.counter("server_rows_streamed"),
            delay_micros_charged: registry.counter("server_delay_micros_charged"),
            query_errors: registry.counter("server_query_errors"),
            scheduler_threads: registry.gauge("scheduler_threads"),
            scheduler_pending: registry.gauge("scheduler_pending"),
            scheduler_scheduled: registry.counter("scheduler_scheduled_total"),
            scheduler_fired: registry.counter("scheduler_fired_total"),
            deltas_applied: registry.counter("cluster_deltas_applied"),
            deltas_stale: registry.counter("cluster_deltas_stale"),
            deltas_exported: registry.counter("cluster_deltas_exported"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_the_registry() {
        let registry = Registry::new();
        let m = ServerMetrics::new(&registry);
        m.queries_admitted.inc();
        m.sessions.add(2);
        assert_eq!(
            registry.value("server_queries_admitted"),
            Some(delayguard_sim::MetricValue::Counter(1))
        );
        let rendered = registry.render();
        assert!(rendered.contains("server_sessions"));
    }
}
