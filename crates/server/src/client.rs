//! A small blocking client for the delayguard wire protocol.
//!
//! Used by the integration tests, the demo example, and anything else
//! that wants to talk to a [`Server`](crate::server::Server) without
//! hand-rolling frames. One connection, sequential requests; each `ROW`
//! is timestamped on receipt so callers can verify delay enforcement.

use crate::protocol::{
    read_frame_buffered, write_frame_buffered, Frame, ProtocolError, RefuseReason,
    PROTOCOL_VERSION, ROWS_UNKNOWN,
};
use delayguard_core::clock::{Clock, RealClock};
use delayguard_storage::Row;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failed.
    Protocol(ProtocolError),
    /// The server sent a frame that does not fit the current exchange.
    Unexpected(Frame),
    /// The server closed the connection mid-exchange.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Unexpected(frame) => write!(f, "unexpected frame: {frame:?}"),
            ClientError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> ClientError {
        ClientError::Protocol(e)
    }
}

/// Result of [`Client::register`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RegisterOutcome {
    /// An identity was issued.
    Registered { user: u64, fee: f64 },
    /// Registration (or the connection itself) was refused.
    Refused {
        reason: RefuseReason,
        retry_after_secs: f64,
    },
}

/// One tuple as received, stamped with its arrival time.
#[derive(Debug, Clone)]
pub struct ReceivedRow {
    /// Sequence number within the result set.
    pub seq: u32,
    /// The tuple.
    pub row: Row,
    /// When the frame arrived, in nanoseconds on the client's clock.
    pub received_at_nanos: u64,
}

/// Result of [`Client::query`].
#[derive(Debug)]
pub enum QueryOutcome {
    /// A `SELECT` streamed to completion.
    Rows {
        columns: Vec<String>,
        rows: Vec<ReceivedRow>,
        /// Total delay the server charged.
        delay_secs: f64,
        /// Wall time from send to `DONE`.
        elapsed: Duration,
    },
    /// A non-`SELECT` statement completed.
    Done {
        delay_secs: f64,
        tuples: u32,
        elapsed: Duration,
    },
    /// The gatekeeper (or load shedding) refused the query.
    Refused {
        reason: RefuseReason,
        retry_after_secs: f64,
    },
    /// The engine rejected the statement.
    Failed { message: String },
}

impl QueryOutcome {
    /// Wall time to completion, if the query ran.
    pub fn elapsed(&self) -> Option<Duration> {
        match self {
            QueryOutcome::Rows { elapsed, .. } | QueryOutcome::Done { elapsed, .. } => {
                Some(*elapsed)
            }
            _ => None,
        }
    }

    /// The refusal reason, if refused.
    pub fn refusal(&self) -> Option<RefuseReason> {
        match self {
            QueryOutcome::Refused { reason, .. } => Some(*reason),
            _ => None,
        }
    }
}

/// Result of [`Client::insert`] / [`Client::update`] / [`Client::delete`].
#[derive(Debug)]
pub enum MutateOutcome {
    /// The write committed: affected row count and the table's data
    /// version after the commit.
    Mutated {
        rows: u32,
        data_version: u64,
        elapsed: Duration,
    },
    /// The gatekeeper (or load shedding, or a v1 session) refused it.
    Refused {
        reason: RefuseReason,
        retry_after_secs: f64,
    },
    /// The engine (or the verb check) rejected the statement.
    Failed { message: String },
}

/// A blocking protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_query_id: u32,
    clock: Arc<dyn Clock>,
    /// Reused frame encode buffer (one per connection, like the server).
    wbuf: Vec<u8>,
    /// Reused frame-body staging buffer for the read side.
    rbuf: Vec<u8>,
}

impl Client {
    /// Connect to a server, stamping arrivals with a fresh real clock.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        Client::connect_with_clock(addr, RealClock::shared())
    }

    /// Connect, stamping arrivals and elapsed times on `clock` (lets
    /// tests compare client-observed times against a server sharing the
    /// same clock).
    pub fn connect_with_clock(addr: SocketAddr, clock: Arc<dyn Clock>) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let write_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            next_query_id: 1,
            clock,
            wbuf: Vec::with_capacity(256),
            rbuf: Vec::new(),
        })
    }

    fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        write_frame_buffered(&mut self.writer, frame, &mut self.wbuf)?;
        self.writer
            .flush()
            .map_err(|e| ClientError::Protocol(ProtocolError::Io(e)))?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Frame, ClientError> {
        match read_frame_buffered(&mut self.reader, &mut self.rbuf)? {
            Some(frame) => Ok(frame),
            None => Err(ClientError::Closed),
        }
    }

    /// Register using the connection's peer address as identity source.
    pub fn register(&mut self) -> Result<RegisterOutcome, ClientError> {
        self.register_as([0, 0, 0, 0])
    }

    /// Register claiming `ip` (honored only by servers configured with
    /// `trust_client_ip`; `[0;4]` falls back to the peer address).
    /// Negotiates the current protocol version (trailer framing).
    pub fn register_as(&mut self, ip: [u8; 4]) -> Result<RegisterOutcome, ClientError> {
        self.send(&Frame::Register {
            claimed_ip: ip,
            version: PROTOCOL_VERSION,
        })?;
        match self.recv()? {
            Frame::Registered { user, fee } => Ok(RegisterOutcome::Registered { user, fee }),
            Frame::Refused {
                reason,
                retry_after_secs,
                ..
            } => Ok(RegisterOutcome::Refused {
                reason,
                retry_after_secs,
            }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Run one statement as `user`, blocking until the delayed result has
    /// fully streamed (or the request is refused / fails).
    pub fn query(&mut self, user: u64, sql: &str) -> Result<QueryOutcome, ClientError> {
        let query_id = self.next_query_id;
        self.next_query_id += 1;
        let started = self.clock.now_nanos();
        let elapsed_since = |clock: &Arc<dyn Clock>| {
            Duration::from_nanos(clock.now_nanos().saturating_sub(started))
        };
        self.send(&Frame::Query {
            query_id,
            user,
            sql: sql.to_string(),
        })?;
        // First frame decides the shape of the exchange.
        let (columns, expected) = match self.recv()? {
            Frame::Refused {
                query_id: qid,
                reason,
                retry_after_secs,
            } if qid == query_id || qid == 0 => {
                return Ok(QueryOutcome::Refused {
                    reason,
                    retry_after_secs,
                })
            }
            Frame::Error {
                query_id: qid,
                message,
            } if qid == query_id => return Ok(QueryOutcome::Failed { message }),
            Frame::Done {
                query_id: qid,
                delay_secs,
                tuples,
            } if qid == query_id => {
                return Ok(QueryOutcome::Done {
                    delay_secs,
                    tuples,
                    elapsed: elapsed_since(&self.clock),
                })
            }
            Frame::RowsBegin {
                query_id: qid,
                columns,
                rows,
            } if qid == query_id => (columns, rows),
            other => return Err(ClientError::Unexpected(other)),
        };
        // ROWS_UNKNOWN means trailer framing: the count arrives in
        // ROWS_END, so don't trust the sentinel as an allocation hint.
        let mut rows = Vec::with_capacity(if expected == ROWS_UNKNOWN {
            0
        } else {
            expected as usize
        });
        loop {
            match self.recv()? {
                Frame::Row {
                    query_id: qid,
                    seq,
                    row,
                } if qid == query_id => rows.push(ReceivedRow {
                    seq,
                    row,
                    received_at_nanos: self.clock.now_nanos(),
                }),
                Frame::RowsEnd { query_id: qid, .. } if qid == query_id => {}
                // Mid-stream shed: the server delivered every charged row
                // and then refused the remainder.
                Frame::Refused {
                    query_id: qid,
                    reason,
                    retry_after_secs,
                } if qid == query_id || qid == 0 => {
                    return Ok(QueryOutcome::Refused {
                        reason,
                        retry_after_secs,
                    })
                }
                Frame::Done {
                    query_id: qid,
                    delay_secs,
                    ..
                } if qid == query_id => {
                    return Ok(QueryOutcome::Rows {
                        columns,
                        rows,
                        delay_secs,
                        elapsed: elapsed_since(&self.clock),
                    })
                }
                other => return Err(ClientError::Unexpected(other)),
            }
        }
    }

    /// Register speaking protocol version 1 (legacy count-up-front
    /// framing) — for exercising the v1 compatibility surface, which
    /// includes being refused writes with `WritesUnsupported`.
    pub fn register_v1(&mut self) -> Result<RegisterOutcome, ClientError> {
        self.send(&Frame::Register {
            claimed_ip: [0, 0, 0, 0],
            version: 1,
        })?;
        match self.recv()? {
            Frame::Registered { user, fee } => Ok(RegisterOutcome::Registered { user, fee }),
            Frame::Refused {
                reason,
                retry_after_secs,
                ..
            } => Ok(RegisterOutcome::Refused {
                reason,
                retry_after_secs,
            }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Run an `INSERT` as `user` through the v2 write verb, blocking
    /// until the `MUTATED` confirmation (or refusal/error) arrives.
    pub fn insert(&mut self, user: u64, sql: &str) -> Result<MutateOutcome, ClientError> {
        let query_id = self.next_query_id;
        self.next_query_id += 1;
        self.mutate_inner(
            query_id,
            Frame::Insert {
                query_id,
                user,
                sql: sql.to_string(),
            },
        )
    }

    /// Run an `UPDATE` as `user` through the v2 write verb.
    pub fn update(&mut self, user: u64, sql: &str) -> Result<MutateOutcome, ClientError> {
        let query_id = self.next_query_id;
        self.next_query_id += 1;
        self.mutate_inner(
            query_id,
            Frame::Update {
                query_id,
                user,
                sql: sql.to_string(),
            },
        )
    }

    /// Run a `DELETE` as `user` through the v2 write verb.
    pub fn delete(&mut self, user: u64, sql: &str) -> Result<MutateOutcome, ClientError> {
        let query_id = self.next_query_id;
        self.next_query_id += 1;
        self.mutate_inner(
            query_id,
            Frame::Delete {
                query_id,
                user,
                sql: sql.to_string(),
            },
        )
    }

    fn mutate_inner(&mut self, query_id: u32, frame: Frame) -> Result<MutateOutcome, ClientError> {
        let started = self.clock.now_nanos();
        self.send(&frame)?;
        match self.recv()? {
            Frame::Mutated {
                query_id: qid,
                rows,
                data_version,
            } if qid == query_id => Ok(MutateOutcome::Mutated {
                rows,
                data_version,
                elapsed: Duration::from_nanos(self.clock.now_nanos().saturating_sub(started)),
            }),
            Frame::Refused {
                query_id: qid,
                reason,
                retry_after_secs,
            } if qid == query_id || qid == 0 => Ok(MutateOutcome::Refused {
                reason,
                retry_after_secs,
            }),
            Frame::Error {
                query_id: qid,
                message,
            } if qid == query_id => Ok(MutateOutcome::Failed { message }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Fetch a rendered metrics snapshot.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        self.send(&Frame::Stats)?;
        match self.recv()? {
            Frame::StatsReply { rendered } => Ok(rendered),
            other => Err(ClientError::Unexpected(other)),
        }
    }
}
