//! The TCP transport for the front door: accept loop, per-connection
//! sessions, bounded send queues, and graceful drain.
//!
//! All protocol *policy* — gatekeeper admission, delay pricing, deadline
//! scheduling, refusal codes — lives in the transport-agnostic
//! [`FrontDoor`](crate::gate::FrontDoor); this module owns the sockets
//! and threads that carry it:
//!
//! * one accept thread; connections beyond `max_sessions` are shed with
//!   an explicit `REFUSED(Overloaded)` carrying a retry hint,
//! * two threads per admitted session — a reader running admission and
//!   the query engine, and a writer draining that connection's bounded
//!   [`SendQueue`],
//! * one [`DelayScheduler`] thread enforcing every tuple deadline in the
//!   process on a single timer wheel.
//!
//! Backpressure: each `SELECT` must reserve queue slots for its entire
//! result set *at admission time*; if the connection's outstanding rows
//! would exceed `send_queue_rows`, the query is refused with
//! `Overloaded` instead of letting scheduler jobs block on a slow
//! client. Scheduler jobs therefore never wait: they push into
//! pre-reserved slots and drop frames only for dead connections.
//!
//! Graceful shutdown ([`ServerHandle::shutdown`]): mark the front door
//! draining (new queries, registrations, and connections are refused
//! with `ShuttingDown`), wait for in-flight handlers to finish
//! scheduling, drain the wheel so every already-charged tuple is
//! delivered at its deadline, flush and close the send queues, then
//! join all threads.
//!
//! Time: the server adopts the guard's [`Clock`] (`db.clock()`), so
//! gatekeeper timestamps, guard deadlines, and wheel ticks share one
//! epoch. Socket-flush timeouts read the same clock.

use crate::gate::{FrameSink, FrontDoor, GateConfig, SessionControl, SessionState};
use crate::metrics::ServerMetrics;
use crate::protocol::{
    encode_frame_into, read_frame_buffered, write_frame, Frame, ProtocolError, RefuseReason,
};
use crate::scheduler::DelayScheduler;
use delayguard_core::clock::{secs_to_nanos, Clock};
use delayguard_core::gatekeeper::GatekeeperConfig;
use delayguard_core::GuardedDatabase;
use delayguard_sim::{GuardStatsPublisher, Registry};
use parking_lot::Mutex as PMutex;
use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{IpAddr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Gatekeeper (registration + rate limiting) policy.
    pub gatekeeper: GatekeeperConfig,
    /// Maximum concurrent sessions; further connections are shed.
    pub max_sessions: usize,
    /// Per-connection cap on rows admitted but not yet written. A query
    /// whose result set does not fit the remaining budget is refused.
    pub send_queue_rows: usize,
    /// Timer-wheel granularity. Delays round up to the next tick.
    pub tick: Duration,
    /// Honor the `claimed_ip` field of `REGISTER` frames. Off by default
    /// (the peer address is authoritative); enable behind a trusted
    /// proxy, or in tests that need many subnets over loopback.
    pub trust_client_ip: bool,
    /// Retry hint attached to `Overloaded` / `ShuttingDown` refusals.
    pub retry_after_secs: f64,
    /// How many rows a streaming `SELECT` pulls from the executor (and
    /// reserves in the send queue) per chunk; bounds executor-side
    /// buffering per connection independently of result size.
    pub stream_chunk_rows: usize,
    /// How often the background refresher drains the guard's record queue
    /// and publishes a fresh policy snapshot. This is the server's half
    /// of the bounded-staleness contract: query threads also trip
    /// refreshes via `GuardConfig::snapshot`, but the dedicated thread
    /// keeps snapshot age bounded even when query threads are saturated.
    pub snapshot_refresh_interval: Duration,
    /// Append per-table popularity detail (access totals and the full
    /// key → rank order) to `STATS` replies. Off by default — the rank
    /// order is the very secret the delay policy defends, so exposing it
    /// to untrusted peers short-circuits the timing side-channel defense
    /// (see `GateConfig::stats_expose_popularity`).
    pub stats_expose_popularity: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            gatekeeper: GatekeeperConfig::default(),
            max_sessions: 64,
            send_queue_rows: 4096,
            tick: Duration::from_millis(1),
            trust_client_ip: false,
            retry_after_secs: 1.0,
            stream_chunk_rows: 256,
            snapshot_refresh_interval: Duration::from_millis(20),
            stats_expose_popularity: false,
        }
    }
}

impl ServerConfig {
    /// The transport-independent subset handed to the front door.
    fn gate_config(&self) -> GateConfig {
        GateConfig {
            gatekeeper: self.gatekeeper,
            trust_client_ip: self.trust_client_ip,
            retry_after_secs: self.retry_after_secs,
            stream_chunk_rows: self.stream_chunk_rows,
            stats_expose_popularity: self.stats_expose_popularity,
        }
    }
}

// ---- bounded per-connection send queue ----------------------------------

struct QueueInner {
    frames: VecDeque<Frame>,
    /// Rows admitted (reserved or queued) but not yet written to the
    /// socket. Charged by `try_reserve_rows`, released as the writer
    /// pops each row frame.
    outstanding_rows: usize,
    closed: bool,
}

/// A bounded queue of frames between a session's producer side (reader
/// thread + scheduler jobs) and its writer thread.
struct SendQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    /// Signalled when the queue empties (shutdown flush).
    empty: Condvar,
}

impl SendQueue {
    fn new() -> SendQueue {
        SendQueue {
            inner: Mutex::new(QueueInner {
                frames: VecDeque::new(),
                outstanding_rows: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            empty: Condvar::new(),
        }
    }

    /// Reserve capacity for `n` rows against `cap`. All-or-nothing, so a
    /// query either streams completely or is refused up front.
    fn try_reserve_rows(&self, n: usize, cap: usize) -> bool {
        let mut q = self.inner.lock().unwrap();
        if q.closed || q.outstanding_rows + n > cap {
            return false;
        }
        q.outstanding_rows += n;
        true
    }

    /// Queue a previously reserved row frame. Never blocks.
    fn push_row(&self, frame: Frame) {
        let mut q = self.inner.lock().unwrap();
        if q.closed {
            q.outstanding_rows = q.outstanding_rows.saturating_sub(1);
            return;
        }
        q.frames.push_back(frame);
        drop(q);
        self.ready.notify_one();
    }

    /// Queue a batch of previously reserved row frames under one lock
    /// acquisition and one writer wakeup. Never blocks.
    fn push_rows(&self, frames: &mut Vec<Frame>) {
        let mut q = self.inner.lock().unwrap();
        if q.closed {
            q.outstanding_rows = q.outstanding_rows.saturating_sub(frames.len());
            frames.clear();
            return;
        }
        q.frames.extend(frames.drain(..));
        drop(q);
        self.ready.notify_one();
    }

    /// Hand back reserved row slots without queueing frames (the error
    /// path of a write that reserved its reply and failed to apply).
    fn release_rows(&self, n: usize) {
        let mut q = self.inner.lock().unwrap();
        q.outstanding_rows = q.outstanding_rows.saturating_sub(n);
    }

    /// Queue a control frame (registration, refusal, begin/done, stats).
    /// Control frames bypass the row cap; they are small and bounded by
    /// the client's own request rate.
    fn push_control(&self, frame: Frame) {
        let mut q = self.inner.lock().unwrap();
        if q.closed {
            return;
        }
        q.frames.push_back(frame);
        drop(q);
        self.ready.notify_one();
    }

    /// Writer side: wait for the next frame; `None` once closed and empty.
    fn pop_blocking(&self) -> Option<(Frame, bool)> {
        let mut q = self.inner.lock().unwrap();
        loop {
            if let Some(frame) = q.frames.pop_front() {
                // MUTATED replies consume a reserved slot like rows do:
                // a write reserves its confirmation before applying.
                if matches!(frame, Frame::Row { .. } | Frame::Mutated { .. }) {
                    q.outstanding_rows = q.outstanding_rows.saturating_sub(1);
                }
                let more = !q.frames.is_empty();
                if !more {
                    self.empty.notify_all();
                }
                return Some((frame, more));
            }
            if q.closed {
                self.empty.notify_all();
                return None;
            }
            q = self.ready.wait(q).unwrap();
        }
    }

    /// Stop accepting frames; the writer drains what is queued and exits.
    fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
        self.empty.notify_all();
    }

    /// Wait until every queued frame has been handed to the writer,
    /// measuring the timeout on `clock`.
    fn wait_drained(&self, clock: &dyn Clock, timeout: Duration) -> bool {
        let deadline = clock.now_nanos().saturating_add(timeout.as_nanos() as u64);
        let mut q = self.inner.lock().unwrap();
        while !q.frames.is_empty() {
            let now = clock.now_nanos();
            if now >= deadline {
                return false;
            }
            let wait = Duration::from_nanos(deadline - now);
            let (guard, _) = self.empty.wait_timeout(q, wait).unwrap();
            q = guard;
        }
        true
    }
}

/// Shared per-connection state: the queue plus a stream handle the
/// shutdown path can use to unblock the reader.
struct Conn {
    queue: SendQueue,
    stream: TcpStream,
    /// Row budget for this connection ([`ServerConfig::send_queue_rows`]).
    rows_cap: usize,
    /// Protocol version negotiated at `REGISTER`.
    session: SessionState,
    done: AtomicBool,
    /// Set once the writer has flushed its last frame; shutdown waits for
    /// this before severing the stream, so no queued frame is cut off.
    writer_done: AtomicBool,
}

impl FrameSink for Conn {
    fn push_control(&self, frame: Frame) {
        self.queue.push_control(frame);
    }

    fn push_row(&self, frame: Frame) {
        self.queue.push_row(frame);
    }

    fn push_rows(&self, frames: &mut Vec<Frame>) {
        self.queue.push_rows(frames);
    }

    fn try_reserve_rows(&self, n: usize) -> bool {
        self.queue.try_reserve_rows(n, self.rows_cap)
    }

    fn release_rows(&self, n: usize) {
        self.queue.release_rows(n);
    }
}

// ---- the server itself --------------------------------------------------

struct Shared {
    config: ServerConfig,
    gate: FrontDoor,
    clock: Arc<dyn Clock>,
    metrics: ServerMetrics,
    /// Stops the accept loop.
    stop_accept: AtomicBool,
    /// Stops the snapshot refresher thread.
    stop_refresher: AtomicBool,
    /// Live sessions (the admission "semaphore").
    sessions: AtomicUsize,
    conns: PMutex<Vec<Arc<Conn>>>,
}

/// A running server; dropping the handle does **not** stop it — call
/// [`shutdown`](ServerHandle::shutdown).
pub struct Server;

/// Handle to a running [`Server`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    refresher_thread: Option<JoinHandle<()>>,
    session_threads: Arc<PMutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `db`, publishing metrics into `registry`. The server
    /// adopts the guard's clock, so guard deadlines and wheel ticks share
    /// one epoch.
    pub fn start(
        addr: &str,
        config: ServerConfig,
        db: Arc<GuardedDatabase>,
        registry: Registry,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let metrics = ServerMetrics::new(&registry);
        let clock = db.clock();
        let scheduler =
            DelayScheduler::start_with_clock(config.tick, metrics.clone(), Arc::clone(&clock));
        let gate = FrontDoor::new(
            config.gate_config(),
            Arc::clone(&db),
            scheduler,
            Arc::clone(&clock),
            metrics.clone(),
            registry,
        );
        let shared = Arc::new(Shared {
            config,
            gate,
            clock,
            metrics,
            stop_accept: AtomicBool::new(false),
            stop_refresher: AtomicBool::new(false),
            sessions: AtomicUsize::new(0),
            conns: PMutex::new(Vec::new()),
        });
        // Publish an initial snapshot synchronously so the first query
        // prices against everything learned before the server started
        // (pre-seeded popularity, warm-up traffic through `execute_at`).
        db.refresh();
        let refresher_shared = Arc::clone(&shared);
        let refresher_thread = std::thread::Builder::new()
            .name("delayguard-refresher".into())
            .spawn(move || refresher_loop(refresher_shared))?;
        let session_threads = Arc::new(PMutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_threads = Arc::clone(&session_threads);
        let accept_thread = std::thread::Builder::new()
            .name("delayguard-accept".into())
            .spawn(move || accept_loop(listener, accept_shared, accept_threads))?;
        Ok(ServerHandle {
            addr: local,
            shared,
            accept_thread: Some(accept_thread),
            refresher_thread: Some(refresher_thread),
            session_threads,
        })
    }
}

/// Background snapshot refresher: every `snapshot_refresh_interval`,
/// drain the guard's record queue into the master trackers, publish a
/// fresh policy snapshot, and export the machinery's health gauges.
fn refresher_loop(shared: Arc<Shared>) {
    let publisher = GuardStatsPublisher::new(shared.gate.registry());
    while !shared.stop_refresher.load(Ordering::SeqCst) {
        std::thread::sleep(shared.config.snapshot_refresh_interval);
        shared.gate.db().refresh();
        publisher.publish(shared.gate.db());
    }
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The metrics registry the server publishes into.
    pub fn registry(&self) -> &Registry {
        self.shared.gate.registry()
    }

    /// Gracefully shut down: refuse new work, deliver every in-flight
    /// delayed tuple at its deadline, then stop all threads.
    pub fn shutdown(mut self) {
        let shared = &self.shared;
        // 1. Refuse new queries/registrations/connections.
        shared.gate.begin_drain();
        // 2. Let handlers that already passed the draining check finish
        //    scheduling their result sets.
        while shared.gate.inflight_queries() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // 3. Deliver everything on the wheel at its deadline.
        shared.gate.scheduler().drain();
        // 3b. Stop the refresher and fold the final queued accesses into
        //     the master trackers: no recorded access is ever lost to
        //     shutdown.
        shared.stop_refresher.store(true, Ordering::SeqCst);
        if let Some(t) = self.refresher_thread.take() {
            let _ = t.join();
        }
        shared.gate.db().refresh();
        // 4. Flush and close every send queue, then unblock readers.
        let conns: Vec<Arc<Conn>> = shared.conns.lock().drain(..).collect();
        for conn in &conns {
            if conn.done.load(Ordering::SeqCst) {
                continue;
            }
            conn.queue
                .wait_drained(shared.clock.as_ref(), Duration::from_secs(10));
            conn.queue.close();
        }
        for conn in &conns {
            // Wait for the writer's final flush before severing the
            // stream, so clients receive every drained frame.
            let deadline = shared.clock.now_nanos() + secs_to_nanos(10.0);
            while !conn.writer_done.load(Ordering::SeqCst) && shared.clock.now_nanos() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        // 5. Stop accepting and join everything.
        shared.stop_accept.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let threads: Vec<JoinHandle<()>> = self.session_threads.lock().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    session_threads: Arc<PMutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.stop_accept.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                handle_accept(stream, peer, &shared, &session_threads);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Send a one-off refusal on a connection we are not admitting.
fn refuse_and_drop(stream: TcpStream, reason: RefuseReason, retry_after_secs: f64) {
    let mut w = BufWriter::new(stream);
    let _ = write_frame(
        &mut w,
        &Frame::Refused {
            query_id: 0,
            reason,
            retry_after_secs,
        },
    );
    let _ = w.flush();
}

fn handle_accept(
    stream: TcpStream,
    peer: SocketAddr,
    shared: &Arc<Shared>,
    session_threads: &Arc<PMutex<Vec<JoinHandle<()>>>>,
) {
    let retry = shared.config.retry_after_secs;
    if shared.gate.draining() {
        refuse_and_drop(stream, RefuseReason::ShuttingDown, retry);
        return;
    }
    // Admission "semaphore": claim a session slot or shed the connection.
    let prev = shared.sessions.fetch_add(1, Ordering::SeqCst);
    if prev >= shared.config.max_sessions {
        shared.sessions.fetch_sub(1, Ordering::SeqCst);
        shared.metrics.connections_shed.inc();
        refuse_and_drop(stream, RefuseReason::Overloaded, retry);
        return;
    }
    shared.metrics.connections_accepted.inc();
    shared.metrics.sessions.add(1);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_nonblocking(false);

    let conn = Arc::new(Conn {
        queue: SendQueue::new(),
        stream: stream.try_clone().expect("clone session stream"),
        rows_cap: shared.config.send_queue_rows,
        session: SessionState::new(),
        done: AtomicBool::new(false),
        writer_done: AtomicBool::new(false),
    });
    {
        let mut conns = shared.conns.lock();
        conns.retain(|c| !c.done.load(Ordering::SeqCst));
        conns.push(Arc::clone(&conn));
    }

    let writer_conn = Arc::clone(&conn);
    let writer_stream = stream.try_clone().expect("clone session stream");
    let writer = std::thread::Builder::new()
        .name("delayguard-writer".into())
        .spawn(move || writer_loop(writer_stream, writer_conn))
        .expect("spawn writer thread");

    let reader_shared = Arc::clone(shared);
    let reader_conn = Arc::clone(&conn);
    let reader = std::thread::Builder::new()
        .name("delayguard-session".into())
        .spawn(move || {
            session_loop(stream, peer, &reader_shared, &reader_conn);
            // Reader done: stop the writer once queued frames are out, then
            // sever the socket so the peer sees EOF. Without the shutdown the
            // clone held in `shared.conns` keeps the OS socket open and a
            // client whose session the server terminated (protocol error,
            // unexpected frame) would block forever waiting for a close.
            reader_conn.queue.close();
            let flush_deadline = reader_shared.clock.now_nanos() + secs_to_nanos(10.0);
            while !reader_conn.writer_done.load(Ordering::SeqCst)
                && reader_shared.clock.now_nanos() < flush_deadline
            {
                std::thread::sleep(Duration::from_millis(2));
            }
            let _ = reader_conn.stream.shutdown(Shutdown::Both);
            reader_conn.done.store(true, Ordering::SeqCst);
            reader_shared.sessions.fetch_sub(1, Ordering::SeqCst);
            reader_shared.metrics.sessions.add(-1);
        })
        .expect("spawn session thread");
    let mut threads = session_threads.lock();
    threads.push(writer);
    threads.push(reader);
}

/// Keep coalescing frames in the writer's buffer until it reaches this
/// size, then write even mid-burst, bounding writer memory.
const WRITER_COALESCE_BYTES: usize = 64 * 1024;

/// Shed the writer buffer's allocation after a burst leaves it larger
/// than this (a lone oversized `STATS_REPLY` must not pin megabytes for
/// the life of the connection).
const WRITER_BUF_RETAIN_BYTES: usize = 256 * 1024;

fn writer_loop(mut stream: TcpStream, conn: Arc<Conn>) {
    // One reusable encode buffer per connection replaces the old
    // `BufWriter` + per-frame body Vec: a burst of frames is laid down
    // back-to-back (zero steady-state allocations, one copy per byte)
    // and leaves in a single `write_all` at the queue boundary.
    let mut buf: Vec<u8> = Vec::with_capacity(8 * 1024);
    while let Some((frame, more)) = conn.queue.pop_blocking() {
        if encode_frame_into(&frame, &mut buf).is_err() {
            conn.queue.close();
            break;
        }
        // Write at queue boundaries so clients see frames promptly while
        // bursts still coalesce into large writes.
        if !more || buf.len() >= WRITER_COALESCE_BYTES {
            if stream.write_all(&buf).is_err() {
                conn.queue.close();
                break;
            }
            buf.clear();
            if buf.capacity() > WRITER_BUF_RETAIN_BYTES {
                buf = Vec::with_capacity(8 * 1024);
            }
        }
    }
    if !buf.is_empty() {
        let _ = stream.write_all(&buf);
    }
    let _ = stream.flush();
    conn.writer_done.store(true, Ordering::SeqCst);
}

fn peer_octets(peer: SocketAddr) -> [u8; 4] {
    match peer.ip() {
        IpAddr::V4(v4) => v4.octets(),
        IpAddr::V6(v6) => v6.to_ipv4().map(|v4| v4.octets()).unwrap_or([0, 0, 0, 0]),
    }
}

fn session_loop(stream: TcpStream, peer: SocketAddr, shared: &Arc<Shared>, conn: &Arc<Conn>) {
    let mut reader = BufReader::new(stream);
    let peer_ip = peer_octets(peer);
    // Reused frame-body staging buffer: one allocation per connection,
    // not one per received frame.
    let mut scratch: Vec<u8> = Vec::new();
    loop {
        let frame = match read_frame_buffered(&mut reader, &mut scratch) {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // clean EOF
            Err(ProtocolError::Io(_)) => return,
            Err(e) => {
                conn.queue.push_control(Frame::Error {
                    query_id: 0,
                    message: format!("protocol error: {e}"),
                });
                return;
            }
        };
        match shared
            .gate
            .handle_frame(frame, peer_ip, &conn.session, conn)
        {
            SessionControl::Continue => {}
            SessionControl::Terminate => return,
        }
    }
}
