//! The transport-agnostic front door: admission, delay pricing, and
//! deadline scheduling, shared verbatim by the threaded TCP server
//! ([`crate::server`]) and the deterministic simulation harness
//! (`delayguard-testkit`).
//!
//! A transport owns sockets (or simulated links) and per-connection
//! queues; everything the paper actually specifies — gatekeeper
//! admission, per-tuple delay charging, scheduling rows on the timer
//! wheel, refusal codes and retry hints, drain accounting — lives here,
//! behind two small seams:
//!
//! * [`FrameSink`]: where response frames go. The TCP server's bounded
//!   `SendQueue` implements it; the testkit's in-memory connection does
//!   too. `try_reserve_rows` is the backpressure seam: a `SELECT`
//!   reserves send-queue slots chunk by chunk as the executor produces
//!   rows ([`GateConfig::stream_chunk_rows`]) and is refused
//!   `Overloaded` the moment a chunk does not fit — *before* that
//!   chunk's tuples are charged to the popularity ledger.
//! * [`Clock`][delayguard_core::clock::Clock]: the front door never
//!   reads the wall directly; gatekeeper timestamps and scheduler
//!   deadlines come from the injected clock, so the same admission code
//!   is exact under simulation.
//!
//! Because both transports route every frame through [`FrontDoor`],
//! properties proven in simulation (refusal retry hints are exact, drain
//! delivers every charged tuple, Sybil swarms gain nothing) are
//! properties of the code the real server runs — not of a model of it.

use crate::metrics::ServerMetrics;
use crate::protocol::{Frame, RefuseReason, PROTOCOL_VERSION, ROWS_UNKNOWN};
use crate::scheduler::{DelayScheduler, Job};
use delayguard_core::clock::{secs_to_nanos, Clock};
use delayguard_core::gatekeeper::{
    Admission, Gatekeeper, GatekeeperConfig, Ipv4, RefusalReason, RegistrationOutcome, UserId,
};
use delayguard_core::replica::ReplicaDelta;
use delayguard_core::{ChargedChunk, DeadlineStream, GuardedDatabase, StreamedQuery};
use delayguard_query::ast::Statement;
use delayguard_query::engine::StatementOutput;
use delayguard_query::{parse, RowBuf};
use delayguard_sim::Registry;
use delayguard_storage::{Row, RowId};
use parking_lot::Mutex as PMutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// Where a session's response frames go. Implemented by the TCP server's
/// bounded per-connection send queue and by the testkit's simulated
/// connection.
pub trait FrameSink: Send + Sync + 'static {
    /// Queue a control frame (registration, refusal, begin/done, stats,
    /// error). Control frames bypass the row budget; they are small and
    /// bounded by the client's own request rate.
    fn push_control(&self, frame: Frame);

    /// Queue a row frame into a slot previously reserved with
    /// [`FrameSink::try_reserve_rows`]. Must never block: scheduler jobs
    /// call this on the wheel thread.
    fn push_row(&self, frame: Frame);

    /// Reserve capacity for `n` row frames, all-or-nothing, so a chunk
    /// either streams completely or the query is refused at the chunk
    /// boundary (with nothing from that chunk charged).
    fn try_reserve_rows(&self, n: usize) -> bool;

    /// Queue a batch of row frames whose deadlines landed on the same
    /// scheduler tick, in order, into slots previously reserved with
    /// [`FrameSink::try_reserve_rows`]. Must never block, like
    /// [`FrameSink::push_row`]. The default forwards one frame at a
    /// time; transports with a locked per-connection queue override it
    /// to take the lock (and wake the writer) once per batch.
    fn push_rows(&self, frames: &mut Vec<Frame>) {
        for frame in frames.drain(..) {
            self.push_row(frame);
        }
    }

    /// Return `n` row slots reserved with [`FrameSink::try_reserve_rows`]
    /// without sending anything — the error path of a write that reserved
    /// its `MUTATED` reply slot and then failed to apply. Sinks that
    /// account reservations must override this or the slots leak for the
    /// connection's lifetime.
    fn release_rows(&self, _n: usize) {}
}

/// Which write verb a mutation frame carried. The opcode is the
/// client's *claim*; [`FrontDoor::handle_mutation`] checks it against
/// the parsed statement so a `DELETE` can never ride in on an `INSERT`
/// frame's semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationVerb {
    Insert,
    Update,
    Delete,
}

impl MutationVerb {
    fn name(self) -> &'static str {
        match self {
            MutationVerb::Insert => "INSERT",
            MutationVerb::Update => "UPDATE",
            MutationVerb::Delete => "DELETE",
        }
    }
}

/// Per-connection protocol state negotiated at `REGISTER`.
///
/// A connection starts at version 1 (legacy count-up-front framing) and
/// is upgraded when its `REGISTER` frame carries a version byte; the
/// effective version is the minimum of the client's and
/// [`PROTOCOL_VERSION`]. The transport owns one of these per connection
/// and passes it to every [`FrontDoor::handle_frame`] call.
#[derive(Debug)]
pub struct SessionState {
    version: AtomicU8,
}

impl SessionState {
    /// A fresh connection: legacy framing until `REGISTER` negotiates up.
    pub fn new() -> SessionState {
        SessionState {
            version: AtomicU8::new(1),
        }
    }

    /// The negotiated protocol version.
    pub fn version(&self) -> u8 {
        self.version.load(Ordering::Relaxed)
    }

    /// Whether `SELECT` results use `ROWS_END`-trailer framing.
    pub fn streaming(&self) -> bool {
        self.version() >= 2
    }

    fn negotiate(&self, client_version: u8) {
        self.version
            .store(client_version.clamp(1, PROTOCOL_VERSION), Ordering::Relaxed);
    }
}

impl Default for SessionState {
    fn default() -> Self {
        SessionState::new()
    }
}

/// What the transport should do with the session after a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionControl {
    /// Keep reading frames.
    Continue,
    /// Terminate the session (protocol violation).
    Terminate,
}

/// Policy knobs the front door needs (a transport-independent subset of
/// the server's configuration).
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Gatekeeper (registration + rate limiting) policy.
    pub gatekeeper: GatekeeperConfig,
    /// Honor the `claimed_ip` field of `REGISTER` frames. Off by default
    /// (the peer address is authoritative); enable behind a trusted
    /// proxy, or in tests that need many subnets over loopback.
    pub trust_client_ip: bool,
    /// Retry hint attached to refusals that have no exact gatekeeper
    /// hint (`Overloaded`, `ShuttingDown`, `Unregistered`).
    pub retry_after_secs: f64,
    /// How many rows a streaming `SELECT` pulls from the executor (and
    /// reserves in the send queue) per chunk. Bounds the executor-side
    /// buffering per connection at `stream_chunk_rows × row size`,
    /// independent of result-set size.
    pub stream_chunk_rows: usize,
    /// Append per-table popularity detail (access totals and the full
    /// key → rank order) to `STATS` replies. **Off by default, and it
    /// must stay off on anything reachable by untrusted peers**: the rank
    /// order is exactly what the delay policy prices from, so serving it
    /// hands a database-extraction adversary the target list the timing
    /// side channel would otherwise have to infer — and short-circuits
    /// delay shaping entirely. Enable only on an operator-facing,
    /// authenticated surface.
    pub stats_expose_popularity: bool,
}

impl Default for GateConfig {
    fn default() -> GateConfig {
        GateConfig {
            gatekeeper: GatekeeperConfig::default(),
            trust_client_ip: false,
            retry_after_secs: 1.0,
            stream_chunk_rows: 256,
            stats_expose_popularity: false,
        }
    }
}

/// The front door itself: everything between "bytes decoded into a
/// [`Frame`]" and "frames handed to a [`FrameSink`]".
pub struct FrontDoor {
    config: GateConfig,
    db: Arc<GuardedDatabase>,
    gatekeeper: PMutex<Gatekeeper>,
    scheduler: Arc<DelayScheduler>,
    metrics: ServerMetrics,
    registry: Registry,
    clock: Arc<dyn Clock>,
    /// Set first during shutdown: refuse all new work.
    draining: AtomicBool,
    /// Query handlers between the draining check and their last
    /// `schedule` call; shutdown waits for this to reach zero before
    /// draining the wheel, so no delay is scheduled after the drain.
    inflight_queries: AtomicUsize,
    /// Monotone sequence stamped onto exported replication deltas.
    delta_seq: AtomicU64,
}

impl FrontDoor {
    /// A front door over `db`, scheduling deadlines on `scheduler` and
    /// reading time from `clock`. The scheduler must share `clock` (and
    /// the guard should too) or deadlines drift.
    pub fn new(
        config: GateConfig,
        db: Arc<GuardedDatabase>,
        scheduler: Arc<DelayScheduler>,
        clock: Arc<dyn Clock>,
        metrics: ServerMetrics,
        registry: Registry,
    ) -> FrontDoor {
        FrontDoor {
            gatekeeper: PMutex::new(Gatekeeper::new(config.gatekeeper)),
            config,
            db,
            scheduler,
            metrics,
            registry,
            clock,
            draining: AtomicBool::new(false),
            inflight_queries: AtomicUsize::new(0),
            delta_seq: AtomicU64::new(0),
        }
    }

    /// Seconds on the front door's clock.
    pub fn now_secs(&self) -> f64 {
        self.clock.now_secs()
    }

    /// The rank-revealing `STATS` appendix, rendered only when
    /// `stats_expose_popularity` is on: per observed table, the access
    /// total and the complete popularity order the policy prices from.
    fn render_popularity(&self) -> String {
        use std::fmt::Write as _;
        // `write!` appends into the one growing buffer (infallible for
        // `String`); STATS is a control verb, not the wire hot path, but
        // the R6 allocation budget is cheap to honor anyway.
        let mut out = String::new();
        for table in self.db.tables() {
            let _ = writeln!(
                out,
                "popularity_table {table}  accesses {}",
                self.db.access_events(&table)
            );
            for (key, rank) in self.db.popularity_table(&table) {
                let _ = writeln!(out, "popularity_rank {table}  key {key}  rank {rank}");
            }
        }
        out
    }

    /// The injected clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The delay scheduler deadlines land on.
    pub fn scheduler(&self) -> &Arc<DelayScheduler> {
        &self.scheduler
    }

    /// The guarded database.
    pub fn db(&self) -> &Arc<GuardedDatabase> {
        &self.db
    }

    /// The metrics this front door publishes.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// The registry backing `STATS` replies.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Direct gatekeeper access (attack-economics assertions in tests).
    pub fn gatekeeper(&self) -> &PMutex<Gatekeeper> {
        &self.gatekeeper
    }

    // ---- cluster replication (peer links) --------------------------------

    /// Set this node's cluster origin id. Must be called before traffic:
    /// the origin stamps every gatekeeper charge log and every exported
    /// delta, and peers key their remote stores by it.
    pub fn set_node_origin(&self, origin: u16) {
        self.gatekeeper.lock().set_origin(origin);
    }

    /// This node's cluster origin id (0 on a standalone server).
    pub fn node_origin(&self) -> u16 {
        self.gatekeeper.lock().origin()
    }

    /// Snapshot everything this node has locally originated — popularity
    /// per table, gatekeeper charge logs — as one [`ReplicaDelta`],
    /// stamped with the next monotone sequence number.
    pub fn export_delta(&self) -> ReplicaDelta {
        let seq = self.delta_seq.fetch_add(1, Ordering::Relaxed) + 1;
        self.metrics.deltas_exported.inc();
        let gate = self.gatekeeper.lock().export_gate_delta();
        ReplicaDelta {
            origin: gate.origin,
            seq,
            tables: self.db.export_table_deltas(),
            gate,
        }
    }

    /// Fold a peer's delta: gatekeeper charge logs merge CRDT-style
    /// (commutative, idempotent), popularity state replaces-if-newer in
    /// the guard's remote store and republishes merged snapshots.
    /// Returns whether the popularity half was new.
    pub fn apply_delta(&self, delta: &ReplicaDelta) -> bool {
        // The gate merge is unconditionally safe: charge-log entries are
        // append-only and keyed by (origin, seq), so replaying an old
        // delta merges nothing.
        self.gatekeeper.lock().merge_gate_delta(&delta.gate);
        let fresh = self.db.apply_replica_delta(delta);
        if fresh {
            self.metrics.deltas_applied.inc();
        } else {
            self.metrics.deltas_stale.inc();
        }
        fresh
    }

    /// Handle one frame from an authenticated *peer node* link. Clients
    /// never reach this path — [`Self::handle_frame`] terminates sessions
    /// that send replication frames — so the transport decides which
    /// connections are peers (the cluster sim marks its inter-node links;
    /// a TCP deployment would gate on listener or auth).
    pub fn handle_peer_frame<S: FrameSink>(&self, frame: Frame, sink: &Arc<S>) -> SessionControl {
        match frame {
            Frame::Delta { delta } => {
                self.apply_delta(&delta);
                sink.push_control(Frame::DeltaAck {
                    origin: delta.origin,
                    seq: delta.seq,
                });
                SessionControl::Continue
            }
            // Acks are bookkeeping for the sender's skip-if-unchanged
            // logic; the front door itself has nothing to update.
            Frame::DeltaAck { .. } => SessionControl::Continue,
            other => {
                sink.push_control(Frame::Error {
                    query_id: 0,
                    message: format!("unexpected frame on peer link: {other:?}"),
                });
                SessionControl::Terminate
            }
        }
    }

    // ---- drain accounting ------------------------------------------------

    /// Refuse all new queries and registrations from this point on.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Whether the front door is refusing new work.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Handlers that passed the draining check but have not finished
    /// scheduling yet. Shutdown waits for zero before draining the wheel.
    pub fn inflight_queries(&self) -> usize {
        self.inflight_queries.load(Ordering::SeqCst)
    }

    // ---- frame dispatch --------------------------------------------------

    /// Handle one decoded client frame. `peer_ip` is the transport's
    /// authoritative view of the peer (IPv4 octets); `session` is the
    /// connection's negotiated protocol state.
    pub fn handle_frame<S: FrameSink>(
        &self,
        frame: Frame,
        peer_ip: [u8; 4],
        session: &SessionState,
        sink: &Arc<S>,
    ) -> SessionControl {
        match frame {
            Frame::Register {
                claimed_ip,
                version,
            } => {
                session.negotiate(version);
                self.handle_register(claimed_ip, peer_ip, sink.as_ref());
                SessionControl::Continue
            }
            Frame::Query {
                query_id,
                user,
                sql,
            } => {
                self.handle_query(query_id, user, &sql, session, sink);
                SessionControl::Continue
            }
            Frame::Insert {
                query_id,
                user,
                sql,
            } => {
                self.handle_mutation(MutationVerb::Insert, query_id, user, &sql, session, sink);
                SessionControl::Continue
            }
            Frame::Update {
                query_id,
                user,
                sql,
            } => {
                self.handle_mutation(MutationVerb::Update, query_id, user, &sql, session, sink);
                SessionControl::Continue
            }
            Frame::Delete {
                query_id,
                user,
                sql,
            } => {
                self.handle_mutation(MutationVerb::Delete, query_id, user, &sql, session, sink);
                SessionControl::Continue
            }
            Frame::Stats => {
                let mut rendered = self.registry.render();
                if self.config.stats_expose_popularity {
                    rendered.push_str(&self.render_popularity());
                }
                sink.push_control(Frame::StatsReply { rendered });
                SessionControl::Continue
            }
            other => {
                sink.push_control(Frame::Error {
                    query_id: 0,
                    message: format!("unexpected frame from client: {other:?}"),
                });
                SessionControl::Terminate
            }
        }
    }

    /// Handle a `REGISTER` frame.
    pub fn handle_register(&self, claimed_ip: [u8; 4], peer_ip: [u8; 4], sink: &dyn FrameSink) {
        let retry = self.config.retry_after_secs;
        if self.draining() {
            self.metrics.refused_shutdown.inc();
            sink.push_control(Frame::Refused {
                query_id: 0,
                reason: RefuseReason::ShuttingDown,
                retry_after_secs: retry,
            });
            return;
        }
        let ip = if self.config.trust_client_ip && claimed_ip != [0, 0, 0, 0] {
            claimed_ip
        } else {
            peer_ip
        };
        let now = self.now_secs();
        let outcome = self.gatekeeper.lock().register(Ipv4(ip), now);
        match outcome {
            RegistrationOutcome::Admitted { user, fee_charged } => {
                self.metrics.users_registered.inc();
                sink.push_control(Frame::Registered {
                    user: user.0,
                    fee: fee_charged,
                });
            }
            RegistrationOutcome::TooSoon { retry_at } => {
                self.metrics.registrations_refused.inc();
                sink.push_control(Frame::Refused {
                    query_id: 0,
                    reason: RefuseReason::RegistrationTooSoon,
                    retry_after_secs: (retry_at - now).max(0.0),
                });
            }
        }
    }

    /// Handle a `QUERY` frame: admission, delay pricing, and scheduling
    /// every row (and the final `DONE`) on the wheel.
    ///
    /// `SELECT` results are executed through the streaming pipeline: rows
    /// are pulled in [`GateConfig::stream_chunk_rows`]-sized chunks, each
    /// chunk reserves its send-queue slots *before* its tuples are
    /// charged, and charged chunks land on the wheel while the executor
    /// is still producing the next one. Version-≥2 sessions get
    /// trailer framing (`ROWS_BEGIN` with [`ROWS_UNKNOWN`], then a
    /// `ROWS_END` count); legacy sessions still see the exact count in
    /// `ROWS_BEGIN`, which requires draining the executor first.
    pub fn handle_query<S: FrameSink>(
        &self,
        query_id: u32,
        user: u64,
        sql: &str,
        session: &SessionState,
        sink: &Arc<S>,
    ) {
        let retry = self.config.retry_after_secs;
        // Entered before the draining check; shutdown waits for this count
        // to reach zero before draining the wheel, so every delay we
        // schedule below is delivered.
        self.inflight_queries.fetch_add(1, Ordering::SeqCst);
        let _guard = InflightGuard(self);
        if self.draining() {
            self.metrics.refused_shutdown.inc();
            sink.push_control(Frame::Refused {
                query_id,
                reason: RefuseReason::ShuttingDown,
                retry_after_secs: retry,
            });
            return;
        }
        let now = self.now_secs();
        let admission = {
            let mut gk = self.gatekeeper.lock();
            match gk.admit(UserId(user), now) {
                Admission::Granted => None,
                Admission::Refused(reason) => {
                    // Rate refusals carry the gatekeeper's exact refill
                    // time; a client that waits precisely this long is
                    // admitted, one that retries earlier is refused again.
                    let hint = match reason {
                        RefusalReason::UserRateExceeded | RefusalReason::SubnetRateExceeded => gk
                            .retry_at(UserId(user), now)
                            .map(|at| (at - now).max(0.0))
                            .unwrap_or(retry),
                        RefusalReason::Unregistered => retry,
                    };
                    Some((reason, hint))
                }
            }
        };
        if let Some((reason, hint)) = admission {
            let counter = match reason {
                RefusalReason::Unregistered => &self.metrics.refused_unregistered,
                RefusalReason::UserRateExceeded => &self.metrics.refused_user_rate,
                RefusalReason::SubnetRateExceeded => &self.metrics.refused_subnet_rate,
            };
            counter.inc();
            sink.push_control(Frame::Refused {
                query_id,
                reason: wire_reason(reason),
                retry_after_secs: hint,
            });
            return;
        }
        let trailer_framing = session.streaming();
        let result = self.db.execute_streaming(sql, |query| match query {
            StreamedQuery::Rows(mut stream) => {
                self.metrics.queries_admitted.inc();
                if trailer_framing {
                    self.stream_select(query_id, &mut stream, sink);
                } else {
                    self.materialize_select(query_id, &mut stream, sink);
                }
            }
            StreamedQuery::Finished(resp) => {
                self.metrics.queries_admitted.inc();
                self.metrics.delay_micros_charged.add_secs(resp.delay_secs);
                let tuples = match &resp.output {
                    StatementOutput::Inserted { rids } => rids.len() as u32,
                    StatementOutput::Updated { rids } => rids.len() as u32,
                    StatementOutput::Deleted { rids } => rids.len() as u32,
                    _ => 0,
                };
                let delay_secs = resp.delay_secs;
                let done_sink = Arc::clone(sink);
                self.scheduler.schedule(
                    resp.deadline_nanos(),
                    Box::new(move || {
                        done_sink.push_control(Frame::Done {
                            query_id,
                            delay_secs,
                            tuples,
                        })
                    }),
                );
            }
        });
        if let Err(e) = result {
            self.metrics.query_errors.inc();
            sink.push_control(Frame::Error {
                query_id,
                message: e.to_string(),
            });
        }
    }

    /// Handle a write frame (`INSERT`/`UPDATE`/`DELETE`): admission,
    /// verb check, reserve-before-apply, and a single `MUTATED` reply.
    ///
    /// The order of checks is deliberate:
    ///
    /// 1. v1 sessions are refused with [`RefuseReason::WritesUnsupported`]
    ///    — they never negotiated the mutation surface, and guessing at
    ///    framing an old client cannot parse is worse than an explicit
    ///    code.
    /// 2. The SQL is parsed and checked against the frame's verb *before*
    ///    anything is reserved, so malformed writes have no release path.
    /// 3. One reply slot is reserved in the send queue before the
    ///    statement is applied ([`FrameSink::try_reserve_rows`], the same
    ///    backpressure seam `SELECT` chunks use): a write whose `MUTATED`
    ///    confirmation cannot be delivered is refused `Overloaded` before
    ///    it mutates anything, never applied-but-unconfirmable.
    /// 4. The `MUTATED` reply rides the wheel at the statement's deadline
    ///    and consumes the reservation via [`FrameSink::push_row`]; if
    ///    the engine rejects the statement after the reservation, the
    ///    slot is handed back with [`FrameSink::release_rows`].
    pub fn handle_mutation<S: FrameSink>(
        &self,
        verb: MutationVerb,
        query_id: u32,
        user: u64,
        sql: &str,
        session: &SessionState,
        sink: &Arc<S>,
    ) {
        let retry = self.config.retry_after_secs;
        self.inflight_queries.fetch_add(1, Ordering::SeqCst);
        let _guard = InflightGuard(self);
        if self.draining() {
            self.metrics.refused_shutdown.inc();
            sink.push_control(Frame::Refused {
                query_id,
                reason: RefuseReason::ShuttingDown,
                retry_after_secs: retry,
            });
            return;
        }
        if session.version() < 2 {
            sink.push_control(Frame::Refused {
                query_id,
                reason: RefuseReason::WritesUnsupported,
                retry_after_secs: 0.0,
            });
            return;
        }
        let now = self.now_secs();
        let admission = {
            let mut gk = self.gatekeeper.lock();
            match gk.admit(UserId(user), now) {
                Admission::Granted => None,
                Admission::Refused(reason) => {
                    let hint = match reason {
                        RefusalReason::UserRateExceeded | RefusalReason::SubnetRateExceeded => gk
                            .retry_at(UserId(user), now)
                            .map(|at| (at - now).max(0.0))
                            .unwrap_or(retry),
                        RefusalReason::Unregistered => retry,
                    };
                    Some((reason, hint))
                }
            }
        };
        if let Some((reason, hint)) = admission {
            let counter = match reason {
                RefusalReason::Unregistered => &self.metrics.refused_unregistered,
                RefusalReason::UserRateExceeded => &self.metrics.refused_user_rate,
                RefusalReason::SubnetRateExceeded => &self.metrics.refused_subnet_rate,
            };
            counter.inc();
            sink.push_control(Frame::Refused {
                query_id,
                reason: wire_reason(reason),
                retry_after_secs: hint,
            });
            return;
        }
        let stmt = match parse(sql) {
            Ok(stmt) => stmt,
            Err(e) => {
                self.metrics.query_errors.inc();
                sink.push_control(Frame::Error {
                    query_id,
                    message: e.to_string(),
                });
                return;
            }
        };
        let table = match (&stmt, verb) {
            (Statement::Insert { table, .. }, MutationVerb::Insert)
            | (Statement::Update { table, .. }, MutationVerb::Update)
            | (Statement::Delete { table, .. }, MutationVerb::Delete) => table.clone(),
            _ => {
                self.metrics.query_errors.inc();
                sink.push_control(Frame::Error {
                    query_id,
                    message: format!("statement does not match {} frame", verb.name()),
                });
                return;
            }
        };
        if !sink.try_reserve_rows(1) {
            // Refuse BEFORE applying: a write we could not confirm is a
            // write that did not happen.
            self.metrics.refused_backpressure.inc();
            sink.push_control(Frame::Refused {
                query_id,
                reason: RefuseReason::Overloaded,
                retry_after_secs: retry,
            });
            return;
        }
        let result = self.db.execute_stmt_streaming(&stmt, |query| match query {
            StreamedQuery::Finished(resp) => {
                self.metrics.queries_admitted.inc();
                let rows = match &resp.output {
                    StatementOutput::Inserted { rids } => rids.len() as u32,
                    StatementOutput::Updated { rids } => rids.len() as u32,
                    StatementOutput::Deleted { rids } => rids.len() as u32,
                    _ => 0,
                };
                Some((rows, resp.deadline_nanos()))
            }
            // Unreachable after the verb check; tolerated defensively so
            // a planner change cannot panic the wheel thread.
            StreamedQuery::Rows(_) => None,
        });
        match result {
            Ok(Some((rows, deadline))) => {
                // The engine released its table lock when the closure
                // returned; reading the catalog version here cannot
                // deadlock, and it observes this statement's own bump.
                let data_version = self.db.table_data_version(&table).unwrap_or(0);
                let reply_sink = Arc::clone(sink);
                self.scheduler.schedule(
                    deadline,
                    Box::new(move || {
                        reply_sink.push_row(Frame::Mutated {
                            query_id,
                            rows,
                            data_version,
                        })
                    }),
                );
            }
            Ok(None) => {
                sink.release_rows(1);
                self.metrics.query_errors.inc();
                sink.push_control(Frame::Error {
                    query_id,
                    message: format!("{} frame produced a row stream", verb.name()),
                });
            }
            Err(e) => {
                sink.release_rows(1);
                self.metrics.query_errors.inc();
                sink.push_control(Frame::Error {
                    query_id,
                    message: e.to_string(),
                });
            }
        }
    }

    /// Schedule one chunk's rows on the wheel: consecutive rows whose
    /// deadlines land on the same scheduler tick are coalesced into a
    /// single job that hands the sink the whole batch at once
    /// ([`FrameSink::push_rows`] — one queue lock and one writer wakeup
    /// per tick per connection instead of one per row), and the chunk's
    /// jobs are filed under one wheel-lock acquisition
    /// ([`DelayScheduler::schedule_batch`]). Release times and frame
    /// order are exactly those of row-at-a-time scheduling: a batch
    /// fires at the shared tick, and the wheel's same-tick insertion
    /// order is preserved. Returns the next row sequence number.
    fn schedule_rows<S: FrameSink>(
        &self,
        query_id: u32,
        mut seq: u32,
        issued_at_nanos: u64,
        rows: &[(RowId, Row)],
        offsets: &[f64],
        sink: &Arc<S>,
    ) -> u32 {
        let tick_nanos = self.scheduler.tick_nanos();
        let mut jobs: Vec<(u64, Job)> = Vec::new();
        let mut batch: Vec<Frame> = Vec::new();
        let mut batch_deadline = 0u64;
        let flush = |batch: &mut Vec<Frame>, batch_deadline: u64, jobs: &mut Vec<(u64, Job)>| {
            if batch.is_empty() {
                return;
            }
            let job_sink = Arc::clone(sink);
            let mut frames = std::mem::take(batch);
            jobs.push((
                batch_deadline,
                Box::new(move || job_sink.push_rows(&mut frames)),
            ));
        };
        for ((_rid, row), &offset) in rows.iter().zip(offsets) {
            let deadline = issued_at_nanos.saturating_add(secs_to_nanos(offset));
            if !batch.is_empty()
                && deadline.div_ceil(tick_nanos) != batch_deadline.div_ceil(tick_nanos)
            {
                flush(&mut batch, batch_deadline, &mut jobs);
            }
            if batch.is_empty() {
                batch_deadline = deadline;
            }
            batch.push(Frame::Row {
                query_id,
                seq,
                row: row.clone(),
            });
            seq += 1;
        }
        flush(&mut batch, batch_deadline, &mut jobs);
        self.scheduler.schedule_batch(jobs);
        seq
    }

    /// Version-≥2 `SELECT` delivery: pull → reserve → charge → schedule,
    /// one bounded chunk at a time, with trailer framing.
    fn stream_select<S: FrameSink>(
        &self,
        query_id: u32,
        stream: &mut DeadlineStream<'_, '_>,
        sink: &Arc<S>,
    ) {
        let retry = self.config.retry_after_secs;
        let chunk_rows = self.config.stream_chunk_rows.max(1);
        let mut seq: u32 = 0;
        let mut began = false;
        // Chunk-sized scratch recycled across the whole stream: the
        // executor decodes into `buf` and pricing fills `charged` with
        // no per-chunk allocation.
        let mut buf = RowBuf::new();
        let mut charged = ChargedChunk::default();
        loop {
            let n = match stream.next_chunk_into(chunk_rows, &mut buf) {
                Ok(0) => break,
                Ok(n) => n,
                Err(e) => {
                    // Mid-stream executor failure: already-scheduled rows
                    // still deliver at their deadlines; the error frame
                    // tells the client the stream is truncated.
                    self.metrics.query_errors.inc();
                    sink.push_control(Frame::Error {
                        query_id,
                        message: e.to_string(),
                    });
                    return;
                }
            };
            if !sink.try_reserve_rows(n) {
                // Refuse BEFORE charging: the tuples of this chunk are
                // neither delayed-priced nor recorded in the popularity
                // ledger, so a shed query costs the requester nothing.
                self.metrics.refused_backpressure.inc();
                let refused = Frame::Refused {
                    query_id,
                    reason: RefuseReason::Overloaded,
                    retry_after_secs: retry,
                };
                if !began {
                    sink.push_control(refused);
                } else {
                    // Earlier chunks were charged and are on the wheel;
                    // the drain invariant ("every charged tuple is
                    // delivered") means the refusal must trail them.
                    let refuse_sink = Arc::clone(sink);
                    self.scheduler.schedule(
                        stream.deadline_nanos(),
                        Box::new(move || refuse_sink.push_control(refused)),
                    );
                }
                return;
            }
            let before_secs = stream.delay_secs();
            stream.charge_into(buf.rows(), &mut charged);
            self.metrics
                .delay_micros_charged
                .add_secs(stream.delay_secs() - before_secs);
            if !began {
                began = true;
                sink.push_control(Frame::RowsBegin {
                    query_id,
                    columns: stream.columns().to_vec(),
                    rows: ROWS_UNKNOWN,
                });
            }
            self.metrics.rows_streamed.add(n as u64);
            seq = self.schedule_rows(
                query_id,
                seq,
                stream.issued_at_nanos(),
                buf.rows(),
                &charged.offsets,
                sink,
            );
        }
        if !began {
            sink.push_control(Frame::RowsBegin {
                query_id,
                columns: stream.columns().to_vec(),
                rows: ROWS_UNKNOWN,
            });
        }
        // Trailer and DONE ride the wheel at the final deadline; they are
        // inserted after every row, so stable same-tick ordering emits
        // ROWS_END after the last row and DONE last of all.
        let rows = seq;
        let delay_secs = stream.delay_secs();
        let done_at = stream.deadline_nanos();
        let end_sink = Arc::clone(sink);
        self.scheduler.schedule(
            done_at,
            Box::new(move || end_sink.push_control(Frame::RowsEnd { query_id, rows })),
        );
        let done_sink = Arc::clone(sink);
        self.scheduler.schedule(
            done_at,
            Box::new(move || {
                done_sink.push_control(Frame::Done {
                    query_id,
                    delay_secs,
                    tuples: rows,
                })
            }),
        );
    }

    /// Legacy (version-1) `SELECT` delivery: the client expects the exact
    /// row count in `ROWS_BEGIN`, so the executor is drained first; the
    /// whole result then reserves all-or-nothing and is only charged if
    /// it fits.
    fn materialize_select<S: FrameSink>(
        &self,
        query_id: u32,
        stream: &mut DeadlineStream<'_, '_>,
        sink: &Arc<S>,
    ) {
        let retry = self.config.retry_after_secs;
        let mut rows = Vec::new();
        loop {
            match stream.next_chunk(usize::MAX) {
                Ok(Some(mut chunk)) => rows.append(&mut chunk),
                Ok(None) => break,
                Err(e) => {
                    self.metrics.query_errors.inc();
                    sink.push_control(Frame::Error {
                        query_id,
                        message: e.to_string(),
                    });
                    return;
                }
            }
        }
        let n = rows.len();
        if !sink.try_reserve_rows(n) {
            // Nothing has been charged yet: pull happened, pricing did
            // not, so the refused query leaves no trace in the ledger.
            self.metrics.refused_backpressure.inc();
            sink.push_control(Frame::Refused {
                query_id,
                reason: RefuseReason::Overloaded,
                retry_after_secs: retry,
            });
            return;
        }
        let charged = stream.charge(&rows);
        self.metrics
            .delay_micros_charged
            .add_secs(stream.delay_secs());
        sink.push_control(Frame::RowsBegin {
            query_id,
            columns: stream.columns().to_vec(),
            rows: n as u32,
        });
        self.metrics.rows_streamed.add(n as u64);
        self.schedule_rows(
            query_id,
            0,
            stream.issued_at_nanos(),
            &rows,
            &charged.offsets,
            sink,
        );
        let delay_secs = stream.delay_secs();
        let done_sink = Arc::clone(sink);
        self.scheduler.schedule(
            stream.deadline_nanos(),
            Box::new(move || {
                done_sink.push_control(Frame::Done {
                    query_id,
                    delay_secs,
                    tuples: n as u32,
                })
            }),
        );
    }
}

/// Map a gatekeeper refusal onto its wire code.
pub fn wire_reason(reason: RefusalReason) -> RefuseReason {
    match reason {
        RefusalReason::Unregistered => RefuseReason::Unregistered,
        RefusalReason::UserRateExceeded => RefuseReason::UserRate,
        RefusalReason::SubnetRateExceeded => RefuseReason::SubnetRate,
    }
}

/// Decrements `inflight_queries` on every exit path of `handle_query`.
struct InflightGuard<'a>(&'a FrontDoor);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.inflight_queries.fetch_sub(1, Ordering::SeqCst);
    }
}
