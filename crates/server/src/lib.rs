//! `delayguard-server`: the network front door for the delay defense.
//!
//! The core crates decide *how much* delay a query has earned (the
//! paper's per-tuple charging, popularity tracking, and gatekeeper
//! policy); this crate makes that decision hold on a wire. It serves a
//! length-delimited TCP protocol ([`protocol`]) where:
//!
//! 1. clients `REGISTER` for an identity — admission runs the gatekeeper
//!    (registration throttling, per-user and per-/24-subnet token
//!    buckets keyed by the peer address),
//! 2. each `QUERY` that passes admission executes immediately, but its
//!    tuples stream back only as their delay deadlines expire, enforced
//!    by a single-threaded hierarchical timer wheel ([`wheel`],
//!    [`scheduler`]) — thousands of pending delays, one thread,
//! 3. `STATS` returns a metrics snapshot from the registry shared with
//!    `delayguard-sim`.
//!
//! Load is bounded end to end: a session cap with explicit shedding,
//! per-connection bounded send queues that refuse (not block) when a
//! result set would not fit, and a graceful shutdown that drains every
//! already-charged tuple before closing ([`server`]). A blocking
//! [`client`] rounds out the crate for tests and demos.

#![forbid(unsafe_code)]

pub mod client;
pub mod gate;
pub mod metrics;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod wheel;

pub use client::{Client, ClientError, MutateOutcome, QueryOutcome, ReceivedRow, RegisterOutcome};
pub use gate::{FrameSink, FrontDoor, GateConfig, MutationVerb, SessionControl, SessionState};
pub use metrics::ServerMetrics;
pub use protocol::{Frame, ProtocolError, RefuseReason, PROTOCOL_VERSION, ROWS_UNKNOWN};
pub use scheduler::DelayScheduler;
pub use server::{Server, ServerConfig, ServerHandle};
pub use wheel::TimerWheel;
