//! The wire protocol: length-delimited frames over TCP.
//!
//! Every frame is `len: u32 LE | opcode: u8 | payload`, where `len`
//! counts the opcode byte plus payload. Six request verbs (`REGISTER`,
//! `QUERY`, `STATS`, and the v2-only write verbs `INSERT`/`UPDATE`/
//! `DELETE`) and eight response frames; `SELECT` results stream as
//! `ROWS_BEGIN`, then one `ROW` per tuple *as its delay deadline
//! expires*, then `DONE`. A successful write answers with a single
//! `MUTATED` frame carrying the affected row count and the table's new
//! data version. Responses carry the originating `query_id` so a client
//! may pipeline queries on one connection.
//!
//! # Versioning
//!
//! The protocol version is negotiated at `REGISTER`: a v1 client sends
//! the original 4-byte payload (just the claimed ip) and gets
//! count-up-front framing, where `ROWS_BEGIN.rows` is the exact result
//! size. A client that appends a version byte ≥ 2 opts into trailer
//! framing: the server executes streaming, `ROWS_BEGIN.rows` is the
//! [`ROWS_UNKNOWN`] sentinel, and a `ROWS_END` trailer carries the real
//! count once the executor finishes. Old servers reject the 5-byte
//! register payload outright (trailing bytes), so a v2 client is never
//! silently mis-framed.
//!
//! The write verbs ride the same negotiation: a session that registered
//! as v1 never negotiated the mutation surface, so the server answers
//! its write frames with `REFUSED(WritesUnsupported)` instead of
//! guessing at framing the client cannot parse.
//!
//! Row payloads reuse the storage engine's row codec
//! ([`delayguard_storage::codec`]), so the server adds no second
//! serialization format.

use delayguard_core::gatekeeper::{Charge, GateDelta, SubnetCharges};
use delayguard_core::replica::{ReplicaDelta, TableDelta};
use delayguard_storage::codec::{decode_row, encode_row};
use delayguard_storage::Row;
use std::fmt;
use std::io::{self, Read, Write};

/// Largest accepted frame body (opcode + payload).
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Current frame-level protocol version, sent with `REGISTER`.
///
/// Version 2 negotiates `ROWS_END`-trailer framing for `SELECT` results
/// (see the module docs); version 1 is the legacy count-up-front framing.
pub const PROTOCOL_VERSION: u8 = 2;

/// Sentinel for [`Frame::RowsBegin::rows`] on version-≥2 sessions: the
/// result is streaming and the total count arrives in the
/// [`Frame::RowsEnd`] trailer instead.
pub const ROWS_UNKNOWN: u32 = u32::MAX;

/// Why the server refused a request (wire codes are stable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefuseReason {
    /// The user id is not registered.
    Unregistered = 1,
    /// The identity exceeded its own token bucket.
    UserRate = 2,
    /// The identity's /24 subnet exceeded its aggregate bucket.
    SubnetRate = 3,
    /// Registration throttled (one identity per `t` seconds, §2.4).
    RegistrationTooSoon = 4,
    /// The server is at capacity; retry after the embedded hint.
    Overloaded = 5,
    /// The server is draining for shutdown.
    ShuttingDown = 6,
    /// The session registered as protocol v1, which never negotiated the
    /// mutation frames; re-register with version ≥ 2 to write.
    WritesUnsupported = 7,
}

impl RefuseReason {
    fn from_code(code: u8) -> Option<RefuseReason> {
        Some(match code {
            1 => RefuseReason::Unregistered,
            2 => RefuseReason::UserRate,
            3 => RefuseReason::SubnetRate,
            4 => RefuseReason::RegistrationTooSoon,
            5 => RefuseReason::Overloaded,
            6 => RefuseReason::ShuttingDown,
            7 => RefuseReason::WritesUnsupported,
            _ => return None,
        })
    }
}

/// One protocol frame, request or response.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Request an identity. `claimed_ip` is honored only when the server
    /// is configured to trust it (proxy / test deployments); `[0;4]`
    /// means "use the connection's peer address". `version` is the
    /// highest protocol version the client speaks: decoded as 1 when the
    /// payload carries no version byte (legacy 4-byte form).
    Register { claimed_ip: [u8; 4], version: u8 },
    /// Execute SQL as `user`; responses echo `query_id`.
    Query {
        query_id: u32,
        user: u64,
        sql: String,
    },
    /// Execute an `INSERT` statement as `user` (v2+ sessions only).
    /// The payload mirrors [`Frame::Query`]; the verb is in the opcode
    /// so the gate can refuse writes before parsing any SQL.
    Insert {
        query_id: u32,
        user: u64,
        sql: String,
    },
    /// Execute an `UPDATE` statement as `user` (v2+ sessions only).
    Update {
        query_id: u32,
        user: u64,
        sql: String,
    },
    /// Execute a `DELETE` statement as `user` (v2+ sessions only).
    Delete {
        query_id: u32,
        user: u64,
        sql: String,
    },
    /// Request a metrics snapshot.
    Stats,
    /// Registration succeeded.
    Registered { user: u64, fee: f64 },
    /// A request was refused. `retry_after_secs` is the server's hint for
    /// when a retry could succeed (`RETRY_AFTER` semantics).
    Refused {
        query_id: u32,
        reason: RefuseReason,
        retry_after_secs: f64,
    },
    /// A `SELECT` started streaming: column names and total row count.
    /// On version-≥2 sessions `rows` is [`ROWS_UNKNOWN`] and the count
    /// arrives in the [`Frame::RowsEnd`] trailer.
    RowsBegin {
        query_id: u32,
        columns: Vec<String>,
        rows: u32,
    },
    /// One tuple, released at its delay deadline.
    Row { query_id: u32, seq: u32, row: Row },
    /// Trailer on version-≥2 sessions: the executor finished and `rows`
    /// is the total row count. Sent after the last `ROW`, before `DONE`.
    RowsEnd { query_id: u32, rows: u32 },
    /// The statement completed; `delay_secs` is the total charged.
    Done {
        query_id: u32,
        delay_secs: f64,
        tuples: u32,
    },
    /// A write committed: `rows` affected, and the table's data version
    /// after the commit so the client can order its view of the data.
    Mutated {
        query_id: u32,
        rows: u32,
        data_version: u64,
    },
    /// Metrics snapshot rendering.
    StatsReply { rendered: String },
    /// The statement failed.
    Error { query_id: u32, message: String },
    /// Inter-node replication (cluster delta-sync): one origin's
    /// cumulative popularity + gatekeeper state. Never sent by clients;
    /// a front door only accepts it on connections marked as peer links.
    Delta { delta: ReplicaDelta },
    /// Acknowledges the highest `seq` folded from `origin`, so the sender
    /// can skip unchanged re-sends.
    DeltaAck { origin: u16, seq: u64 },
}

mod opcode {
    pub const REGISTER: u8 = 0x01;
    pub const QUERY: u8 = 0x02;
    pub const STATS: u8 = 0x03;
    pub const INSERT: u8 = 0x04;
    pub const UPDATE: u8 = 0x05;
    pub const DELETE: u8 = 0x06;
    pub const REGISTERED: u8 = 0x10;
    pub const REFUSED: u8 = 0x11;
    pub const ROWS_BEGIN: u8 = 0x12;
    pub const ROW: u8 = 0x13;
    pub const DONE: u8 = 0x14;
    pub const STATS_REPLY: u8 = 0x15;
    pub const ERROR: u8 = 0x16;
    pub const ROWS_END: u8 = 0x17;
    pub const MUTATED: u8 = 0x18;
    pub const DELTA: u8 = 0x20;
    pub const DELTA_ACK: u8 = 0x21;
}

/// Protocol-level failures (distinct from transport `io::Error`).
#[derive(Debug)]
pub enum ProtocolError {
    /// The transport failed.
    Io(io::Error),
    /// A frame was malformed.
    Malformed(String),
    /// A frame exceeded [`MAX_FRAME`].
    Oversized(usize),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "io error: {e}"),
            ProtocolError::Malformed(m) => write!(f, "malformed frame: {m}"),
            ProtocolError::Oversized(n) => write!(f, "frame of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> ProtocolError {
        ProtocolError::Io(e)
    }
}

// ---- payload primitives -------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_counts(out: &mut Vec<u8>, counts: &[(u64, f64)]) {
    put_u32(out, counts.len() as u32);
    for &(key, units) in counts {
        put_u64(out, key);
        put_f64(out, units);
    }
}

fn put_charges(out: &mut Vec<u8>, log: &[Charge]) {
    put_u32(out, log.len() as u32);
    for c in log {
        put_u64(out, c.seq);
        put_f64(out, c.at_secs);
        put_f64(out, c.amount);
    }
}

fn put_replica_delta(out: &mut Vec<u8>, delta: &ReplicaDelta) {
    out.extend_from_slice(&delta.origin.to_le_bytes());
    put_u64(out, delta.seq);
    put_u32(out, delta.tables.len() as u32);
    for (name, td) in &delta.tables {
        put_str(out, name);
        put_counts(out, &td.accesses);
        put_counts(out, &td.updates);
        put_u64(out, td.rows);
        match td.epoch {
            Some(e) => {
                out.push(1);
                put_f64(out, e);
            }
            None => out.push(0),
        }
    }
    out.extend_from_slice(&delta.gate.origin.to_le_bytes());
    put_u32(out, delta.gate.users.len() as u32);
    for (user, log) in &delta.gate.users {
        put_u64(out, *user);
        put_charges(out, log);
    }
    put_u32(out, delta.gate.subnets.len() as u32);
    for sc in &delta.gate.subnets {
        out.extend_from_slice(&sc.base);
        out.push(sc.prefix);
        put_charges(out, &sc.log);
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.buf.len() - self.pos < n {
            return Err(ProtocolError::Malformed(format!(
                "truncated payload: wanted {n} bytes at {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        // Validate in place, then copy exactly once into the owned
        // String; `String::from_utf8(bytes.to_vec())` would copy first
        // and validate after, double-buffering every decoded string.
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| ProtocolError::Malformed("invalid utf-8 string".into()))
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.pos != self.buf.len() {
            return Err(ProtocolError::Malformed(format!(
                "{} trailing bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }

    /// A length-prefixed list, with the count sanity-bounded by the
    /// remaining payload so a hostile length cannot pre-allocate gigabytes.
    fn list_len(&mut self, min_item_bytes: usize) -> Result<usize, ProtocolError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_item_bytes) > self.remaining() {
            return Err(ProtocolError::Malformed(format!(
                "list of {n} items cannot fit in {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    fn counts(&mut self) -> Result<Vec<(u64, f64)>, ProtocolError> {
        let n = self.list_len(16)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push((self.u64()?, self.f64()?));
        }
        Ok(out)
    }

    fn charges(&mut self) -> Result<Vec<Charge>, ProtocolError> {
        let n = self.list_len(24)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(Charge {
                seq: self.u64()?,
                at_secs: self.f64()?,
                amount: self.f64()?,
            });
        }
        Ok(out)
    }

    fn replica_delta(&mut self) -> Result<ReplicaDelta, ProtocolError> {
        let origin = self.u16()?;
        let seq = self.u64()?;
        let ntables = self.list_len(4)?;
        let mut tables = Vec::with_capacity(ntables);
        for _ in 0..ntables {
            let name = self.string()?;
            let accesses = self.counts()?;
            let updates = self.counts()?;
            let rows = self.u64()?;
            let epoch = match self.u8()? {
                0 => None,
                1 => Some(self.f64()?),
                other => return Err(ProtocolError::Malformed(format!("bad epoch flag {other}"))),
            };
            tables.push((
                name,
                TableDelta {
                    accesses,
                    updates,
                    rows,
                    epoch,
                },
            ));
        }
        let gate_origin = self.u16()?;
        let nusers = self.list_len(12)?;
        let mut users = Vec::with_capacity(nusers);
        for _ in 0..nusers {
            let user = self.u64()?;
            users.push((user, self.charges()?));
        }
        let nsubnets = self.list_len(9)?;
        let mut subnets = Vec::with_capacity(nsubnets);
        for _ in 0..nsubnets {
            let base: [u8; 4] = self.take(4)?.try_into().unwrap();
            let prefix = self.u8()?;
            subnets.push(SubnetCharges {
                base,
                prefix,
                log: self.charges()?,
            });
        }
        Ok(ReplicaDelta {
            origin,
            seq,
            tables,
            gate: GateDelta {
                origin: gate_origin,
                users,
                subnets,
            },
        })
    }
}

impl Frame {
    /// Append `opcode | payload` (without the length prefix) onto `out`.
    ///
    /// Appending into a caller-owned buffer is the allocation-free hot
    /// path: a connection reuses one buffer for every frame it writes.
    fn encode_body_into(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Register {
                claimed_ip,
                version,
            } => {
                out.push(opcode::REGISTER);
                out.extend_from_slice(claimed_ip);
                out.push(*version);
            }
            Frame::Query {
                query_id,
                user,
                sql,
            } => {
                out.push(opcode::QUERY);
                put_u32(out, *query_id);
                put_u64(out, *user);
                put_str(out, sql);
            }
            Frame::Insert {
                query_id,
                user,
                sql,
            } => {
                out.push(opcode::INSERT);
                put_u32(out, *query_id);
                put_u64(out, *user);
                put_str(out, sql);
            }
            Frame::Update {
                query_id,
                user,
                sql,
            } => {
                out.push(opcode::UPDATE);
                put_u32(out, *query_id);
                put_u64(out, *user);
                put_str(out, sql);
            }
            Frame::Delete {
                query_id,
                user,
                sql,
            } => {
                out.push(opcode::DELETE);
                put_u32(out, *query_id);
                put_u64(out, *user);
                put_str(out, sql);
            }
            Frame::Stats => out.push(opcode::STATS),
            Frame::Registered { user, fee } => {
                out.push(opcode::REGISTERED);
                put_u64(out, *user);
                put_f64(out, *fee);
            }
            Frame::Refused {
                query_id,
                reason,
                retry_after_secs,
            } => {
                out.push(opcode::REFUSED);
                put_u32(out, *query_id);
                out.push(*reason as u8);
                put_f64(out, *retry_after_secs);
            }
            Frame::RowsBegin {
                query_id,
                columns,
                rows,
            } => {
                out.push(opcode::ROWS_BEGIN);
                put_u32(out, *query_id);
                out.extend_from_slice(&(columns.len() as u16).to_le_bytes());
                for c in columns {
                    put_str(out, c);
                }
                put_u32(out, *rows);
            }
            Frame::Row { query_id, seq, row } => {
                out.push(opcode::ROW);
                put_u32(out, *query_id);
                put_u32(out, *seq);
                // Serialize the row straight into the frame buffer; the
                // old `extend_from_slice(&row_bytes(row))` built a
                // temporary Vec per row and copied it again.
                encode_row(row, out);
            }
            Frame::RowsEnd { query_id, rows } => {
                out.push(opcode::ROWS_END);
                put_u32(out, *query_id);
                put_u32(out, *rows);
            }
            Frame::Done {
                query_id,
                delay_secs,
                tuples,
            } => {
                out.push(opcode::DONE);
                put_u32(out, *query_id);
                put_f64(out, *delay_secs);
                put_u32(out, *tuples);
            }
            Frame::Mutated {
                query_id,
                rows,
                data_version,
            } => {
                out.push(opcode::MUTATED);
                put_u32(out, *query_id);
                put_u32(out, *rows);
                put_u64(out, *data_version);
            }
            Frame::StatsReply { rendered } => {
                out.push(opcode::STATS_REPLY);
                put_str(out, rendered);
            }
            Frame::Error { query_id, message } => {
                out.push(opcode::ERROR);
                put_u32(out, *query_id);
                put_str(out, message);
            }
            Frame::Delta { delta } => {
                out.push(opcode::DELTA);
                put_replica_delta(out, delta);
            }
            Frame::DeltaAck { origin, seq } => {
                out.push(opcode::DELTA_ACK);
                out.extend_from_slice(&origin.to_le_bytes());
                put_u64(out, *seq);
            }
        }
    }

    /// Decode from an `opcode | payload` body.
    fn decode_body(body: &[u8]) -> Result<Frame, ProtocolError> {
        let mut c = Cursor::new(body);
        let op = c.u8()?;
        let frame = match op {
            opcode::REGISTER => {
                let claimed_ip: [u8; 4] = c.take(4)?.try_into().unwrap();
                // Legacy (v1) clients send only the ip; the version byte
                // was appended in v2.
                let version = if c.remaining() > 0 { c.u8()? } else { 1 };
                Frame::Register {
                    claimed_ip,
                    version,
                }
            }
            opcode::QUERY => Frame::Query {
                query_id: c.u32()?,
                user: c.u64()?,
                sql: c.string()?,
            },
            opcode::INSERT => Frame::Insert {
                query_id: c.u32()?,
                user: c.u64()?,
                sql: c.string()?,
            },
            opcode::UPDATE => Frame::Update {
                query_id: c.u32()?,
                user: c.u64()?,
                sql: c.string()?,
            },
            opcode::DELETE => Frame::Delete {
                query_id: c.u32()?,
                user: c.u64()?,
                sql: c.string()?,
            },
            opcode::STATS => Frame::Stats,
            opcode::REGISTERED => Frame::Registered {
                user: c.u64()?,
                fee: c.f64()?,
            },
            opcode::REFUSED => {
                let query_id = c.u32()?;
                let code = c.u8()?;
                let reason = RefuseReason::from_code(code).ok_or_else(|| {
                    ProtocolError::Malformed(format!("unknown refuse reason {code}"))
                })?;
                Frame::Refused {
                    query_id,
                    reason,
                    retry_after_secs: c.f64()?,
                }
            }
            opcode::ROWS_BEGIN => {
                let query_id = c.u32()?;
                let ncols = c.u16()? as usize;
                let mut columns = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    columns.push(c.string()?);
                }
                Frame::RowsBegin {
                    query_id,
                    columns,
                    rows: c.u32()?,
                }
            }
            opcode::ROW => {
                let query_id = c.u32()?;
                let seq = c.u32()?;
                let row = decode_row(c.rest())
                    .map_err(|e| ProtocolError::Malformed(format!("bad row: {e}")))?;
                Frame::Row { query_id, seq, row }
            }
            opcode::ROWS_END => Frame::RowsEnd {
                query_id: c.u32()?,
                rows: c.u32()?,
            },
            opcode::DONE => Frame::Done {
                query_id: c.u32()?,
                delay_secs: c.f64()?,
                tuples: c.u32()?,
            },
            opcode::MUTATED => Frame::Mutated {
                query_id: c.u32()?,
                rows: c.u32()?,
                data_version: c.u64()?,
            },
            opcode::STATS_REPLY => Frame::StatsReply {
                rendered: c.string()?,
            },
            opcode::ERROR => Frame::Error {
                query_id: c.u32()?,
                message: c.string()?,
            },
            opcode::DELTA => Frame::Delta {
                delta: c.replica_delta()?,
            },
            opcode::DELTA_ACK => Frame::DeltaAck {
                origin: c.u16()?,
                seq: c.u64()?,
            },
            other => {
                return Err(ProtocolError::Malformed(format!(
                    "unknown opcode {other:#x}"
                )))
            }
        };
        c.finish()?;
        Ok(frame)
    }
}

/// Append one complete wire frame (`len: u32 LE | opcode | payload`)
/// onto `out`.
///
/// The 4-byte length prefix is reserved up front and patched after the
/// body is encoded, so the frame is laid down in a single pass with no
/// intermediate body buffer. Appends (rather than clears) so a writer
/// can coalesce a burst of frames into one buffer and one syscall; on an
/// oversized frame `out` is rolled back to its prior length.
pub fn encode_frame_into(frame: &Frame, out: &mut Vec<u8>) -> Result<(), ProtocolError> {
    let start = out.len();
    out.extend_from_slice(&[0u8; 4]);
    frame.encode_body_into(out);
    let body_len = out.len() - start - 4;
    if body_len > MAX_FRAME {
        out.truncate(start);
        return Err(ProtocolError::Oversized(body_len));
    }
    out[start..start + 4].copy_from_slice(&(body_len as u32).to_le_bytes());
    Ok(())
}

/// Write one frame to `w` (length prefix + body), without flushing,
/// encoding through the caller's reusable `scratch` buffer. The hot
/// path: steady state performs zero allocations.
pub fn write_frame_buffered(
    w: &mut impl Write,
    frame: &Frame,
    scratch: &mut Vec<u8>,
) -> Result<(), ProtocolError> {
    scratch.clear();
    encode_frame_into(frame, scratch)?;
    w.write_all(scratch)?;
    Ok(())
}

/// Write one frame to `w` (length prefix + body), without flushing.
///
/// Convenience wrapper over [`write_frame_buffered`] with a throwaway
/// buffer; per-connection loops should hold their own scratch instead.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), ProtocolError> {
    let mut scratch = Vec::with_capacity(64);
    write_frame_buffered(w, frame, &mut scratch)
}

/// Read one frame from `r`, staging the body in the caller's reusable
/// `scratch` buffer. Returns `Ok(None)` on clean EOF at a frame
/// boundary. Steady state performs no transport-side allocations
/// (decoded frames still own their payload fields).
pub fn read_frame_buffered(
    r: &mut impl Read,
    scratch: &mut Vec<u8>,
) -> Result<Option<Frame>, ProtocolError> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 {
        return Err(ProtocolError::Malformed("empty frame".into()));
    }
    if len > MAX_FRAME {
        return Err(ProtocolError::Oversized(len));
    }
    scratch.clear();
    scratch.resize(len, 0);
    r.read_exact(scratch)?;
    Frame::decode_body(scratch).map(Some)
}

/// Read one frame from `r`. Returns `Ok(None)` on clean EOF at a frame
/// boundary.
///
/// Convenience wrapper over [`read_frame_buffered`] with a throwaway
/// buffer; per-connection loops should hold their own scratch instead.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, ProtocolError> {
    let mut scratch = Vec::new();
    read_frame_buffered(r, &mut scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayguard_storage::Value;

    fn round_trip(frame: Frame) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        let mut slice = buf.as_slice();
        let back = read_frame(&mut slice).unwrap().unwrap();
        assert_eq!(frame, back);
        assert!(read_frame(&mut slice).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn all_frames_round_trip() {
        round_trip(Frame::Register {
            claimed_ip: [10, 0, 0, 7],
            version: PROTOCOL_VERSION,
        });
        round_trip(Frame::Query {
            query_id: 3,
            user: 42,
            sql: "SELECT * FROM t WHERE id = 1".into(),
        });
        round_trip(Frame::Insert {
            query_id: 4,
            user: 42,
            sql: "INSERT INTO t VALUES (1, 'x')".into(),
        });
        round_trip(Frame::Update {
            query_id: 5,
            user: 42,
            sql: "UPDATE t SET body = 'y' WHERE id = 1".into(),
        });
        round_trip(Frame::Delete {
            query_id: 6,
            user: 42,
            sql: "DELETE FROM t WHERE id = 1".into(),
        });
        round_trip(Frame::Stats);
        round_trip(Frame::Registered { user: 7, fee: 2.5 });
        round_trip(Frame::Refused {
            query_id: 9,
            reason: RefuseReason::SubnetRate,
            retry_after_secs: 1.25,
        });
        round_trip(Frame::RowsBegin {
            query_id: 1,
            columns: vec!["id".into(), "body".into()],
            rows: 100,
        });
        round_trip(Frame::Row {
            query_id: 1,
            seq: 5,
            row: Row::new(vec![Value::Int(9), Value::Text("x".into()), Value::Null]),
        });
        round_trip(Frame::RowsEnd {
            query_id: 1,
            rows: 100,
        });
        round_trip(Frame::Done {
            query_id: 1,
            delay_secs: 10.0,
            tuples: 100,
        });
        round_trip(Frame::Mutated {
            query_id: 6,
            rows: 3,
            data_version: 501,
        });
        round_trip(Frame::Refused {
            query_id: 6,
            reason: RefuseReason::WritesUnsupported,
            retry_after_secs: 0.0,
        });
        round_trip(Frame::StatsReply {
            rendered: "a  1\nb  2\n".into(),
        });
        round_trip(Frame::Error {
            query_id: 2,
            message: "no such table".into(),
        });
        round_trip(Frame::DeltaAck { origin: 3, seq: 17 });
    }

    #[test]
    fn delta_frame_round_trips() {
        let delta = ReplicaDelta {
            origin: 2,
            seq: 9,
            tables: vec![
                (
                    "directory".into(),
                    TableDelta {
                        accesses: vec![(0, 41.5), (1, 0.0), (7, 3.25)],
                        updates: vec![(1, 2.0)],
                        rows: 275,
                        epoch: Some(12.5),
                    },
                ),
                (
                    "empty".into(),
                    TableDelta {
                        rows: 10,
                        ..TableDelta::default()
                    },
                ),
            ],
            gate: GateDelta {
                origin: 2,
                users: vec![
                    (
                        1,
                        vec![
                            Charge {
                                seq: 1,
                                at_secs: 10.0,
                                amount: 1.0,
                            },
                            Charge {
                                seq: 2,
                                at_secs: 10.5,
                                amount: 1.0,
                            },
                        ],
                    ),
                    (4, Vec::new()),
                ],
                subnets: vec![SubnetCharges {
                    base: [10, 0, 1, 0],
                    prefix: 24,
                    log: vec![Charge {
                        seq: 1,
                        at_secs: 10.0,
                        amount: 1.0,
                    }],
                }],
            },
        };
        round_trip(Frame::Delta { delta });
    }

    #[test]
    fn delta_rejects_hostile_list_lengths() {
        // origin + seq, then a table count claiming 2^31 entries with an
        // empty remainder: must fail on the bound check, not allocate.
        let mut body = vec![opcode::DELTA, 2, 0];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&0x8000_0000u32.to_le_bytes());
        let mut buf = Vec::new();
        buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        buf.extend_from_slice(&body);
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn stream_of_frames_parses_in_order() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Stats).unwrap();
        write_frame(&mut buf, &Frame::Registered { user: 1, fee: 0.0 }).unwrap();
        let mut slice = buf.as_slice();
        assert_eq!(read_frame(&mut slice).unwrap(), Some(Frame::Stats));
        assert!(matches!(
            read_frame(&mut slice).unwrap(),
            Some(Frame::Registered { user: 1, .. })
        ));
        assert_eq!(read_frame(&mut slice).unwrap(), None);
    }

    #[test]
    fn legacy_register_decodes_as_version_one() {
        // The v1 payload is exactly 4 ip bytes — no version byte.
        let body = vec![opcode::REGISTER, 10, 0, 0, 7];
        let mut buf = Vec::new();
        buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        buf.extend_from_slice(&body);
        assert_eq!(
            read_frame(&mut buf.as_slice()).unwrap(),
            Some(Frame::Register {
                claimed_ip: [10, 0, 0, 7],
                version: 1,
            })
        );
    }

    #[test]
    fn encode_frame_into_matches_write_frame_bytes() {
        let frames = vec![
            Frame::Stats,
            Frame::Registered { user: 7, fee: 2.5 },
            Frame::Row {
                query_id: 1,
                seq: 5,
                row: Row::new(vec![Value::Int(9), Value::Text("x".into()), Value::Null]),
            },
            Frame::Error {
                query_id: 2,
                message: "no such table".into(),
            },
        ];
        for frame in &frames {
            let mut via_writer = Vec::new();
            write_frame(&mut via_writer, frame).unwrap();
            let mut via_encode = Vec::new();
            encode_frame_into(frame, &mut via_encode).unwrap();
            assert_eq!(via_writer, via_encode, "wire bytes must be identical");
        }
    }

    #[test]
    fn encode_frame_into_appends_and_coalesces() {
        // A burst of frames encoded into one buffer parses back in order
        // — the writer-side coalescing contract.
        let mut buf = Vec::new();
        encode_frame_into(&Frame::Stats, &mut buf).unwrap();
        let after_first = buf.len();
        encode_frame_into(&Frame::Registered { user: 1, fee: 0.5 }, &mut buf).unwrap();
        assert!(
            buf.len() > after_first,
            "second frame appended, not overwritten"
        );
        let mut slice = buf.as_slice();
        assert_eq!(read_frame(&mut slice).unwrap(), Some(Frame::Stats));
        assert!(matches!(
            read_frame(&mut slice).unwrap(),
            Some(Frame::Registered { user: 1, .. })
        ));
        assert_eq!(read_frame(&mut slice).unwrap(), None);
    }

    #[test]
    fn oversized_frame_rolls_back_the_buffer() {
        let mut buf = Vec::new();
        encode_frame_into(&Frame::Stats, &mut buf).unwrap();
        let len_before = buf.len();
        let huge = Frame::StatsReply {
            rendered: "x".repeat(MAX_FRAME),
        };
        assert!(matches!(
            encode_frame_into(&huge, &mut buf),
            Err(ProtocolError::Oversized(_))
        ));
        assert_eq!(
            buf.len(),
            len_before,
            "failed encode must not leave partial bytes"
        );
        // The buffer is still a valid stream.
        assert_eq!(read_frame(&mut buf.as_slice()).unwrap(), Some(Frame::Stats));
    }

    #[test]
    fn buffered_read_reuses_scratch_across_frames() {
        let mut buf = Vec::new();
        let big = Frame::StatsReply {
            rendered: "y".repeat(4096),
        };
        write_frame(&mut buf, &big).unwrap();
        write_frame(&mut buf, &Frame::Stats).unwrap();
        write_frame(&mut buf, &big).unwrap();
        let mut slice = buf.as_slice();
        let mut scratch = Vec::new();
        assert_eq!(
            read_frame_buffered(&mut slice, &mut scratch).unwrap(),
            Some(big.clone())
        );
        let cap = scratch.capacity();
        assert_eq!(
            read_frame_buffered(&mut slice, &mut scratch).unwrap(),
            Some(Frame::Stats)
        );
        assert_eq!(
            read_frame_buffered(&mut slice, &mut scratch).unwrap(),
            Some(big)
        );
        assert_eq!(
            scratch.capacity(),
            cap,
            "scratch allocation is reused, not reallocated per frame"
        );
        assert_eq!(read_frame_buffered(&mut slice, &mut scratch).unwrap(), None);
    }

    #[test]
    fn rejects_garbage() {
        // Unknown opcode.
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(0x7f);
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::Malformed(_))
        ));
        // Oversized length.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::Oversized(_))
        ));
        // Trailing bytes after a valid payload.
        let mut body = vec![opcode::STATS, 0xff];
        let mut buf = Vec::new();
        buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        buf.append(&mut body);
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::Malformed(_))
        ));
        // Truncated body mid-frame is an error, not clean EOF.
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_le_bytes());
        buf.push(opcode::STATS);
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }
}
