//! Rows and row identifiers.

use crate::value::Value;
use std::fmt;

/// A tuple: an ordered list of values matching some [`crate::schema::Schema`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Build a row from values.
    pub fn new(values: Vec<Value>) -> Row {
        Row { values }
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// All values, in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at position `idx`.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Replace the value at position `idx`. Panics if out of range.
    pub fn set(&mut self, idx: usize, value: Value) {
        self.values[idx] = value;
    }

    /// Consume the row, yielding its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Mutable access to the values, for decoders that refill a row in
    /// place. Callers are responsible for keeping the arity consistent
    /// with whatever schema the row is used against.
    pub fn values_mut(&mut self) -> &mut Vec<Value> {
        &mut self.values
    }

    /// Project the row onto the given column positions.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Project into an existing row, reusing its per-slot allocations.
    pub fn project_into(&self, indices: &[usize], out: &mut Row) {
        let values = &mut out.values;
        values.truncate(indices.len());
        for (slot, &i) in values.iter_mut().zip(indices) {
            self.values[i].clone_into_slot(slot);
        }
        for &i in &indices[values.len()..] {
            values.push(self.values[i].clone());
        }
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

/// Stable identifier of a stored row: a (page, slot) pair packed into 64
/// bits. RowIds are never reused within a table's lifetime only if the slot
/// is not reclaimed; the heap reuses dead slots, so holders of a RowId must
/// not assume liveness across deletes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(u64);

impl RowId {
    /// Pack a page number and slot index.
    pub fn new(page: u32, slot: u16) -> RowId {
        RowId(((page as u64) << 16) | slot as u64)
    }

    /// The page number.
    pub fn page(self) -> u32 {
        (self.0 >> 16) as u32
    }

    /// The slot index within the page.
    pub fn slot(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }

    /// Raw packed form (used in errors and as a popularity key).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild from the raw packed form.
    pub fn from_raw(raw: u64) -> RowId {
        RowId(raw)
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.page(), self.slot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_basics() {
        let mut r = Row::new(vec![Value::Int(1), Value::Text("a".into())]);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.get(0), Some(&Value::Int(1)));
        assert_eq!(r.get(9), None);
        r.set(0, Value::Int(5));
        assert_eq!(r.get(0), Some(&Value::Int(5)));
        assert_eq!(r.to_string(), "(5, 'a')");
    }

    #[test]
    fn row_projection() {
        let r = Row::new(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        let p = r.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Int(3), Value::Int(1)]);
    }

    #[test]
    fn rowid_packing_round_trips() {
        for (page, slot) in [(0u32, 0u16), (1, 2), (u32::MAX, u16::MAX), (12345, 678)] {
            let rid = RowId::new(page, slot);
            assert_eq!(rid.page(), page);
            assert_eq!(rid.slot(), slot);
            assert_eq!(RowId::from_raw(rid.raw()), rid);
        }
    }

    #[test]
    fn rowid_ordering_is_page_major() {
        assert!(RowId::new(0, 5) < RowId::new(1, 0));
        assert!(RowId::new(1, 0) < RowId::new(1, 1));
    }

    #[test]
    fn rowid_display() {
        assert_eq!(RowId::new(3, 7).to_string(), "3:7");
    }
}
