//! Slotted pages: the unit of tuple storage.
//!
//! Layout of an 8 KiB page:
//!
//! ```text
//! +---------------------+----------------------+-----------+-----------+
//! | header (6 bytes)    | slot directory  -->  | free gap  | <-- cells |
//! +---------------------+----------------------+-----------+-----------+
//! header: num_slots:u16 | free_start:u16 | free_end:u16
//! slot:   offset:u16 | len:u16      (offset == 0 marks a dead slot)
//! ```
//!
//! The slot directory grows forward from the header; cell bodies grow
//! backward from the end of the page. `free_start..free_end` is the
//! contiguous free gap. Deleting a record tombstones its slot (offset = 0);
//! dead slots are reused by later inserts, and [`Page::compact`] reclaims
//! dead cell space by sliding live cells to the end of the page.

use crate::error::{Result, StorageError};
use bytes::BytesMut;

/// Size of every page in bytes.
pub const PAGE_SIZE: usize = 8192;
/// Page header size: num_slots, free_start, free_end.
const HEADER: usize = 6;
/// Size of one slot directory entry.
const SLOT: usize = 4;
/// Largest record body a single page can hold (one slot, empty page).
pub const MAX_RECORD: usize = PAGE_SIZE - HEADER - SLOT;

/// A single slotted page.
pub struct Page {
    buf: BytesMut,
}

impl Page {
    /// A fresh, empty page.
    pub fn new() -> Page {
        let mut buf = BytesMut::zeroed(PAGE_SIZE);
        write_u16(&mut buf, 0, 0); // num_slots
        write_u16(&mut buf, 2, HEADER as u16); // free_start
        write_u16(&mut buf, 4, PAGE_SIZE as u16); // free_end; PAGE_SIZE==8192 fits u16
        Page { buf }
    }

    /// Rebuild a page from its raw bytes (used by snapshot loading).
    pub fn from_bytes(raw: &[u8]) -> Result<Page> {
        if raw.len() != PAGE_SIZE {
            return Err(StorageError::CorruptPage(format!(
                "page must be {PAGE_SIZE} bytes, got {}",
                raw.len()
            )));
        }
        let page = Page {
            buf: BytesMut::from(raw),
        };
        page.check()?;
        Ok(page)
    }

    /// Raw bytes of the page (for snapshotting).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of slot entries ever allocated (live or dead).
    pub fn num_slots(&self) -> usize {
        read_u16(&self.buf, 0) as usize
    }

    fn free_start(&self) -> usize {
        read_u16(&self.buf, 2) as usize
    }

    fn free_end(&self) -> usize {
        read_u16(&self.buf, 4) as usize
    }

    fn set_num_slots(&mut self, v: usize) {
        write_u16(&mut self.buf, 0, v as u16);
    }

    fn set_free_start(&mut self, v: usize) {
        write_u16(&mut self.buf, 2, v as u16);
    }

    fn set_free_end(&mut self, v: usize) {
        write_u16(&mut self.buf, 4, v as u16);
    }

    fn slot_entry(&self, slot: usize) -> (usize, usize) {
        let base = HEADER + slot * SLOT;
        (
            read_u16(&self.buf, base) as usize,
            read_u16(&self.buf, base + 2) as usize,
        )
    }

    fn set_slot_entry(&mut self, slot: usize, offset: usize, len: usize) {
        let base = HEADER + slot * SLOT;
        write_u16(&mut self.buf, base, offset as u16);
        write_u16(&mut self.buf, base + 2, len as u16);
    }

    /// Contiguous free bytes between the slot directory and the cell area.
    pub fn contiguous_free(&self) -> usize {
        self.free_end() - self.free_start()
    }

    /// Free bytes recoverable by compaction (dead cells) plus the gap.
    pub fn total_free(&self) -> usize {
        let mut dead = 0;
        for s in 0..self.num_slots() {
            let (off, len) = self.slot_entry(s);
            if off == 0 {
                dead += len;
            }
        }
        self.contiguous_free() + dead
    }

    /// Number of live records.
    pub fn live_count(&self) -> usize {
        (0..self.num_slots())
            .filter(|&s| self.slot_entry(s).0 != 0)
            .count()
    }

    /// Whether a record of `len` bytes can be inserted (possibly after
    /// compaction).
    pub fn can_fit(&self, len: usize) -> bool {
        if len > MAX_RECORD {
            return false;
        }
        let slot_cost = if self.first_dead_slot().is_some() {
            0
        } else {
            SLOT
        };
        self.total_free() >= len + slot_cost
    }

    fn first_dead_slot(&self) -> Option<usize> {
        (0..self.num_slots()).find(|&s| self.slot_entry(s).0 == 0)
    }

    /// Insert a record, returning its slot index, or `None` if it cannot fit
    /// even after compaction.
    pub fn insert(&mut self, record: &[u8]) -> Option<u16> {
        if !self.can_fit(record.len()) {
            return None;
        }
        let reuse = self.first_dead_slot();
        let slot_cost = if reuse.is_some() { 0 } else { SLOT };
        if self.contiguous_free() < record.len() + slot_cost {
            self.compact();
        }
        debug_assert!(self.contiguous_free() >= record.len() + slot_cost);
        let new_end = self.free_end() - record.len();
        self.buf[new_end..new_end + record.len()].copy_from_slice(record);
        self.set_free_end(new_end);
        let slot = match reuse {
            Some(s) => s,
            None => {
                let s = self.num_slots();
                self.set_num_slots(s + 1);
                self.set_free_start(self.free_start() + SLOT);
                s
            }
        };
        self.set_slot_entry(slot, new_end, record.len());
        Some(slot as u16)
    }

    /// Read the record in `slot`, if live.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        let slot = slot as usize;
        if slot >= self.num_slots() {
            return None;
        }
        let (off, len) = self.slot_entry(slot);
        if off == 0 {
            return None;
        }
        Some(&self.buf[off..off + len])
    }

    /// Tombstone the record in `slot`. Returns true if it was live.
    pub fn delete(&mut self, slot: u16) -> bool {
        let slot = slot as usize;
        if slot >= self.num_slots() {
            return false;
        }
        let (off, len) = self.slot_entry(slot);
        if off == 0 {
            return false;
        }
        // Keep the length so total_free() can account for the dead cell.
        self.set_slot_entry(slot, 0, len);
        true
    }

    /// Replace the record in `slot` with `record`, in place when possible.
    /// Returns false if the slot is dead or the new record cannot fit.
    pub fn update(&mut self, slot: u16, record: &[u8]) -> bool {
        let s = slot as usize;
        if s >= self.num_slots() {
            return false;
        }
        let (off, len) = self.slot_entry(s);
        if off == 0 {
            return false;
        }
        if record.len() <= len {
            // Shrinking in place; leftover bytes become internal waste
            // reclaimed at the next compaction (we keep len as the cell
            // size so accounting stays simple).
            self.buf[off..off + record.len()].copy_from_slice(record);
            self.set_slot_entry(s, off, record.len());
            return true;
        }
        // Need to relocate: tombstone then insert, restoring on failure.
        self.set_slot_entry(s, 0, len);
        if !self.can_fit_in_slot(record.len()) {
            self.set_slot_entry(s, off, len);
            return false;
        }
        if self.contiguous_free() < record.len() {
            self.compact();
        }
        let new_end = self.free_end() - record.len();
        self.buf[new_end..new_end + record.len()].copy_from_slice(record);
        self.set_free_end(new_end);
        self.set_slot_entry(s, new_end, record.len());
        true
    }

    /// can_fit variant that does not require a fresh slot (reusing `slot`).
    fn can_fit_in_slot(&self, len: usize) -> bool {
        len <= MAX_RECORD && self.total_free() >= len
    }

    /// Slide live cells to the end of the page, coalescing free space.
    pub fn compact(&mut self) {
        let n = self.num_slots();
        // Collect live cells (slot, offset, len), sorted by offset descending
        // so we can repack from the page end without overlap.
        let mut live: Vec<(usize, usize, usize)> = (0..n)
            .filter_map(|s| {
                let (off, len) = self.slot_entry(s);
                (off != 0).then_some((s, off, len))
            })
            .collect();
        live.sort_by_key(|&(_, off, _)| std::cmp::Reverse(off));
        let mut write_end = PAGE_SIZE;
        for (slot, off, len) in live {
            let new_off = write_end - len;
            self.buf.copy_within(off..off + len, new_off);
            self.set_slot_entry(slot, new_off, len);
            write_end = new_off;
        }
        // Dead slots lose their recorded length once the cell is reclaimed.
        for s in 0..n {
            let (off, _len) = self.slot_entry(s);
            if off == 0 {
                self.set_slot_entry(s, 0, 0);
            }
        }
        self.set_free_end(write_end);
    }

    /// Iterate over `(slot, record)` pairs of live records.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> {
        (0..self.num_slots()).filter_map(move |s| {
            let (off, len) = self.slot_entry(s);
            (off != 0).then(|| (s as u16, &self.buf[off..off + len]))
        })
    }

    /// Validate internal invariants; used when loading snapshots.
    fn check(&self) -> Result<()> {
        let n = self.num_slots();
        let fs = self.free_start();
        let fe = self.free_end();
        if fs != HEADER + n * SLOT {
            return Err(StorageError::CorruptPage(format!(
                "free_start {fs} inconsistent with {n} slots"
            )));
        }
        if fe < fs || fe > PAGE_SIZE {
            return Err(StorageError::CorruptPage(format!(
                "free_end {fe} out of range"
            )));
        }
        for s in 0..n {
            let (off, len) = self.slot_entry(s);
            if off == 0 {
                continue;
            }
            if off < fe || off + len > PAGE_SIZE {
                return Err(StorageError::CorruptPage(format!(
                    "slot {s} cell [{off}, {}) escapes cell area",
                    off + len
                )));
            }
        }
        Ok(())
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::new()
    }
}

fn read_u16(buf: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([buf[at], buf[at + 1]])
}

fn write_u16(buf: &mut [u8], at: usize, v: u16) {
    buf[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut p = Page::new();
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_eq!(p.get(a), Some(&b"hello"[..]));
        assert_eq!(p.get(b), Some(&b"world!"[..]));
        assert_eq!(p.live_count(), 2);
    }

    #[test]
    fn delete_tombstones_and_slot_reuse() {
        let mut p = Page::new();
        let a = p.insert(b"aaa").unwrap();
        let _b = p.insert(b"bbb").unwrap();
        assert!(p.delete(a));
        assert!(!p.delete(a), "double delete is a no-op");
        assert_eq!(p.get(a), None);
        let c = p.insert(b"ccc").unwrap();
        assert_eq!(c, a, "dead slot should be reused");
        assert_eq!(p.get(c), Some(&b"ccc"[..]));
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut p = Page::new();
        let rec = [7u8; 100];
        let mut n = 0;
        while p.insert(&rec).is_some() {
            n += 1;
        }
        // 8192 - 6 header; each record costs 100 + 4 slot bytes.
        assert_eq!(n, (PAGE_SIZE - HEADER) / 104);
        assert!(!p.can_fit(100));
        assert!(p.can_fit(10) || p.contiguous_free() < 14);
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let mut p = Page::new();
        let mut slots = Vec::new();
        let rec = [3u8; 512];
        while let Some(s) = p.insert(&rec) {
            slots.push(s);
        }
        // Delete every other record, then insert one bigger than the gap.
        for (i, s) in slots.iter().enumerate() {
            if i % 2 == 0 {
                p.delete(*s);
            }
        }
        let big = [9u8; 1024];
        let s = p.insert(&big).expect("compaction should make room");
        assert_eq!(p.get(s), Some(&big[..]));
        // Survivors unchanged.
        for (i, s) in slots.iter().enumerate() {
            if i % 2 == 1 {
                assert_eq!(p.get(*s), Some(&rec[..]));
            }
        }
    }

    #[test]
    fn update_in_place_and_relocating() {
        let mut p = Page::new();
        let s = p.insert(&[1u8; 64]).unwrap();
        assert!(p.update(s, &[2u8; 32]), "shrink in place");
        assert_eq!(p.get(s), Some(&[2u8; 32][..]));
        assert!(p.update(s, &[3u8; 128]), "grow relocates");
        assert_eq!(p.get(s), Some(&[3u8; 128][..]));
    }

    #[test]
    fn update_too_large_restores_original() {
        let mut p = Page::new();
        let s = p.insert(&[1u8; 64]).unwrap();
        // Fill the page so the oversized update cannot fit.
        while p.insert(&[0u8; 256]).is_some() {}
        let huge = vec![9u8; MAX_RECORD + 1];
        assert!(!p.update(s, &huge));
        assert_eq!(p.get(s), Some(&[1u8; 64][..]), "original value intact");
    }

    #[test]
    fn empty_record_supported() {
        let mut p = Page::new();
        let s = p.insert(b"").unwrap();
        // Slotted pages can't distinguish a live zero-offset record, so we
        // store empty records at a real offset: get must return Some.
        assert_eq!(p.get(s), Some(&b""[..]));
    }

    #[test]
    fn iter_yields_live_only() {
        let mut p = Page::new();
        let a = p.insert(b"a").unwrap();
        let b = p.insert(b"b").unwrap();
        let c = p.insert(b"c").unwrap();
        p.delete(b);
        let got: Vec<(u16, Vec<u8>)> = p.iter().map(|(s, r)| (s, r.to_vec())).collect();
        assert_eq!(got, vec![(a, b"a".to_vec()), (c, b"c".to_vec())]);
    }

    #[test]
    fn snapshot_round_trip() {
        let mut p = Page::new();
        let a = p.insert(b"persist me").unwrap();
        p.insert(b"and me").unwrap();
        let raw = p.as_bytes().to_vec();
        let q = Page::from_bytes(&raw).unwrap();
        assert_eq!(q.get(a), Some(&b"persist me"[..]));
        assert_eq!(q.live_count(), 2);
    }

    #[test]
    fn from_bytes_rejects_bad_sizes_and_corruption() {
        assert!(Page::from_bytes(&[0u8; 10]).is_err());
        let mut raw = Page::new().as_bytes().to_vec();
        raw[0] = 0xFF; // absurd slot count
        raw[1] = 0xFF;
        assert!(Page::from_bytes(&raw).is_err());
    }

    #[test]
    fn oversized_record_rejected() {
        let mut p = Page::new();
        assert!(p.insert(&vec![0u8; MAX_RECORD + 1]).is_none());
        assert!(p.insert(&vec![0u8; MAX_RECORD]).is_some());
    }
}
