//! Write-ahead logging: durability between snapshots.
//!
//! Snapshots ([`crate::persist`]) are atomic but heavyweight; the WAL
//! makes individual mutations durable between them. Each record is
//! length-prefixed and CRC-protected, so recovery tolerates a torn tail
//! (a crash mid-append) by stopping at the first invalid record —
//! standard ARIES-lite behaviour.
//!
//! Record layout:
//!
//! ```text
//! len: u32 | crc32(payload): u32 | payload
//! payload := tag:u8 ...
//!   tag 1 = Insert     table:string row:row
//!   tag 2 = Update     table:string rid:u64 row:row
//!   tag 3 = Delete     table:string rid:u64
//!   tag 4 = Checkpoint (snapshot was durably written; older records dead)
//! ```
//!
//! Replay determinism: heap slot allocation is deterministic, so applying
//! the same record sequence to the same base snapshot reproduces the same
//! RowIds, which is what makes logged `Update`/`Delete` rids valid on
//! recovery.

use crate::catalog::Catalog;
use crate::codec::{encode_row, encode_string, Reader};
use crate::error::{Result, StorageError};
use crate::persist::crc32;
use crate::row::{Row, RowId};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read as _, Write as _};
use std::path::Path;

const TAG_INSERT: u8 = 1;
const TAG_UPDATE: u8 = 2;
const TAG_DELETE: u8 = 3;
const TAG_CHECKPOINT: u8 = 4;

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A row was inserted into `table`.
    Insert { table: String, row: Row },
    /// The row at `rid` in `table` was replaced by `row`.
    Update { table: String, rid: RowId, row: Row },
    /// The row at `rid` in `table` was deleted.
    Delete { table: String, rid: RowId },
    /// A snapshot checkpoint: records before this one are superseded.
    Checkpoint,
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        match self {
            WalRecord::Insert { table, row } => {
                payload.push(TAG_INSERT);
                encode_string(table, &mut payload);
                encode_row(row, &mut payload);
            }
            WalRecord::Update { table, rid, row } => {
                payload.push(TAG_UPDATE);
                encode_string(table, &mut payload);
                payload.extend_from_slice(&rid.raw().to_le_bytes());
                encode_row(row, &mut payload);
            }
            WalRecord::Delete { table, rid } => {
                payload.push(TAG_DELETE);
                encode_string(table, &mut payload);
                payload.extend_from_slice(&rid.raw().to_le_bytes());
            }
            WalRecord::Checkpoint => payload.push(TAG_CHECKPOINT),
        }
        let mut out = Vec::with_capacity(payload.len() + 8);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    fn decode(payload: &[u8]) -> Result<WalRecord> {
        let mut r = Reader::new(payload);
        let rec = match r.u8()? {
            TAG_INSERT => WalRecord::Insert {
                table: r.string()?,
                row: r.row()?,
            },
            TAG_UPDATE => WalRecord::Update {
                table: r.string()?,
                rid: RowId::from_raw(r.u64()?),
                row: r.row()?,
            },
            TAG_DELETE => WalRecord::Delete {
                table: r.string()?,
                rid: RowId::from_raw(r.u64()?),
            },
            TAG_CHECKPOINT => WalRecord::Checkpoint,
            t => {
                return Err(StorageError::CorruptSnapshot(format!(
                    "unknown wal tag {t}"
                )))
            }
        };
        if r.remaining() != 0 {
            return Err(StorageError::CorruptSnapshot(
                "trailing bytes in wal record".into(),
            ));
        }
        Ok(rec)
    }
}

/// An append-only WAL writer.
pub struct Wal {
    file: BufWriter<File>,
    appended: u64,
}

impl Wal {
    /// Open (creating or appending to) the log at `path`.
    pub fn open(path: &Path) -> Result<Wal> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Wal {
            file: BufWriter::new(file),
            appended: 0,
        })
    }

    /// Append a record (buffered; call [`Wal::sync`] for durability).
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        self.file.write_all(&record.encode())?;
        self.appended += 1;
        Ok(())
    }

    /// Flush buffers and fsync to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.flush()?;
        self.file.get_ref().sync_all()?;
        Ok(())
    }

    /// Records appended through this handle.
    pub fn appended(&self) -> u64 {
        self.appended
    }
}

/// Read every valid record from a log, stopping silently at a torn tail.
pub fn read_log(path: &Path) -> Result<Vec<WalRecord>> {
    let mut raw = Vec::new();
    File::open(path)?.read_to_end(&mut raw)?;
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= raw.len() {
        let len = u32::from_le_bytes([raw[pos], raw[pos + 1], raw[pos + 2], raw[pos + 3]]) as usize;
        let stored_crc =
            u32::from_le_bytes([raw[pos + 4], raw[pos + 5], raw[pos + 6], raw[pos + 7]]);
        let start = pos + 8;
        let end = match start.checked_add(len) {
            Some(e) if e <= raw.len() => e,
            _ => break, // torn tail: length runs past EOF
        };
        let payload = &raw[start..end];
        if crc32(payload) != stored_crc {
            break; // torn or corrupt tail: stop replay here
        }
        records.push(WalRecord::decode(payload)?);
        pos = end;
    }
    Ok(records)
}

/// Apply records after the last checkpoint to a catalog (recovery).
/// Returns the number of records applied.
pub fn recover(catalog: &Catalog, records: &[WalRecord]) -> Result<usize> {
    // Only the suffix after the last checkpoint applies to this snapshot.
    let start = records
        .iter()
        .rposition(|r| matches!(r, WalRecord::Checkpoint))
        .map(|i| i + 1)
        .unwrap_or(0);
    let mut applied = 0;
    for record in &records[start..] {
        match record {
            WalRecord::Insert { table, row } => {
                let t = catalog.table(table)?;
                t.write().insert(row.clone())?;
            }
            WalRecord::Update { table, rid, row } => {
                let t = catalog.table(table)?;
                t.write().update(*rid, row.clone())?;
            }
            WalRecord::Delete { table, rid } => {
                let t = catalog.table(table)?;
                t.write().delete(*rid)?;
            }
            WalRecord::Checkpoint => unreachable!("suffix starts after the last checkpoint"),
        }
        applied += 1;
    }
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::{DataType, Value};
    use std::fs;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dg-wal-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn fresh_catalog() -> Catalog {
        let c = Catalog::new();
        let schema = Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("v", DataType::Text),
        ])
        .unwrap();
        c.create_table("t", schema).unwrap();
        c
    }

    fn row(id: i64, v: &str) -> Row {
        Row::new(vec![Value::Int(id), Value::Text(v.into())])
    }

    #[test]
    fn append_and_read_round_trip() {
        let path = tmp("roundtrip.wal");
        fs::remove_file(&path).ok();
        let records = vec![
            WalRecord::Insert {
                table: "t".into(),
                row: row(1, "a"),
            },
            WalRecord::Update {
                table: "t".into(),
                rid: RowId::new(0, 0),
                row: row(1, "b"),
            },
            WalRecord::Checkpoint,
            WalRecord::Delete {
                table: "t".into(),
                rid: RowId::new(0, 0),
            },
        ];
        {
            let mut wal = Wal::open(&path).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
            wal.sync().unwrap();
            assert_eq!(wal.appended(), 4);
        }
        assert_eq!(read_log(&path).unwrap(), records);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let path = tmp("torn.wal");
        fs::remove_file(&path).ok();
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&WalRecord::Insert {
                table: "t".into(),
                row: row(1, "a"),
            })
            .unwrap();
            wal.append(&WalRecord::Insert {
                table: "t".into(),
                row: row(2, "b"),
            })
            .unwrap();
            wal.sync().unwrap();
        }
        // Chop bytes off the end: the last record becomes torn.
        let mut bytes = fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 3);
        fs::write(&path, &bytes).unwrap();
        let records = read_log(&path).unwrap();
        assert_eq!(records.len(), 1, "only the intact prefix survives");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let path = tmp("corrupt.wal");
        fs::remove_file(&path).ok();
        {
            let mut wal = Wal::open(&path).unwrap();
            for i in 0..3 {
                wal.append(&WalRecord::Insert {
                    table: "t".into(),
                    row: row(i, "x"),
                })
                .unwrap();
            }
            wal.sync().unwrap();
        }
        let mut bytes = fs::read(&path).unwrap();
        // Flip a payload byte of the second record; records are
        // equal-sized here, so target just past the first record.
        let record_size = bytes.len() / 3;
        bytes[record_size + 10] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(read_log(&path).unwrap().len(), 1);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn recovery_replays_after_last_checkpoint() {
        let catalog = fresh_catalog();
        // Pre-checkpoint garbage must be ignored; post-checkpoint applies.
        let records = vec![
            WalRecord::Insert {
                table: "t".into(),
                row: row(999, "stale"),
            },
            WalRecord::Checkpoint,
            WalRecord::Insert {
                table: "t".into(),
                row: row(1, "a"),
            },
            WalRecord::Insert {
                table: "t".into(),
                row: row(2, "b"),
            },
        ];
        let applied = recover(&catalog, &records).unwrap();
        assert_eq!(applied, 2);
        let t = catalog.table("t").unwrap();
        assert_eq!(t.read().len(), 2);
    }

    #[test]
    fn recovery_reproduces_direct_application() {
        // Apply a mutation sequence directly to catalog A while logging;
        // recover catalog B from the log: identical contents.
        let path = tmp("equiv.wal");
        fs::remove_file(&path).ok();
        let a = fresh_catalog();
        let mut wal = Wal::open(&path).unwrap();

        let ta = a.table("t").unwrap();
        let mut rids = Vec::new();
        for i in 0..10 {
            let r = row(i, &format!("v{i}"));
            let rid = ta.write().insert(r.clone()).unwrap();
            wal.append(&WalRecord::Insert {
                table: "t".into(),
                row: r,
            })
            .unwrap();
            rids.push(rid);
        }
        let new_row = row(3, "updated");
        let new_rid = ta.write().update(rids[3], new_row.clone()).unwrap();
        wal.append(&WalRecord::Update {
            table: "t".into(),
            rid: rids[3],
            row: new_row,
        })
        .unwrap();
        ta.write().delete(rids[7]).unwrap();
        wal.append(&WalRecord::Delete {
            table: "t".into(),
            rid: rids[7],
        })
        .unwrap();
        wal.sync().unwrap();

        let b = fresh_catalog();
        recover(&b, &read_log(&path).unwrap()).unwrap();
        let tb = b.table("t").unwrap();
        assert_eq!(tb.read().len(), ta.read().len());
        // Same rows at the same rids (deterministic allocation).
        assert_eq!(
            tb.read().peek(new_rid).unwrap().get(1),
            Some(&Value::Text("updated".into()))
        );
        assert!(tb.read().peek(rids[7]).is_err());
        fs::remove_file(&path).ok();
    }
}
