//! The catalog: a named collection of tables, safe for concurrent use.

use crate::error::{Result, StorageError};
use crate::schema::Schema;
use crate::table::Table;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A handle to a table, shareable across threads. Readers and writers
/// synchronize on the per-table RwLock.
pub type TableRef = Arc<RwLock<Table>>;

/// A named collection of tables.
///
/// The catalog lock is only held to look up or modify the *set* of tables;
/// per-table operations take the table's own lock, so queries on different
/// tables never contend.
pub struct Catalog {
    tables: RwLock<BTreeMap<String, TableRef>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog {
            tables: RwLock::new(BTreeMap::new()),
        }
    }

    /// Create a table. Fails if the name is taken.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<TableRef> {
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            return Err(StorageError::TableExists(name.to_owned()));
        }
        let table = Arc::new(RwLock::new(Table::new(name, schema)));
        tables.insert(name.to_owned(), Arc::clone(&table));
        Ok(table)
    }

    /// Register an already-built table (snapshot loading).
    pub fn install_table(&self, table: Table) -> Result<TableRef> {
        let mut tables = self.tables.write();
        let name = table.name().to_owned();
        if tables.contains_key(&name) {
            return Err(StorageError::TableExists(name));
        }
        let table = Arc::new(RwLock::new(table));
        tables.insert(name, Arc::clone(&table));
        Ok(table)
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Result<TableRef> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::TableNotFound(name.to_owned()))
    }

    /// Drop a table. Fails if absent.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let mut tables = self.tables.write();
        tables
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StorageError::TableNotFound(name.to_owned()))
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.read().len()
    }

    /// Whether the catalog has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.read().is_empty()
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog")
            .field("tables", &self.table_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::new(vec![Column::not_null("id", DataType::Int)]).unwrap()
    }

    #[test]
    fn create_lookup_drop() {
        let c = Catalog::new();
        c.create_table("t", schema()).unwrap();
        assert!(c.table("t").is_ok());
        assert_eq!(c.table_names(), vec!["t".to_string()]);
        assert_eq!(c.len(), 1);
        c.drop_table("t").unwrap();
        assert!(c.table("t").is_err());
        assert!(c.is_empty());
    }

    #[test]
    fn duplicate_name_rejected() {
        let c = Catalog::new();
        c.create_table("t", schema()).unwrap();
        assert!(matches!(
            c.create_table("t", schema()),
            Err(StorageError::TableExists(_))
        ));
    }

    #[test]
    fn drop_missing_rejected() {
        let c = Catalog::new();
        assert!(matches!(
            c.drop_table("nope"),
            Err(StorageError::TableNotFound(_))
        ));
    }

    #[test]
    fn concurrent_access_different_tables() {
        use crate::row::Row;
        use crate::value::Value;
        let c = Arc::new(Catalog::new());
        c.create_table("a", schema()).unwrap();
        c.create_table("b", schema()).unwrap();
        let mut handles = Vec::new();
        for name in ["a", "b"] {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                let t = c.table(name).unwrap();
                for i in 0..1000 {
                    t.write().insert(Row::new(vec![Value::Int(i)])).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.table("a").unwrap().read().len(), 1000);
        assert_eq!(c.table("b").unwrap().read().len(), 1000);
    }
}
