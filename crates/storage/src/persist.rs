//! Binary snapshot persistence with CRC32 integrity checking.
//!
//! Snapshot layout:
//!
//! ```text
//! magic    : 8 bytes  "DGSNAP01"
//! n_tables : u32
//! table*   :
//!   name        : string (u32 len + utf8)
//!   n_columns   : u16
//!   column*     : name string, dtype u8, not_null u8
//!   stats       : inserts u64, updates u64, deletes u64, reads u64
//!   n_indexes   : u16
//!   index*      : name string, n_cols u16, col u16*, unique u8
//!   n_pages     : u32
//!   page*       : PAGE_SIZE raw bytes
//! crc32    : u32 over everything before it (IEEE polynomial)
//! ```
//!
//! Writes go to a temporary sibling file which is fsynced and atomically
//! renamed over the destination, so a crash never leaves a torn snapshot.

use crate::catalog::Catalog;
use crate::codec::{encode_string, Reader};
use crate::error::{Result, StorageError};
use crate::heap::HeapFile;
use crate::index::IndexDef;
use crate::page::{Page, PAGE_SIZE};
use crate::schema::{Column, Schema};
use crate::stats::TableStats;
use crate::table::Table;
use crate::value::DataType;
use std::fs;
use std::io::Write;
use std::path::Path;

const MAGIC: &[u8; 8] = b"DGSNAP01";

/// Compute the IEEE CRC32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    // Standard table-driven implementation (polynomial 0xEDB88320).
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Text => 3,
        DataType::Bytes => 4,
    }
}

fn dtype_from_tag(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Text,
        4 => DataType::Bytes,
        t => {
            return Err(StorageError::CorruptSnapshot(format!(
                "unknown dtype tag {t}"
            )))
        }
    })
}

/// Serialize the whole catalog into a byte buffer (without writing to disk).
pub fn snapshot_bytes(catalog: &Catalog) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    let names = catalog.table_names();
    out.extend_from_slice(&(names.len() as u32).to_le_bytes());
    for name in names {
        let table_ref = catalog.table(&name).expect("table vanished mid-snapshot");
        let table = table_ref.read();
        encode_table(&table, &mut out);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn encode_table(table: &Table, out: &mut Vec<u8>) {
    encode_string(table.name(), out);
    let cols = table.schema().columns();
    out.extend_from_slice(&(cols.len() as u16).to_le_bytes());
    for c in cols {
        encode_string(&c.name, out);
        out.push(dtype_tag(c.dtype));
        out.push(c.not_null as u8);
    }
    let st = table.stats();
    for v in [st.inserts, st.updates, st.deletes, st.reads] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    let defs = table.index_defs();
    out.extend_from_slice(&(defs.len() as u16).to_le_bytes());
    for d in &defs {
        encode_string(&d.name, out);
        out.extend_from_slice(&(d.columns.len() as u16).to_le_bytes());
        for &c in &d.columns {
            out.extend_from_slice(&(c as u16).to_le_bytes());
        }
        out.push(d.unique as u8);
    }
    let pages = table.heap().pages();
    out.extend_from_slice(&(pages.len() as u32).to_le_bytes());
    for p in pages {
        out.extend_from_slice(p.as_bytes());
    }
}

/// Parse a snapshot buffer into a fresh catalog.
pub fn catalog_from_bytes(buf: &[u8]) -> Result<Catalog> {
    if buf.len() < MAGIC.len() + 4 {
        return Err(StorageError::CorruptSnapshot("snapshot too short".into()));
    }
    let (body, crc_bytes) = buf.split_at(buf.len() - 4);
    let stored = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    let actual = crc32(body);
    if stored != actual {
        return Err(StorageError::CorruptSnapshot(format!(
            "crc mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )));
    }
    let mut r = Reader::new(body);
    let magic = r.bytes(MAGIC.len())?;
    if magic != MAGIC {
        return Err(StorageError::CorruptSnapshot("bad magic".into()));
    }
    let n_tables = r.u32()? as usize;
    let catalog = Catalog::new();
    for _ in 0..n_tables {
        let table = decode_table(&mut r)?;
        catalog.install_table(table)?;
    }
    if r.remaining() != 0 {
        return Err(StorageError::CorruptSnapshot(format!(
            "{} trailing bytes",
            r.remaining()
        )));
    }
    Ok(catalog)
}

fn decode_table(r: &mut Reader<'_>) -> Result<Table> {
    let name = r.string()?;
    let n_cols = r.u16()? as usize;
    let mut columns = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        let cname = r.string()?;
        let dtype = dtype_from_tag(r.u8()?)?;
        let not_null = r.u8()? != 0;
        columns.push(Column {
            name: cname,
            dtype,
            not_null,
        });
    }
    let schema = Schema::new(columns)?;
    let stats = TableStats {
        inserts: r.u64()?,
        updates: r.u64()?,
        deletes: r.u64()?,
        reads: r.u64()?,
    };
    let n_indexes = r.u16()? as usize;
    let mut defs = Vec::with_capacity(n_indexes);
    for _ in 0..n_indexes {
        let iname = r.string()?;
        let n = r.u16()? as usize;
        let mut cols = Vec::with_capacity(n);
        for _ in 0..n {
            cols.push(r.u16()? as usize);
        }
        let unique = r.u8()? != 0;
        defs.push(IndexDef {
            name: iname,
            columns: cols,
            unique,
        });
    }
    let n_pages = r.u32()? as usize;
    let mut pages = Vec::with_capacity(n_pages);
    for _ in 0..n_pages {
        pages.push(Page::from_bytes(r.bytes(PAGE_SIZE)?)?);
    }
    Table::from_parts(name, schema, HeapFile::from_pages(pages), defs, stats)
}

/// Write a snapshot of `catalog` to `path` atomically.
pub fn save(catalog: &Catalog, path: &Path) -> Result<()> {
    let bytes = snapshot_bytes(catalog);
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Load a snapshot from `path`.
pub fn load(path: &Path) -> Result<Catalog> {
    let bytes = fs::read(path)?;
    catalog_from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;
    use crate::value::Value;

    fn sample_catalog() -> Catalog {
        let catalog = Catalog::new();
        let schema = Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("name", DataType::Text),
        ])
        .unwrap();
        let t = catalog.create_table("users", schema).unwrap();
        {
            let mut t = t.write();
            t.create_index("users_pk", &["id"], true).unwrap();
            for i in 0..100 {
                t.insert(Row::new(vec![
                    Value::Int(i),
                    Value::Text(format!("user-{i}")),
                ]))
                .unwrap();
            }
        }
        catalog
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn snapshot_round_trips_in_memory() {
        let catalog = sample_catalog();
        let bytes = snapshot_bytes(&catalog);
        let back = catalog_from_bytes(&bytes).unwrap();
        let t = back.table("users").unwrap();
        let t = t.read();
        assert_eq!(t.len(), 100);
        assert_eq!(t.stats().inserts, 100);
        let id_col = t.schema().index_of("id").unwrap();
        let hits = t
            .index_lookup(&[id_col], &vec![Value::Int(42)])
            .expect("index should be rebuilt");
        assert_eq!(hits.len(), 1);
        assert_eq!(
            t.peek(hits[0]).unwrap().get(1),
            Some(&Value::Text("user-42".into()))
        );
    }

    #[test]
    fn snapshot_round_trips_on_disk() {
        let dir = std::env::temp_dir().join(format!("dg-persist-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.dg");
        let catalog = sample_catalog();
        save(&catalog, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.table("users").unwrap().read().len(), 100);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_detected() {
        let catalog = sample_catalog();
        let mut bytes = snapshot_bytes(&catalog);
        // Flip one bit in the middle of the payload.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = catalog_from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, StorageError::CorruptSnapshot(_)));
    }

    #[test]
    fn truncated_snapshot_detected() {
        let catalog = sample_catalog();
        let bytes = snapshot_bytes(&catalog);
        for cut in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(catalog_from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn bad_magic_detected() {
        let catalog = Catalog::new();
        let mut bytes = snapshot_bytes(&catalog);
        bytes[0] = b'X';
        // Fix up the CRC so only the magic is wrong.
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
        let err = catalog_from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn empty_catalog_round_trips() {
        let catalog = Catalog::new();
        let bytes = snapshot_bytes(&catalog);
        let back = catalog_from_bytes(&bytes).unwrap();
        assert!(back.is_empty());
    }
}
