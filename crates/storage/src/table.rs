//! Tables: schema + heap + indexes, kept mutually consistent.

use crate::codec::{decode_row, decode_row_into, row_bytes};
use crate::error::{Result, StorageError};
use crate::heap::HeapFile;
use crate::index::{Index, IndexDef, IndexKey};
use crate::row::{Row, RowId};
use crate::schema::Schema;
use crate::stats::TableStats;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-global source of DDL versions: every table instance and every
/// index change gets a fresh value, so a cached plan can detect both
/// schema changes *and* table re-creation with a single u64 compare.
static NEXT_DDL_VERSION: AtomicU64 = AtomicU64::new(1);

fn fresh_ddl_version() -> u64 {
    NEXT_DDL_VERSION.fetch_add(1, Ordering::Relaxed)
}

/// A table: rows stored in a heap file, plus any number of named indexes.
///
/// All mutating operations keep every index consistent with the heap, and
/// validate rows against the schema before touching storage.
pub struct Table {
    name: String,
    schema: Schema,
    heap: HeapFile,
    indexes: Vec<Index>,
    stats: TableStats,
    ddl_version: u64,
    data_version: u64,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Table {
        Table {
            name: name.into(),
            schema,
            heap: HeapFile::new(),
            indexes: Vec::new(),
            stats: TableStats::default(),
            ddl_version: fresh_ddl_version(),
            data_version: 0,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Operation counters.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// Record `n` point reads served outside [`Table::get`] (e.g. by a
    /// query executor that fetched rows via `peek`).
    pub fn record_reads(&mut self, n: u64) {
        self.stats.reads += n;
    }

    /// The underlying heap (for snapshotting).
    pub fn heap(&self) -> &HeapFile {
        &self.heap
    }

    /// An opaque version that changes whenever the set of indexes changes
    /// or the table object is rebuilt. Values are unique process-wide, so
    /// equality means "the plan I cached is still valid for this table".
    pub fn ddl_version(&self) -> u64 {
        self.ddl_version
    }

    /// A counter bumped by every committed row mutation (insert, update,
    /// delete). Together with [`Table::ddl_version`] it lets a cached
    /// plan detect that the *data* under it moved — derived statistics,
    /// located row sets, and prepared scans all go stale the same way.
    pub fn data_version(&self) -> u64 {
        self.data_version
    }

    /// Index definitions (for snapshotting and planning).
    pub fn index_defs(&self) -> Vec<IndexDef> {
        self.indexes.iter().map(|i| i.def().clone()).collect()
    }

    /// Create an index over the named columns, backfilling existing rows.
    pub fn create_index(&mut self, name: &str, columns: &[&str], unique: bool) -> Result<()> {
        if self.indexes.iter().any(|i| i.def().name == name) {
            return Err(StorageError::IndexExists(name.to_owned()));
        }
        let positions: Result<Vec<usize>> =
            columns.iter().map(|c| self.schema.index_of(c)).collect();
        let def = IndexDef {
            name: name.to_owned(),
            columns: positions?,
            unique,
        };
        let mut index = Index::new(def);
        for (rid, rec) in self.heap.iter() {
            let row = decode_row(rec)?;
            index.insert(index.key_of(&row), rid)?;
        }
        self.indexes.push(index);
        self.ddl_version = fresh_ddl_version();
        Ok(())
    }

    /// Drop the named index.
    pub fn drop_index(&mut self, name: &str) -> Result<()> {
        let pos = self
            .indexes
            .iter()
            .position(|i| i.def().name == name)
            .ok_or_else(|| StorageError::IndexNotFound(name.to_owned()))?;
        self.indexes.remove(pos);
        self.ddl_version = fresh_ddl_version();
        Ok(())
    }

    /// Find an index whose leading key columns are exactly `columns`.
    pub fn index_on(&self, columns: &[usize]) -> Option<&Index> {
        self.indexes.iter().find(|i| i.def().columns == columns)
    }

    /// Find an index by name.
    pub fn index_named(&self, name: &str) -> Option<&Index> {
        self.indexes.iter().find(|i| i.def().name == name)
    }

    /// Insert a row, updating all indexes. Rolls back on unique violations.
    pub fn insert(&mut self, row: Row) -> Result<RowId> {
        self.schema.validate(&row)?;
        // Check unique constraints before touching storage so failures
        // leave no trace.
        for index in &self.indexes {
            if index.def().unique {
                let key = index.key_of(&row);
                if !index.lookup(&key).is_empty() {
                    return Err(StorageError::UniqueViolation {
                        index: index.def().name.clone(),
                    });
                }
            }
        }
        let rid = self.heap.insert(&row_bytes(&row))?;
        for index in &mut self.indexes {
            let key = index.key_of(&row);
            index
                .insert(key, rid)
                .expect("uniqueness was pre-checked; insert cannot fail");
        }
        self.stats.inserts += 1;
        self.data_version += 1;
        Ok(rid)
    }

    /// Fetch a row by RowId.
    pub fn get(&mut self, rid: RowId) -> Result<Row> {
        let rec = self
            .heap
            .get(rid)
            .ok_or(StorageError::RowNotFound(rid.raw()))?;
        let row = decode_row(rec)?;
        self.stats.reads += 1;
        Ok(row)
    }

    /// Fetch without bumping read stats (internal uses, planners, tests).
    pub fn peek(&self, rid: RowId) -> Result<Row> {
        let rec = self
            .heap
            .get(rid)
            .ok_or(StorageError::RowNotFound(rid.raw()))?;
        decode_row(rec)
    }

    /// Like [`Table::peek`], but decodes into an existing row, reusing
    /// its per-slot allocations.
    pub fn peek_into(&self, rid: RowId, row: &mut Row) -> Result<()> {
        let rec = self
            .heap
            .get(rid)
            .ok_or(StorageError::RowNotFound(rid.raw()))?;
        decode_row_into(rec, row)
    }

    /// Replace the row at `rid` with `new_row`, keeping indexes consistent.
    /// Returns the (possibly relocated) RowId.
    pub fn update(&mut self, rid: RowId, new_row: Row) -> Result<RowId> {
        self.schema.validate(&new_row)?;
        let old_row = self.peek(rid)?;
        // Unique pre-check: the new key may collide with some *other* row.
        for index in &self.indexes {
            if index.def().unique {
                let new_key = index.key_of(&new_row);
                let existing = index.lookup(&new_key);
                if existing.iter().any(|&r| r != rid) {
                    return Err(StorageError::UniqueViolation {
                        index: index.def().name.clone(),
                    });
                }
            }
        }
        let new_rid = self.heap.update(rid, &row_bytes(&new_row))?;
        for index in &mut self.indexes {
            let old_key = index.key_of(&old_row);
            let new_key = index.key_of(&new_row);
            if old_key != new_key || rid != new_rid {
                index.remove(&old_key, rid);
                index
                    .insert(new_key, new_rid)
                    .expect("uniqueness was pre-checked; insert cannot fail");
            }
        }
        self.stats.updates += 1;
        self.data_version += 1;
        Ok(new_rid)
    }

    /// Delete the row at `rid`. Returns the deleted row.
    pub fn delete(&mut self, rid: RowId) -> Result<Row> {
        let row = self.peek(rid)?;
        self.heap.delete(rid);
        for index in &mut self.indexes {
            let key = index.key_of(&row);
            index.remove(&key, rid);
        }
        self.stats.deletes += 1;
        self.data_version += 1;
        Ok(row)
    }

    /// Full scan over `(RowId, Row)` in RowId order. Decodes lazily.
    pub fn scan(&self) -> impl Iterator<Item = Result<(RowId, Row)>> + '_ {
        self.heap
            .iter()
            .map(|(rid, rec)| decode_row(rec).map(|row| (rid, row)))
    }

    /// RowIds matching an exact key on an index over `columns`.
    pub fn index_lookup(&self, columns: &[usize], key: &IndexKey) -> Option<Vec<RowId>> {
        self.index_on(columns).map(|i| i.lookup(key).to_vec())
    }

    /// Like [`Table::index_lookup`], but appends into a caller-owned
    /// buffer. Returns false (leaving `out` untouched) if no index over
    /// exactly `columns` exists.
    pub fn index_lookup_into(
        &self,
        columns: &[usize],
        key: &IndexKey,
        out: &mut Vec<RowId>,
    ) -> bool {
        match self.index_on(columns) {
            Some(i) => {
                out.extend_from_slice(i.lookup(key));
                true
            }
            None => false,
        }
    }

    /// RowIds within a key range on an index over `columns`.
    pub fn index_range(
        &self,
        columns: &[usize],
        lo: Bound<&IndexKey>,
        hi: Bound<&IndexKey>,
    ) -> Option<Vec<RowId>> {
        self.index_on(columns).map(|i| i.range(lo, hi).collect())
    }

    /// Like [`Table::index_range`], but appends into a caller-owned
    /// buffer. Returns false (leaving `out` untouched) if no index over
    /// exactly `columns` exists.
    pub fn index_range_into(
        &self,
        columns: &[usize],
        lo: Bound<&IndexKey>,
        hi: Bound<&IndexKey>,
        out: &mut Vec<RowId>,
    ) -> bool {
        match self.index_on(columns) {
            Some(i) => {
                out.extend(i.range(lo, hi));
                true
            }
            None => false,
        }
    }

    /// Rebuild from snapshot parts (heap pages already loaded).
    pub(crate) fn from_parts(
        name: String,
        schema: Schema,
        heap: HeapFile,
        index_defs: Vec<IndexDef>,
        stats: TableStats,
    ) -> Result<Table> {
        let mut table = Table {
            name,
            schema,
            heap,
            indexes: Vec::new(),
            stats,
            ddl_version: fresh_ddl_version(),
            data_version: 0,
        };
        for def in index_defs {
            let mut index = Index::new(def);
            for (rid, rec) in table.heap.iter() {
                let row = decode_row(rec)?;
                index.insert(index.key_of(&row), rid)?;
            }
            table.indexes.push(index);
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::{DataType, Value};

    fn movies() -> Table {
        let schema = Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::not_null("title", DataType::Text),
            Column::new("gross", DataType::Float),
        ])
        .unwrap();
        let mut t = Table::new("movies", schema);
        t.create_index("movies_pk", &["id"], true).unwrap();
        t.create_index("movies_title", &["title"], false).unwrap();
        t
    }

    fn movie(id: i64, title: &str, gross: f64) -> Row {
        Row::new(vec![
            Value::Int(id),
            Value::Text(title.into()),
            Value::Float(gross),
        ])
    }

    #[test]
    fn insert_and_point_read() {
        let mut t = movies();
        let rid = t.insert(movie(1, "Spider-Man", 403.7e6)).unwrap();
        let row = t.get(rid).unwrap();
        assert_eq!(row.get(1), Some(&Value::Text("Spider-Man".into())));
        assert_eq!(t.len(), 1);
        assert_eq!(t.stats().inserts, 1);
        assert_eq!(t.stats().reads, 1);
    }

    #[test]
    fn unique_index_enforced_without_side_effects() {
        let mut t = movies();
        t.insert(movie(1, "A", 1.0)).unwrap();
        let err = t.insert(movie(1, "B", 2.0)).unwrap_err();
        assert!(matches!(err, StorageError::UniqueViolation { .. }));
        assert_eq!(t.len(), 1, "failed insert must not leave a row");
        // Secondary index must not contain the phantom title either.
        let pos = t.schema().index_of("title").unwrap();
        let hits = t
            .index_lookup(&[pos], &vec![Value::Text("B".into())])
            .unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn update_moves_index_entries() {
        let mut t = movies();
        let rid = t.insert(movie(1, "Old", 1.0)).unwrap();
        t.insert(movie(2, "Other", 2.0)).unwrap();
        let new_rid = t.update(rid, movie(1, "New", 3.0)).unwrap();
        let title_col = t.schema().index_of("title").unwrap();
        assert!(t
            .index_lookup(&[title_col], &vec![Value::Text("Old".into())])
            .unwrap()
            .is_empty());
        assert_eq!(
            t.index_lookup(&[title_col], &vec![Value::Text("New".into())])
                .unwrap(),
            vec![new_rid]
        );
    }

    #[test]
    fn update_unique_collision_rejected() {
        let mut t = movies();
        let _a = t.insert(movie(1, "A", 1.0)).unwrap();
        let b = t.insert(movie(2, "B", 2.0)).unwrap();
        let err = t.update(b, movie(1, "B2", 2.0)).unwrap_err();
        assert!(matches!(err, StorageError::UniqueViolation { .. }));
        // b unchanged
        assert_eq!(t.peek(b).unwrap().get(0), Some(&Value::Int(2)));
    }

    #[test]
    fn update_to_same_key_is_allowed() {
        let mut t = movies();
        let rid = t.insert(movie(1, "A", 1.0)).unwrap();
        let rid2 = t.update(rid, movie(1, "A", 9.0)).unwrap();
        assert_eq!(rid, rid2);
        assert_eq!(t.peek(rid2).unwrap().get(2), Some(&Value::Float(9.0)));
    }

    #[test]
    fn delete_cleans_indexes() {
        let mut t = movies();
        let rid = t.insert(movie(1, "Gone", 1.0)).unwrap();
        let row = t.delete(rid).unwrap();
        assert_eq!(row.get(1), Some(&Value::Text("Gone".into())));
        assert_eq!(t.len(), 0);
        let id_col = t.schema().index_of("id").unwrap();
        assert!(t
            .index_lookup(&[id_col], &vec![Value::Int(1)])
            .unwrap()
            .is_empty());
        assert!(t.get(rid).is_err());
    }

    #[test]
    fn scan_returns_all_live_rows() {
        let mut t = movies();
        for i in 0..10 {
            t.insert(movie(i, &format!("m{i}"), i as f64)).unwrap();
        }
        let rows: Vec<Row> = t.scan().map(|r| r.unwrap().1).collect();
        assert_eq!(rows.len(), 10);
    }

    #[test]
    fn create_index_backfills() {
        let mut t = movies();
        for i in 0..5 {
            t.insert(movie(i, "same", i as f64)).unwrap();
        }
        t.create_index("by_gross", &["gross"], false).unwrap();
        let g = t.schema().index_of("gross").unwrap();
        let hits = t.index_lookup(&[g], &vec![Value::Float(3.0)]).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut t = movies();
        assert!(matches!(
            t.create_index("movies_pk", &["gross"], false),
            Err(StorageError::IndexExists(_))
        ));
    }

    #[test]
    fn drop_index_works() {
        let mut t = movies();
        t.drop_index("movies_title").unwrap();
        assert!(t.index_named("movies_title").is_none());
        assert!(matches!(
            t.drop_index("movies_title"),
            Err(StorageError::IndexNotFound(_))
        ));
    }

    #[test]
    fn ddl_version_changes_on_index_ddl_and_recreation() {
        let mut t = movies();
        let v0 = t.ddl_version();
        t.create_index("by_gross", &["gross"], false).unwrap();
        let v1 = t.ddl_version();
        assert_ne!(v0, v1);
        t.drop_index("by_gross").unwrap();
        let v2 = t.ddl_version();
        assert_ne!(v1, v2);
        // A freshly built table never shares a version with an old one.
        assert_ne!(movies().ddl_version(), v2);
    }

    #[test]
    fn data_version_bumps_on_every_row_mutation() {
        let mut t = movies();
        let v0 = t.data_version();
        let rid = t.insert(movie(1, "Heat", 1.0)).unwrap();
        let v1 = t.data_version();
        assert!(v1 > v0);
        let rid = t.update(rid, movie(1, "Heat", 2.0)).unwrap();
        let v2 = t.data_version();
        assert!(v2 > v1);
        t.delete(rid).unwrap();
        assert!(t.data_version() > v2);
        // DDL does not bump the data version, and a failed insert leaves
        // it untouched.
        t.create_index("by_gross", &["gross"], false).unwrap();
        let v3 = t.data_version();
        t.insert(movie(7, "A", 1.0)).unwrap();
        let v4 = t.data_version();
        assert!(t.insert(movie(7, "B", 2.0)).is_err(), "unique violation");
        assert_eq!(t.data_version(), v4);
        assert!(v4 > v3);
    }

    #[test]
    fn peek_into_matches_peek() {
        let mut t = movies();
        let rid = t.insert(movie(1, "Spider-Man", 403.7e6)).unwrap();
        let mut row = Row::new(Vec::new());
        t.peek_into(rid, &mut row).unwrap();
        assert_eq!(row, t.peek(rid).unwrap());
    }

    #[test]
    fn index_into_variants_match_owned() {
        let mut t = movies();
        for i in 0..10 {
            t.insert(movie(i, &format!("m{i}"), i as f64)).unwrap();
        }
        let id_col = t.schema().index_of("id").unwrap();
        let lo = vec![Value::Int(3)];
        let hi = vec![Value::Int(6)];
        let owned = t
            .index_range(&[id_col], Bound::Included(&lo), Bound::Excluded(&hi))
            .unwrap();
        let mut buf = Vec::new();
        assert!(t.index_range_into(
            &[id_col],
            Bound::Included(&lo),
            Bound::Excluded(&hi),
            &mut buf
        ));
        assert_eq!(owned, buf);
        let key = vec![Value::Int(4)];
        let owned = t.index_lookup(&[id_col], &key).unwrap();
        buf.clear();
        assert!(t.index_lookup_into(&[id_col], &key, &mut buf));
        assert_eq!(owned, buf);
        // Missing index: false, buffer untouched.
        buf.clear();
        buf.push(RowId::from_raw(7));
        assert!(!t.index_lookup_into(&[2], &key, &mut buf));
        assert_eq!(buf, vec![RowId::from_raw(7)]);
    }

    #[test]
    fn index_range_scan() {
        let mut t = movies();
        for i in 0..10 {
            t.insert(movie(i, &format!("m{i}"), i as f64)).unwrap();
        }
        let id_col = t.schema().index_of("id").unwrap();
        let lo = vec![Value::Int(3)];
        let hi = vec![Value::Int(6)];
        let rids = t
            .index_range(&[id_col], Bound::Included(&lo), Bound::Excluded(&hi))
            .unwrap();
        assert_eq!(rids.len(), 3);
    }
}
