//! Error types for the storage engine.

use std::fmt;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A table with this name already exists in the catalog.
    TableExists(String),
    /// No table with this name exists in the catalog.
    TableNotFound(String),
    /// No column with this name exists in the schema.
    ColumnNotFound(String),
    /// An index with this name already exists on the table.
    IndexExists(String),
    /// No index with this name exists on the table.
    IndexNotFound(String),
    /// The row has the wrong number of columns for the schema.
    ArityMismatch { expected: usize, actual: usize },
    /// A value's type does not match the column's declared type.
    TypeMismatch {
        column: String,
        expected: &'static str,
        actual: &'static str,
    },
    /// A NULL was supplied for a NOT NULL column.
    NullViolation(String),
    /// A uniqueness constraint was violated.
    UniqueViolation { index: String },
    /// The row id does not refer to a live row.
    RowNotFound(u64),
    /// A tuple is too large to fit in a page.
    RowTooLarge { size: usize, max: usize },
    /// A page is internally inconsistent (corrupt slot directory, etc.).
    CorruptPage(String),
    /// A persisted snapshot failed validation (bad magic, version, CRC).
    CorruptSnapshot(String),
    /// An underlying I/O error, stringified for cloneability.
    Io(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TableExists(name) => write!(f, "table `{name}` already exists"),
            StorageError::TableNotFound(name) => write!(f, "table `{name}` not found"),
            StorageError::ColumnNotFound(name) => write!(f, "column `{name}` not found"),
            StorageError::IndexExists(name) => write!(f, "index `{name}` already exists"),
            StorageError::IndexNotFound(name) => write!(f, "index `{name}` not found"),
            StorageError::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "row arity mismatch: schema has {expected} columns, row has {actual}"
                )
            }
            StorageError::TypeMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch for column `{column}`: expected {expected}, got {actual}"
            ),
            StorageError::NullViolation(column) => {
                write!(f, "NULL value for NOT NULL column `{column}`")
            }
            StorageError::UniqueViolation { index } => {
                write!(f, "unique constraint violated on index `{index}`")
            }
            StorageError::RowNotFound(rid) => write!(f, "row id {rid:#x} not found"),
            StorageError::RowTooLarge { size, max } => {
                write!(
                    f,
                    "row of {size} bytes exceeds page capacity of {max} bytes"
                )
            }
            StorageError::CorruptPage(msg) => write!(f, "corrupt page: {msg}"),
            StorageError::CorruptSnapshot(msg) => write!(f, "corrupt snapshot: {msg}"),
            StorageError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}

/// Convenient result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::TypeMismatch {
            column: "title".into(),
            expected: "TEXT",
            actual: "INT",
        };
        let s = e.to_string();
        assert!(s.contains("title"));
        assert!(s.contains("TEXT"));
        assert!(s.contains("INT"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: StorageError = io.into();
        assert!(matches!(e, StorageError::Io(_)));
        assert!(e.to_string().contains("nope"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            StorageError::TableNotFound("t".into()),
            StorageError::TableNotFound("t".into())
        );
        assert_ne!(
            StorageError::TableNotFound("t".into()),
            StorageError::TableExists("t".into())
        );
    }
}
