//! Binary encoding of values and rows.
//!
//! Format (little-endian throughout):
//!
//! ```text
//! value  := tag:u8 payload
//!   tag 0 = Null            (no payload)
//!   tag 1 = Bool            payload: u8 (0|1)
//!   tag 2 = Int             payload: i64
//!   tag 3 = Float           payload: f64 bits
//!   tag 4 = Text            payload: len:u32, utf8 bytes
//!   tag 5 = Bytes           payload: len:u32, bytes
//! row    := arity:u16 value*
//! ```
//!
//! The same codec is used for on-page tuples and for snapshot persistence,
//! so decoding is defensive: every read is bounds-checked and malformed
//! input yields [`StorageError::CorruptPage`].

use crate::copymeter;
use crate::error::{Result, StorageError};
use crate::row::Row;
use crate::value::Value;

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_TEXT: u8 = 4;
const TAG_BYTES: u8 = 5;

/// Append the encoding of `value` to `out`.
pub fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            out.push(TAG_TEXT);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
    }
}

/// Append the encoding of `row` to `out`.
pub fn encode_row(row: &Row, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&(row.arity() as u16).to_le_bytes());
    for v in row.values() {
        encode_value(v, out);
    }
    copymeter::add(out.len() - start);
}

/// Encode a row into a fresh buffer.
pub fn row_bytes(row: &Row) -> Vec<u8> {
    // Rough pre-size: tag+8 bytes per value plus header.
    let mut out = Vec::with_capacity(2 + row.arity() * 9);
    encode_row(row, &mut out);
    out
}

/// A bounds-checked reader over an encoded byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(StorageError::CorruptPage(format!(
                "truncated record: wanted {n} bytes at offset {}, {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u16.
    pub fn u16(&mut self) -> Result<u16> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> Result<u32> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> Result<u64> {
        let s = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(s);
        Ok(u64::from_le_bytes(a))
    }

    /// Read a little-endian i64.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(self.u64()? as i64)
    }

    /// Read an f64 stored as its bit pattern.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Decode a single value.
    pub fn value(&mut self) -> Result<Value> {
        let tag = self.u8()?;
        match tag {
            TAG_NULL => Ok(Value::Null),
            TAG_BOOL => match self.u8()? {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                b => Err(StorageError::CorruptPage(format!("bad bool byte {b}"))),
            },
            TAG_INT => Ok(Value::Int(self.i64()?)),
            TAG_FLOAT => Ok(Value::Float(self.f64()?)),
            TAG_TEXT => {
                let len = self.u32()? as usize;
                let raw = self.take(len)?;
                let s = std::str::from_utf8(raw).map_err(|e| {
                    StorageError::CorruptPage(format!("invalid utf8 in TEXT value: {e}"))
                })?;
                Ok(Value::Text(s.to_owned()))
            }
            TAG_BYTES => {
                let len = self.u32()? as usize;
                Ok(Value::Bytes(self.take(len)?.to_vec()))
            }
            t => Err(StorageError::CorruptPage(format!("unknown value tag {t}"))),
        }
    }

    /// Decode a row.
    pub fn row(&mut self) -> Result<Row> {
        let start = self.pos;
        let arity = self.u16()? as usize;
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(self.value()?);
        }
        copymeter::add(self.pos - start);
        Ok(Row::new(values))
    }

    /// Decode a single value into an existing slot, reusing the slot's
    /// heap allocations (Text/Bytes capacity) when the variants line up.
    pub fn value_into(&mut self, slot: &mut Value) -> Result<()> {
        let tag = self.u8()?;
        match tag {
            TAG_NULL => *slot = Value::Null,
            TAG_BOOL => match self.u8()? {
                0 => *slot = Value::Bool(false),
                1 => *slot = Value::Bool(true),
                b => return Err(StorageError::CorruptPage(format!("bad bool byte {b}"))),
            },
            TAG_INT => *slot = Value::Int(self.i64()?),
            TAG_FLOAT => *slot = Value::Float(self.f64()?),
            TAG_TEXT => {
                let len = self.u32()? as usize;
                let raw = self.take(len)?;
                let s = std::str::from_utf8(raw).map_err(|e| {
                    StorageError::CorruptPage(format!("invalid utf8 in TEXT value: {e}"))
                })?;
                if let Value::Text(dst) = slot {
                    dst.clear();
                    dst.push_str(s);
                } else {
                    *slot = Value::Text(s.to_owned());
                }
            }
            TAG_BYTES => {
                let len = self.u32()? as usize;
                let raw = self.take(len)?;
                if let Value::Bytes(dst) = slot {
                    dst.clear();
                    dst.extend_from_slice(raw);
                } else {
                    *slot = Value::Bytes(raw.to_vec());
                }
            }
            t => return Err(StorageError::CorruptPage(format!("unknown value tag {t}"))),
        }
        Ok(())
    }

    /// Decode a row into an existing [`Row`], reusing its per-slot
    /// allocations. On error the row's contents are unspecified.
    pub fn row_into(&mut self, row: &mut Row) -> Result<()> {
        let start = self.pos;
        let arity = self.u16()? as usize;
        let values = row.values_mut();
        values.truncate(arity);
        for slot in values.iter_mut() {
            self.value_into(slot)?;
        }
        for _ in values.len()..arity {
            values.push(self.value()?);
        }
        copymeter::add(self.pos - start);
        Ok(())
    }

    /// Read a length-prefixed UTF-8 string (u32 length). Validates in
    /// place and copies once.
    pub fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        let s = std::str::from_utf8(raw)
            .map_err(|e| StorageError::CorruptSnapshot(format!("invalid utf8 string: {e}")))?;
        Ok(s.to_owned())
    }
}

/// Append a length-prefixed UTF-8 string.
pub fn encode_string(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Decode a row from a standalone buffer, requiring full consumption.
pub fn decode_row(buf: &[u8]) -> Result<Row> {
    let mut r = Reader::new(buf);
    let row = r.row()?;
    if r.remaining() != 0 {
        return Err(StorageError::CorruptPage(format!(
            "{} trailing bytes after row",
            r.remaining()
        )));
    }
    Ok(row)
}

/// Decode a row from a standalone buffer into an existing [`Row`],
/// reusing its per-slot allocations. Requires full consumption. On
/// error the row's contents are unspecified.
pub fn decode_row_into(buf: &[u8], row: &mut Row) -> Result<()> {
    let mut r = Reader::new(buf);
    r.row_into(row)?;
    if r.remaining() != 0 {
        return Err(StorageError::CorruptPage(format!(
            "{} trailing bytes after row",
            r.remaining()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(row: Row) {
        let buf = row_bytes(&row);
        let back = decode_row(&buf).unwrap();
        assert_eq!(row, back);
    }

    #[test]
    fn round_trip_all_types() {
        round_trip(Row::new(vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(std::f64::consts::PI),
            Value::Float(-0.0),
            Value::Text("héllo wörld".into()),
            Value::Text(String::new()),
            Value::Bytes(vec![0, 1, 2, 255]),
            Value::Bytes(Vec::new()),
        ]));
    }

    #[test]
    fn round_trip_empty_row() {
        round_trip(Row::new(vec![]));
    }

    #[test]
    fn nan_bits_preserved() {
        let nan = f64::from_bits(0x7ff8_0000_0000_1234);
        let buf = row_bytes(&Row::new(vec![Value::Float(nan)]));
        let back = decode_row(&buf).unwrap();
        match back.get(0) {
            Some(Value::Float(x)) => assert_eq!(x.to_bits(), nan.to_bits()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn truncated_input_is_error_not_panic() {
        let buf = row_bytes(&Row::new(vec![Value::Text("abcdef".into())]));
        for cut in 0..buf.len() {
            let r = decode_row(&buf[..cut]);
            assert!(r.is_err(), "cut at {cut} should error");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut buf = row_bytes(&Row::new(vec![Value::Int(1)]));
        buf.push(0xAA);
        assert!(decode_row(&buf).is_err());
    }

    #[test]
    fn bad_tag_rejected() {
        let buf = vec![1, 0, 99]; // arity 1, tag 99
        assert!(decode_row(&buf).is_err());
    }

    #[test]
    fn bad_bool_rejected() {
        let buf = vec![1, 0, TAG_BOOL, 7];
        assert!(decode_row(&buf).is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = vec![1, 0, TAG_TEXT];
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(decode_row(&buf).is_err());
    }

    #[test]
    fn decode_into_matches_decode_and_reuses_slots() {
        let rows = [
            Row::new(vec![
                Value::Int(7),
                Value::Text("a longer title than the next".into()),
                Value::Bytes(vec![9; 64]),
                Value::Float(1.5),
            ]),
            Row::new(vec![
                Value::Int(8),
                Value::Text("short".into()),
                Value::Bytes(vec![1, 2]),
                Value::Null,
            ]),
            Row::new(vec![Value::Bool(true)]),
            Row::new(vec![]),
            Row::new(vec![
                Value::Null,
                Value::Text("back to wide again wide wide".into()),
                Value::Bytes(vec![3; 32]),
                Value::Bool(false),
                Value::Int(-1),
            ]),
        ];
        let mut reused = Row::new(Vec::new());
        for row in &rows {
            let buf = row_bytes(row);
            decode_row_into(&buf, &mut reused).unwrap();
            assert_eq!(&reused, row);
            assert_eq!(reused, decode_row(&buf).unwrap());
        }
        // Reused Text capacity survives a shrink/regrow cycle.
        let wide = row_bytes(&rows[0]);
        let narrow = row_bytes(&rows[1]);
        decode_row_into(&wide, &mut reused).unwrap();
        decode_row_into(&narrow, &mut reused).unwrap();
        assert_eq!(reused, rows[1]);
    }

    #[test]
    fn decode_into_rejects_what_decode_rejects() {
        let mut reused = Row::new(Vec::new());
        let buf = row_bytes(&Row::new(vec![Value::Text("abcdef".into())]));
        for cut in 0..buf.len() {
            assert!(decode_row_into(&buf[..cut], &mut reused).is_err());
        }
        let mut trailing = row_bytes(&Row::new(vec![Value::Int(1)]));
        trailing.push(0xAA);
        assert!(decode_row_into(&trailing, &mut reused).is_err());
        assert!(decode_row_into(&[1, 0, 99], &mut reused).is_err());
    }

    #[test]
    fn copymeter_counts_row_payloads() {
        let row = Row::new(vec![Value::Int(1), Value::Text("abc".into())]);
        let buf = row_bytes(&row);
        crate::copymeter::take();
        let mut reused = Row::new(Vec::new());
        decode_row_into(&buf, &mut reused).unwrap();
        assert_eq!(crate::copymeter::take(), buf.len() as u64);
        let _ = decode_row(&buf).unwrap();
        assert_eq!(crate::copymeter::take(), buf.len() as u64);
        let mut out = Vec::new();
        encode_row(&row, &mut out);
        assert_eq!(crate::copymeter::take(), buf.len() as u64);
    }

    #[test]
    fn string_helper_round_trips() {
        let mut out = Vec::new();
        encode_string("catalog", &mut out);
        let mut r = Reader::new(&out);
        assert_eq!(r.string().unwrap(), "catalog");
        assert_eq!(r.remaining(), 0);
    }
}
