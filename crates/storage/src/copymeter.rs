//! Thread-local accounting of payload bytes copied by the codecs.
//!
//! The zero-copy hot path is only honest if the remaining copies are
//! counted. Every site that memcpys a row image between buffers (heap
//! record → [`crate::row::Row`], row → wire frame, frame body → socket
//! buffer) reports the byte count here; benchmarks read the counter
//! around a measured section and report `bytes_copied_per_row`.
//!
//! The counter is a plain thread-local `Cell`, so metering costs one
//! add per *row* (not per value) and nothing synchronizes.

use std::cell::Cell;

thread_local! {
    static COPIED: Cell<u64> = const { Cell::new(0) };
}

/// Record `bytes` copied on this thread.
#[inline]
pub fn add(bytes: usize) {
    COPIED.with(|c| c.set(c.get().wrapping_add(bytes as u64)));
}

/// Current total for this thread.
pub fn read() -> u64 {
    COPIED.with(|c| c.get())
}

/// Reset this thread's counter to zero, returning the previous total.
pub fn take() -> u64 {
    COPIED.with(|c| c.replace(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets_per_thread() {
        take();
        add(10);
        add(5);
        assert_eq!(read(), 15);
        assert_eq!(take(), 15);
        assert_eq!(read(), 0);
        // Another thread's meter is independent.
        std::thread::spawn(|| {
            assert_eq!(read(), 0);
            add(3);
            assert_eq!(take(), 3);
        })
        .join()
        .unwrap();
        assert_eq!(read(), 0);
    }
}
