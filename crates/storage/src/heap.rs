//! Heap files: an append-friendly collection of slotted pages.
//!
//! A heap file owns a vector of [`Page`]s and hands out [`RowId`]s. Inserts
//! fill existing pages first via a simple free-space hint (the lowest page
//! known to have room), falling back to appending a fresh page.

use crate::error::{Result, StorageError};
use crate::page::{Page, MAX_RECORD, PAGE_SIZE};
use crate::row::RowId;

/// A growable collection of slotted pages.
pub struct HeapFile {
    pages: Vec<Page>,
    /// Lowest page index that might have free space; insertion scans from
    /// here instead of from zero to keep inserts amortized O(1).
    hint: usize,
    live: usize,
}

impl HeapFile {
    /// An empty heap file.
    pub fn new() -> HeapFile {
        HeapFile {
            pages: Vec::new(),
            hint: 0,
            live: 0,
        }
    }

    /// Number of pages currently allocated.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the heap holds no live records.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Approximate bytes of storage held (pages are fixed-size).
    pub fn allocated_bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// Insert an encoded record, returning its new RowId.
    pub fn insert(&mut self, record: &[u8]) -> Result<RowId> {
        if record.len() > MAX_RECORD {
            return Err(StorageError::RowTooLarge {
                size: record.len(),
                max: MAX_RECORD,
            });
        }
        // Try pages starting from the hint.
        for idx in self.hint..self.pages.len() {
            if let Some(slot) = self.pages[idx].insert(record) {
                self.live += 1;
                return Ok(RowId::new(idx as u32, slot));
            }
            // This page couldn't even fit this record; only advance the hint
            // past pages that look genuinely full for small records, so we
            // don't strand free space. A page with < 64 free bytes is
            // considered full for hint purposes.
            if idx == self.hint && self.pages[idx].total_free() < 64 {
                self.hint = idx + 1;
            }
        }
        let mut page = Page::new();
        let slot = page
            .insert(record)
            .expect("fresh page must fit a <= MAX_RECORD record");
        self.pages.push(page);
        self.live += 1;
        Ok(RowId::new((self.pages.len() - 1) as u32, slot))
    }

    /// Fetch the record for `rid`, if live.
    pub fn get(&self, rid: RowId) -> Option<&[u8]> {
        self.pages.get(rid.page() as usize)?.get(rid.slot())
    }

    /// Delete the record for `rid`. Returns true if it was live.
    pub fn delete(&mut self, rid: RowId) -> bool {
        let Some(page) = self.pages.get_mut(rid.page() as usize) else {
            return false;
        };
        let deleted = page.delete(rid.slot());
        if deleted {
            self.live -= 1;
            self.hint = self.hint.min(rid.page() as usize);
        }
        deleted
    }

    /// Update the record for `rid` in place within its page. Returns the
    /// RowId (possibly relocated to another page if the page is full).
    pub fn update(&mut self, rid: RowId, record: &[u8]) -> Result<RowId> {
        if record.len() > MAX_RECORD {
            return Err(StorageError::RowTooLarge {
                size: record.len(),
                max: MAX_RECORD,
            });
        }
        let page_idx = rid.page() as usize;
        let Some(page) = self.pages.get_mut(page_idx) else {
            return Err(StorageError::RowNotFound(rid.raw()));
        };
        if page.get(rid.slot()).is_none() {
            return Err(StorageError::RowNotFound(rid.raw()));
        }
        if page.update(rid.slot(), record) {
            return Ok(rid);
        }
        // Page-local update impossible: move the record to another page.
        page.delete(rid.slot());
        self.live -= 1;
        self.hint = self.hint.min(page_idx);
        self.insert(record)
    }

    /// Iterate `(RowId, record)` over all live records in RowId order.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &[u8])> {
        self.pages.iter().enumerate().flat_map(|(pidx, page)| {
            page.iter()
                .map(move |(slot, rec)| (RowId::new(pidx as u32, slot), rec))
        })
    }

    /// Same traversal as [`HeapFile::iter`], but as a nameable type so
    /// hot-path cursors can hold it without boxing.
    pub fn scan(&self) -> HeapScan<'_> {
        HeapScan {
            pages: &self.pages,
            pidx: 0,
            slot: 0,
        }
    }

    /// Access raw pages for snapshotting.
    pub fn pages(&self) -> &[Page] {
        &self.pages
    }

    /// Rebuild a heap from snapshot pages.
    pub fn from_pages(pages: Vec<Page>) -> HeapFile {
        let live = pages.iter().map(|p| p.live_count()).sum();
        HeapFile {
            pages,
            hint: 0,
            live,
        }
    }
}

impl Default for HeapFile {
    fn default() -> Self {
        HeapFile::new()
    }
}

/// A concrete, allocation-free live-record iterator over a heap file.
pub struct HeapScan<'a> {
    pages: &'a [Page],
    pidx: usize,
    slot: usize,
}

impl<'a> Iterator for HeapScan<'a> {
    type Item = (RowId, &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(page) = self.pages.get(self.pidx) {
            while self.slot < page.num_slots() {
                let slot = self.slot;
                self.slot += 1;
                if let Some(rec) = page.get(slot as u16) {
                    return Some((RowId::new(self.pidx as u32, slot as u16), rec));
                }
            }
            self.pidx += 1;
            self.slot = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_across_pages() {
        let mut h = HeapFile::new();
        let rec = vec![0xAB; 1000];
        let mut rids = Vec::new();
        for _ in 0..50 {
            rids.push(h.insert(&rec).unwrap());
        }
        assert!(h.page_count() > 1, "1000-byte records must spill pages");
        assert_eq!(h.len(), 50);
        for rid in &rids {
            assert_eq!(h.get(*rid), Some(&rec[..]));
        }
    }

    #[test]
    fn delete_and_space_reuse() {
        let mut h = HeapFile::new();
        let rec = vec![1u8; 2000];
        let mut rids = Vec::new();
        for _ in 0..20 {
            rids.push(h.insert(&rec).unwrap());
        }
        let pages_before = h.page_count();
        for rid in &rids {
            assert!(h.delete(*rid));
        }
        assert_eq!(h.len(), 0);
        // Re-inserting reuses the existing pages rather than growing.
        for _ in 0..20 {
            h.insert(&rec).unwrap();
        }
        assert_eq!(h.page_count(), pages_before);
    }

    #[test]
    fn get_missing_is_none() {
        let h = HeapFile::new();
        assert_eq!(h.get(RowId::new(0, 0)), None);
        assert_eq!(h.get(RowId::new(7, 3)), None);
    }

    #[test]
    fn update_in_page_keeps_rid() {
        let mut h = HeapFile::new();
        let rid = h.insert(b"short").unwrap();
        let rid2 = h.update(rid, b"a bit longer record").unwrap();
        assert_eq!(rid, rid2);
        assert_eq!(h.get(rid), Some(&b"a bit longer record"[..]));
    }

    #[test]
    fn update_relocates_when_page_full() {
        let mut h = HeapFile::new();
        let rid = h.insert(&[1u8; 100]).unwrap();
        // Fill page 0 completely.
        while h.page_count() == 1 {
            h.insert(&[2u8; 500]).unwrap();
        }
        let n_before = h.len();
        let big = vec![3u8; 7000];
        let rid2 = h.update(rid, &big).unwrap();
        assert_ne!(rid.page(), rid2.page());
        assert_eq!(h.get(rid2), Some(&big[..]));
        assert_eq!(h.get(rid), None, "old location tombstoned");
        assert_eq!(h.len(), n_before, "live count unchanged by relocation");
    }

    #[test]
    fn update_missing_errors() {
        let mut h = HeapFile::new();
        assert!(matches!(
            h.update(RowId::new(0, 0), b"x"),
            Err(StorageError::RowNotFound(_))
        ));
    }

    #[test]
    fn oversized_record_rejected() {
        let mut h = HeapFile::new();
        let r = h.insert(&vec![0u8; MAX_RECORD + 1]);
        assert!(matches!(r, Err(StorageError::RowTooLarge { .. })));
    }

    #[test]
    fn iter_in_rowid_order() {
        let mut h = HeapFile::new();
        let a = h.insert(b"a").unwrap();
        let b = h.insert(b"b").unwrap();
        let c = h.insert(b"c").unwrap();
        h.delete(b);
        let rids: Vec<RowId> = h.iter().map(|(rid, _)| rid).collect();
        assert_eq!(rids, vec![a, c]);
    }

    #[test]
    fn scan_matches_iter() {
        let mut h = HeapFile::new();
        let mut rids = Vec::new();
        for i in 0..200u16 {
            rids.push(h.insert(&vec![i as u8; 40 + (i as usize % 60)]).unwrap());
        }
        for rid in rids.iter().step_by(3) {
            h.delete(*rid);
        }
        let a: Vec<(RowId, Vec<u8>)> = h.iter().map(|(r, b)| (r, b.to_vec())).collect();
        let b: Vec<(RowId, Vec<u8>)> = h.scan().map(|(r, b)| (r, b.to_vec())).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_round_trip() {
        let mut h = HeapFile::new();
        let rid = h.insert(b"keep").unwrap();
        let raw: Vec<Vec<u8>> = h.pages().iter().map(|p| p.as_bytes().to_vec()).collect();
        let pages: Vec<Page> = raw.iter().map(|r| Page::from_bytes(r).unwrap()).collect();
        let h2 = HeapFile::from_pages(pages);
        assert_eq!(h2.len(), 1);
        assert_eq!(h2.get(rid), Some(&b"keep"[..]));
    }
}
