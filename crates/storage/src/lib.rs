//! # delayguard-storage
//!
//! An embedded relational storage engine: the substrate on which the
//! delay-based extraction defense of Jayapandian et al. (SDM/VLDB 2004) is
//! implemented and evaluated.
//!
//! The engine provides exactly what the paper's query model needs:
//!
//! * typed tuples ([`Value`], [`Row`], [`Schema`]) stored in slotted pages
//!   ([`page::Page`]) inside heap files ([`heap::HeapFile`]);
//! * B-tree secondary indexes ([`index::Index`]) so selection queries can be
//!   served as point lookups ("each query eventually results in exactly one
//!   tuple", §2.1);
//! * a concurrent [`Catalog`] of tables; and
//! * crash-safe binary snapshots ([`persist`]) so learned popularity state
//!   and data survive restarts.
//!
//! ## Quick example
//!
//! ```
//! use delayguard_storage::{Catalog, Column, DataType, Row, Schema, Value};
//!
//! let catalog = Catalog::new();
//! let schema = Schema::new(vec![
//!     Column::not_null("id", DataType::Int),
//!     Column::not_null("title", DataType::Text),
//! ]).unwrap();
//! let table = catalog.create_table("movies", schema).unwrap();
//! let mut t = table.write();
//! t.create_index("movies_pk", &["id"], true).unwrap();
//! let rid = t.insert(Row::new(vec![Value::Int(1), Value::from("Spider-Man")])).unwrap();
//! assert_eq!(t.get(rid).unwrap().get(1), Some(&Value::from("Spider-Man")));
//! ```

#![forbid(unsafe_code)]

pub mod catalog;
pub mod codec;
pub mod copymeter;
pub mod error;
pub mod heap;
pub mod index;
pub mod page;
pub mod persist;
pub mod row;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;
pub mod wal;

pub use catalog::{Catalog, TableRef};
pub use error::{Result, StorageError};
pub use index::{Index, IndexDef, IndexKey};
pub use row::{Row, RowId};
pub use schema::{Column, Schema};
pub use stats::TableStats;
pub use table::Table;
pub use value::{DataType, Value};
pub use wal::{Wal, WalRecord};
