//! Table schemas: named, typed columns with nullability.

use crate::error::{Result, StorageError};
use crate::row::Row;
use crate::value::DataType;

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (case-sensitive, unique within a schema).
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// Whether NULL values are rejected.
    pub not_null: bool,
}

impl Column {
    /// A nullable column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
            not_null: false,
        }
    }

    /// A NOT NULL column.
    pub fn not_null(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
            not_null: true,
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema, validating that column names are unique and non-empty.
    pub fn new(columns: Vec<Column>) -> Result<Schema> {
        for (i, c) in columns.iter().enumerate() {
            if c.name.is_empty() {
                return Err(StorageError::ColumnNotFound(String::new()));
            }
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(StorageError::TableExists(format!(
                    "duplicate column `{}`",
                    c.name
                )));
            }
        }
        Ok(Schema { columns })
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// All columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Index of the column named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| StorageError::ColumnNotFound(name.to_owned()))
    }

    /// The column named `name`.
    pub fn column(&self, name: &str) -> Result<&Column> {
        let idx = self.index_of(name)?;
        Ok(&self.columns[idx])
    }

    /// Column at position `idx`, if any.
    pub fn column_at(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Validate that `row` conforms to this schema: arity, types, NOT NULL.
    pub fn validate(&self, row: &Row) -> Result<()> {
        if row.arity() != self.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.arity(),
                actual: row.arity(),
            });
        }
        for (col, val) in self.columns.iter().zip(row.values()) {
            if val.is_null() {
                if col.not_null {
                    return Err(StorageError::NullViolation(col.name.clone()));
                }
                continue;
            }
            if !val.fits(col.dtype) {
                return Err(StorageError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.dtype.name(),
                    actual: val.type_name(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn demo_schema() -> Schema {
        Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::not_null("title", DataType::Text),
            Column::new("rating", DataType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn build_and_lookup() {
        let s = demo_schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("title").unwrap(), 1);
        assert_eq!(s.column("rating").unwrap().dtype, DataType::Float);
        assert!(s.index_of("nope").is_err());
        assert!(s.column_at(2).is_some());
        assert!(s.column_at(3).is_none());
    }

    #[test]
    fn duplicate_columns_rejected() {
        let r = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("a", DataType::Text),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn empty_name_rejected() {
        assert!(Schema::new(vec![Column::new("", DataType::Int)]).is_err());
    }

    #[test]
    fn validate_accepts_conforming_row() {
        let s = demo_schema();
        let row = Row::new(vec![Value::Int(1), Value::Text("Up".into()), Value::Null]);
        assert!(s.validate(&row).is_ok());
    }

    #[test]
    fn validate_rejects_arity() {
        let s = demo_schema();
        let row = Row::new(vec![Value::Int(1)]);
        assert!(matches!(
            s.validate(&row),
            Err(StorageError::ArityMismatch {
                expected: 3,
                actual: 1
            })
        ));
    }

    #[test]
    fn validate_rejects_type_mismatch() {
        let s = demo_schema();
        let row = Row::new(vec![
            Value::Text("one".into()),
            Value::Text("Up".into()),
            Value::Null,
        ]);
        assert!(matches!(
            s.validate(&row),
            Err(StorageError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn validate_rejects_null_violation() {
        let s = demo_schema();
        let row = Row::new(vec![Value::Null, Value::Text("Up".into()), Value::Null]);
        assert!(matches!(s.validate(&row), Err(StorageError::NullViolation(c)) if c == "id"));
    }
}
