//! Typed values and their total ordering.
//!
//! The engine supports a deliberately small set of scalar types that covers
//! the paper's workloads (directory records, movie records, web objects):
//! booleans, 64-bit integers, 64-bit floats, UTF-8 text, and raw bytes.
//!
//! [`Value`] implements a *total* order (`Ord`) so values can key B-tree
//! indexes. Floats are ordered via [`f64::total_cmp`]; values of different
//! types are ordered by a fixed type rank (`Null < Bool < Int < Float <
//! Text < Bytes`), except that `Int` and `Float` compare numerically so
//! mixed-type predicates behave intuitively.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Text,
    Bytes,
}

impl DataType {
    /// SQL-ish name of this type, used in error messages and `CREATE TABLE`.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bytes => "BYTES",
        }
    }

    /// Parse a type name as it appears in `CREATE TABLE` statements.
    pub fn parse(name: &str) -> Option<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "BOOL" | "BOOLEAN" => Some(DataType::Bool),
            "INT" | "INTEGER" | "BIGINT" => Some(DataType::Int),
            "FLOAT" | "DOUBLE" | "REAL" => Some(DataType::Float),
            "TEXT" | "VARCHAR" | "STRING" => Some(DataType::Text),
            "BYTES" | "BLOB" | "BINARY" => Some(DataType::Bytes),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single scalar value stored in a row.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Text(String),
    Bytes(Vec<u8>),
}

impl Value {
    /// The runtime type of this value, or `None` for `Null` (which is a
    /// member of every type).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bytes(_) => Some(DataType::Bytes),
        }
    }

    /// Name of this value's type for error messages.
    pub fn type_name(&self) -> &'static str {
        match self.data_type() {
            Some(dt) => dt.name(),
            None => "NULL",
        }
    }

    /// Whether this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this value can be stored in a column of type `dt`.
    /// NULL is compatible with every type (NOT NULL is enforced separately).
    pub fn fits(&self, dt: DataType) -> bool {
        match self.data_type() {
            None => true,
            Some(t) => t == dt,
        }
    }

    /// Clone into an existing slot, reusing the slot's heap capacity
    /// when both sides are the same variable-width variant.
    pub fn clone_into_slot(&self, slot: &mut Value) {
        match (self, slot) {
            (Value::Text(s), Value::Text(dst)) => {
                dst.clear();
                dst.push_str(s);
            }
            (Value::Bytes(b), Value::Bytes(dst)) => {
                dst.clear();
                dst.extend_from_slice(b);
            }
            (v, dst) => *dst = v.clone(),
        }
    }

    /// Interpret as an integer when possible (for LIMIT, key fields, ...).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Interpret as a float, widening integers.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Interpret as text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Interpret as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Rank used to order values of different types.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2, // numerics interleave
            Value::Text(_) => 3,
            Value::Bytes(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            // Numeric cross-type comparison: compare as floats, falling back
            // to total_cmp semantics. i64 -> f64 may lose precision beyond
            // 2^53, which is acceptable for this engine's workloads.
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Eq treats Int(1) == Float(1.0), so all numerics must hash
            // identically when they compare equal: hash the f64 bit pattern.
            // (Distinct huge i64s may collide after widening; collisions are
            // allowed, only eq => same-hash is required.)
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(x) => {
                2u8.hash(state);
                x.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Bytes(b) => {
                4u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Bytes(b) => {
                f.write_str("x'")?;
                for byte in b {
                    write!(f, "{byte:02x}")?;
                }
                f.write_str("'")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names_round_trip() {
        for dt in [
            DataType::Bool,
            DataType::Int,
            DataType::Float,
            DataType::Text,
            DataType::Bytes,
        ] {
            assert_eq!(DataType::parse(dt.name()), Some(dt));
        }
        assert_eq!(DataType::parse("varchar"), Some(DataType::Text));
        assert_eq!(DataType::parse("nope"), None);
    }

    #[test]
    fn ordering_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Text("a".into()) < Value::Text("b".into()));
        assert!(Value::Bool(false) < Value::Bool(true));
        assert!(Value::Bytes(vec![1]) < Value::Bytes(vec![1, 0]));
    }

    #[test]
    fn numeric_cross_type_ordering() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert!(Value::Int(3) < Value::Float(3.5));
        assert!(Value::Float(2.5) < Value::Int(3));
    }

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::Text(String::new()));
    }

    #[test]
    fn nan_has_total_order() {
        let nan = Value::Float(f64::NAN);
        let inf = Value::Float(f64::INFINITY);
        // total_cmp puts NaN above +inf.
        assert!(nan > inf);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
    }

    #[test]
    fn fits_and_null() {
        assert!(Value::Null.fits(DataType::Int));
        assert!(Value::Int(1).fits(DataType::Int));
        assert!(!Value::Int(1).fits(DataType::Text));
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-5).to_string(), "-5");
        assert_eq!(Value::Text("hi".into()).to_string(), "'hi'");
        assert_eq!(Value::Bytes(vec![0xde, 0xad]).to_string(), "x'dead'");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::Text("x".into()).as_text(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Text("x".into()).as_int(), None);
    }

    #[test]
    fn hash_consistent_with_eq_for_numerics() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        // Int(1) == Float(1.0) must imply equal hashes.
        assert_eq!(Value::Int(1), Value::Float(1.0));
        assert_eq!(h(&Value::Int(1)), h(&Value::Float(1.0)));
        assert_eq!(h(&Value::Int(1)), h(&Value::Int(1)));
    }
}
