//! Lightweight operation counters per table.

/// Counters of operations applied to a table since creation (or snapshot
/// load). Used by the overhead experiments and by the update-rate delay
/// policy to observe update traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Rows inserted.
    pub inserts: u64,
    /// Rows updated in place (including relocations).
    pub updates: u64,
    /// Rows deleted.
    pub deletes: u64,
    /// Point reads served (get by RowId).
    pub reads: u64,
}

impl TableStats {
    /// Total write operations.
    pub fn writes(&self) -> u64 {
        self.inserts + self.updates + self.deletes
    }

    /// Total operations of any kind.
    pub fn total(&self) -> u64 {
        self.writes() + self.reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = TableStats {
            inserts: 2,
            updates: 3,
            deletes: 1,
            reads: 10,
        };
        assert_eq!(s.writes(), 6);
        assert_eq!(s.total(), 16);
        assert_eq!(TableStats::default().total(), 0);
    }
}
