//! Secondary indexes: ordered B-tree maps from key values to RowIds.
//!
//! An index covers one or more columns of a table. Keys are composite
//! [`Value`] vectors ordered by the total order defined on [`Value`].
//! Non-unique indexes keep a sorted `Vec<RowId>` per key (postings list);
//! unique indexes reject duplicate keys at insert time.

use crate::error::{Result, StorageError};
use crate::row::{Row, RowId};
use crate::value::Value;
use std::collections::BTreeMap;
use std::ops::Bound;

/// A composite index key.
pub type IndexKey = Vec<Value>;

/// Definition of an index (persisted with the table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    /// Index name, unique within its table.
    pub name: String,
    /// Column positions (into the table schema) forming the key.
    pub columns: Vec<usize>,
    /// Whether duplicate keys are rejected.
    pub unique: bool,
}

/// An in-memory ordered index.
pub struct Index {
    def: IndexDef,
    map: BTreeMap<IndexKey, Vec<RowId>>,
    entries: usize,
}

impl Index {
    /// An empty index with the given definition.
    pub fn new(def: IndexDef) -> Index {
        Index {
            def,
            map: BTreeMap::new(),
            entries: 0,
        }
    }

    /// The index definition.
    pub fn def(&self) -> &IndexDef {
        &self.def
    }

    /// Number of indexed (key, rid) entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Extract this index's key from a full row.
    pub fn key_of(&self, row: &Row) -> IndexKey {
        self.def
            .columns
            .iter()
            .map(|&i| row.get(i).cloned().unwrap_or(Value::Null))
            .collect()
    }

    /// Insert an entry. For unique indexes, fails if the key already maps to
    /// a different RowId.
    pub fn insert(&mut self, key: IndexKey, rid: RowId) -> Result<()> {
        let postings = self.map.entry(key).or_default();
        if self.def.unique && !postings.is_empty() && postings[0] != rid {
            return Err(StorageError::UniqueViolation {
                index: self.def.name.clone(),
            });
        }
        match postings.binary_search(&rid) {
            Ok(_) => Ok(()), // already present; idempotent
            Err(pos) => {
                postings.insert(pos, rid);
                self.entries += 1;
                Ok(())
            }
        }
    }

    /// Remove an entry. Returns true if it was present.
    pub fn remove(&mut self, key: &IndexKey, rid: RowId) -> bool {
        let Some(postings) = self.map.get_mut(key) else {
            return false;
        };
        let Ok(pos) = postings.binary_search(&rid) else {
            return false;
        };
        postings.remove(pos);
        self.entries -= 1;
        if postings.is_empty() {
            self.map.remove(key);
        }
        true
    }

    /// RowIds exactly matching `key`.
    pub fn lookup(&self, key: &IndexKey) -> &[RowId] {
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &IndexKey) -> bool {
        self.map.contains_key(key)
    }

    /// RowIds whose keys fall within `(lo, hi)` bounds, in key order.
    pub fn range(
        &self,
        lo: Bound<&IndexKey>,
        hi: Bound<&IndexKey>,
    ) -> impl Iterator<Item = RowId> + '_ {
        self.map
            .range::<IndexKey, _>((lo, hi))
            .flat_map(|(_, v)| v.iter().copied())
    }

    /// Iterate all `(key, rid)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&IndexKey, RowId)> {
        self.map
            .iter()
            .flat_map(|(k, v)| v.iter().map(move |&rid| (k, rid)))
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(unique: bool) -> Index {
        Index::new(IndexDef {
            name: "by_id".into(),
            columns: vec![0],
            unique,
        })
    }

    fn k(v: i64) -> IndexKey {
        vec![Value::Int(v)]
    }

    #[test]
    fn insert_lookup_remove() {
        let mut i = idx(false);
        i.insert(k(1), RowId::new(0, 0)).unwrap();
        i.insert(k(1), RowId::new(0, 1)).unwrap();
        i.insert(k(2), RowId::new(0, 2)).unwrap();
        assert_eq!(i.len(), 3);
        assert_eq!(i.lookup(&k(1)), &[RowId::new(0, 0), RowId::new(0, 1)]);
        assert!(i.remove(&k(1), RowId::new(0, 0)));
        assert!(!i.remove(&k(1), RowId::new(0, 0)));
        assert_eq!(i.lookup(&k(1)), &[RowId::new(0, 1)]);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn unique_rejects_duplicates() {
        let mut i = idx(true);
        i.insert(k(1), RowId::new(0, 0)).unwrap();
        let r = i.insert(k(1), RowId::new(0, 1));
        assert!(matches!(r, Err(StorageError::UniqueViolation { .. })));
        // Same rid re-insert is idempotent, not a violation.
        i.insert(k(1), RowId::new(0, 0)).unwrap();
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn empty_key_postings_are_pruned() {
        let mut i = idx(false);
        i.insert(k(5), RowId::new(1, 1)).unwrap();
        i.remove(&k(5), RowId::new(1, 1));
        assert!(!i.contains(&k(5)));
        assert_eq!(i.distinct_keys(), 0);
        assert!(i.is_empty());
    }

    #[test]
    fn range_scans_in_order() {
        let mut i = idx(false);
        for v in [5i64, 1, 3, 2, 4] {
            i.insert(k(v), RowId::new(0, v as u16)).unwrap();
        }
        let lo = k(2);
        let hi = k(4);
        let got: Vec<u16> = i
            .range(Bound::Included(&lo), Bound::Included(&hi))
            .map(|r| r.slot())
            .collect();
        assert_eq!(got, vec![2, 3, 4]);
        let got: Vec<u16> = i
            .range(Bound::Excluded(&lo), Bound::Unbounded)
            .map(|r| r.slot())
            .collect();
        assert_eq!(got, vec![3, 4, 5]);
    }

    #[test]
    fn composite_keys() {
        let mut i = Index::new(IndexDef {
            name: "by_ab".into(),
            columns: vec![0, 1],
            unique: false,
        });
        let row = Row::new(vec![Value::Int(1), Value::Text("x".into()), Value::Null]);
        let key = i.key_of(&row);
        assert_eq!(key, vec![Value::Int(1), Value::Text("x".into())]);
        i.insert(key.clone(), RowId::new(0, 0)).unwrap();
        assert_eq!(i.lookup(&key), &[RowId::new(0, 0)]);
    }

    #[test]
    fn key_of_out_of_range_column_is_null() {
        let i = Index::new(IndexDef {
            name: "weird".into(),
            columns: vec![9],
            unique: false,
        });
        let row = Row::new(vec![Value::Int(1)]);
        assert_eq!(i.key_of(&row), vec![Value::Null]);
    }
}
