//! Synthetic Calgary-style web trace (paper §4.1).
//!
//! The paper replays the University of Calgary web-server trace of Arlitt &
//! Williamson: **12,179 objects**, **725,091 requests**, a *static*
//! popularity distribution that "loosely follows an exponential popularity
//! distribution with α ≈ 1.5". The original trace is not redistributable,
//! so this module synthesizes a trace with the published parameters: a
//! Zipf(α) popularity over a shuffled object universe (so object ids carry
//! no rank information), with uniform request spacing.
//!
//! The defense only observes (a) which object each request touches and
//! (b) arrival order — both of which this generator reproduces — so the
//! learned-count → rank → delay pipeline is exercised identically to the
//! real trace.

use crate::rng::Rng;
use crate::trace::{Request, Trace};
use crate::zipf::Zipf;

/// Parameters of a Calgary-like synthetic trace.
#[derive(Debug, Clone, Copy)]
pub struct CalgaryConfig {
    /// Number of distinct objects (paper: 12,179).
    pub objects: u64,
    /// Number of requests to generate (paper: 725,091).
    pub requests: u64,
    /// Zipf parameter of the static popularity distribution (paper: ≈1.5).
    pub alpha: f64,
    /// Seconds between consecutive requests. The paper's replay spans a
    /// year of requests; only relative order matters for count learning.
    pub inter_arrival_secs: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CalgaryConfig {
    fn default() -> Self {
        CalgaryConfig {
            objects: 12_179,
            requests: 725_091,
            alpha: 1.5,
            // One year / 725k requests ≈ 43.5 s between requests.
            inter_arrival_secs: 43.5,
            seed: 0xCA16A47,
        }
    }
}

impl CalgaryConfig {
    /// The paper's trace dimensions, exactly.
    pub fn paper() -> CalgaryConfig {
        CalgaryConfig::default()
    }

    /// Scale the object universe (for Table 1's 100k/500k/1M synthetic
    /// databases) while keeping the request-to-object ratio of the
    /// original trace.
    pub fn scaled_to(objects: u64) -> CalgaryConfig {
        let base = CalgaryConfig::default();
        let ratio = base.requests as f64 / base.objects as f64;
        CalgaryConfig {
            objects,
            requests: (objects as f64 * ratio).round() as u64,
            ..base
        }
    }

    /// Generate the trace, materialized in memory.
    pub fn generate(&self) -> Trace {
        let keys: Vec<u64> = self.key_stream().collect();
        let requests = keys
            .into_iter()
            .enumerate()
            .map(|(i, key)| Request {
                time: i as f64 * self.inter_arrival_secs,
                key,
            })
            .collect();
        Trace::new(requests, self.objects)
    }

    /// Generate the request *keys* lazily, without materializing the trace
    /// — the Table 1 sweep replays up to ~60M requests, which would not
    /// fit in memory as a `Vec<Request>`.
    pub fn key_stream(&self) -> CalgaryKeys {
        assert!(self.objects > 0 && self.requests > 0);
        let mut rng = Rng::new(self.seed);
        let zipf = Zipf::new(self.objects, self.alpha);
        // Shuffle rank -> object id so ids don't leak popularity.
        let rank_to_key = rng.permutation(self.objects as usize);
        CalgaryKeys {
            rng,
            zipf,
            rank_to_key,
            remaining: self.requests,
        }
    }
}

/// Lazy iterator over the keys of a synthetic Calgary trace.
pub struct CalgaryKeys {
    rng: Rng,
    zipf: Zipf,
    rank_to_key: Vec<u64>,
    remaining: u64,
}

impl Iterator for CalgaryKeys {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let rank = self.zipf.sample(&mut self.rng);
        Some(self.rank_to_key[(rank - 1) as usize])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CalgaryConfig {
        CalgaryConfig {
            objects: 500,
            requests: 50_000,
            alpha: 1.5,
            inter_arrival_secs: 1.0,
            seed: 7,
        }
    }

    #[test]
    fn paper_dimensions() {
        let c = CalgaryConfig::paper();
        assert_eq!(c.objects, 12_179);
        assert_eq!(c.requests, 725_091);
        assert!((c.alpha - 1.5).abs() < f64::EPSILON);
    }

    #[test]
    fn generates_requested_size() {
        let t = small().generate();
        assert_eq!(t.len(), 50_000);
        assert_eq!(t.objects, 500);
    }

    #[test]
    fn trace_is_skewed_like_zipf() {
        let t = small().generate();
        let table = t.rank_table();
        // Top object should dwarf the tail; with alpha=1.5 and 500 objects
        // the most popular gets ~38% of requests.
        let top = table[0].1 as f64 / t.len() as f64;
        assert!(top > 0.25, "top frequency {top}");
        // Frequencies decline roughly like r^-1.5 — check an order of
        // magnitude over one decade of rank.
        let f1 = table[0].1 as f64;
        let f10 = table[9].1 as f64;
        let ratio = f1 / f10;
        assert!(
            (10f64.powf(1.2)..10f64.powf(1.8)).contains(&ratio),
            "rank-1/rank-10 ratio {ratio}"
        );
    }

    #[test]
    fn object_ids_do_not_leak_rank() {
        let t = small().generate();
        let table = t.rank_table();
        // If ids leaked rank, the most popular key would be 0.
        let top_keys: Vec<u64> = table.iter().take(5).map(|e| e.0).collect();
        assert_ne!(top_keys, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn deterministic() {
        let a = small().generate();
        let b = small().generate();
        assert_eq!(a.requests[..100], b.requests[..100]);
    }

    #[test]
    fn scaled_config_keeps_ratio() {
        let c = CalgaryConfig::scaled_to(100_000);
        assert_eq!(c.objects, 100_000);
        let base_ratio = 725_091.0 / 12_179.0;
        let ratio = c.requests as f64 / c.objects as f64;
        assert!((ratio - base_ratio).abs() < 0.1);
    }

    #[test]
    fn times_monotone() {
        let t = small().generate();
        assert!(t.requests.windows(2).all(|w| w[0].time < w[1].time));
    }
}
