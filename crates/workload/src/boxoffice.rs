//! Synthetic 2002 box-office season (paper §4.2).
//!
//! The paper uses Variety's weekly box-office sales for the **634 films**
//! released in 2002 as a popularity signal with *rapidly shifting* skew:
//! "new movies are released all the time, become immensely popular for a
//! while, and then rapidly fade away". Requests are generated "one per
//! $100,000 in weekly box office sales", decay factors are applied "at
//! weekly boundaries".
//!
//! The sales table itself is not redistributable, so this module
//! synthesizes a season with the same structure: staggered release weeks,
//! Zipf-distributed opening strength, and geometric week-over-week decay.
//! Each week's cross-section is sharply skewed (Fig. 3) while annual
//! totals are flatter (Fig. 2) — the property the experiment depends on.

use crate::rng::Rng;
use crate::trace::{Request, Trace};

/// Seconds in a week (for trace timestamps).
pub const WEEK_SECS: f64 = 7.0 * 24.0 * 3600.0;

/// Parameters of the synthetic season.
#[derive(Debug, Clone, Copy)]
pub struct BoxOfficeConfig {
    /// Number of films released during the season (paper: 634).
    pub films: u64,
    /// Number of weeks in the season (52).
    pub weeks: u32,
    /// Zipf-ish exponent of opening-week strength across films.
    pub opening_alpha: f64,
    /// Week-over-week sales retention (0.65 ⇒ a film keeps 65% of the
    /// previous week's sales).
    pub weekly_retention: f64,
    /// Opening-week sales of the strongest film, in dollars.
    pub top_opening: f64,
    /// Dollars of weekly sales per generated request (paper: $100,000).
    pub dollars_per_request: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BoxOfficeConfig {
    fn default() -> Self {
        BoxOfficeConfig {
            films: 634,
            weeks: 52,
            // Fig. 2 of the paper shows annual sales falling only ~2.7x
            // across the top 10 (404M -> ~150M): a shallow power law.
            opening_alpha: 0.45,
            weekly_retention: 0.65,
            // Top 2002 film grossed ~$404M over the year; with 65%
            // retention the opening week is about 35% of the total.
            top_opening: 140.0e6,
            dollars_per_request: 100_000.0,
            seed: 0xB0F1CE,
        }
    }
}

/// A generated season: weekly sales per film.
#[derive(Debug, Clone)]
pub struct BoxOffice {
    config: BoxOfficeConfig,
    /// `sales[week][film] = dollars` (0 before release).
    sales: Vec<Vec<f64>>,
}

impl BoxOfficeConfig {
    /// Generate the season.
    pub fn generate(&self) -> BoxOffice {
        assert!(self.films > 0 && self.weeks > 0);
        assert!((0.0..1.0).contains(&self.weekly_retention));
        let mut rng = Rng::new(self.seed);
        let films = self.films as usize;
        // Strength rank is shuffled over films; release weeks staggered
        // uniformly so every week sees fresh openings.
        let strength_rank = rng.permutation(films);
        let mut release_week = vec![0u32; films];
        for w in release_week.iter_mut() {
            *w = rng.below(self.weeks as u64) as u32;
        }
        let mut sales = vec![vec![0.0; films]; self.weeks as usize];
        for film in 0..films {
            let rank = strength_rank[film] + 1; // 1-based strength rank
            let opening = self.top_opening / (rank as f64).powf(self.opening_alpha);
            let mut weekly = opening;
            let mut w = release_week[film];
            while w < self.weeks && weekly >= self.dollars_per_request {
                sales[w as usize][film] = weekly;
                weekly *= self.weekly_retention;
                w += 1;
            }
        }
        BoxOffice {
            config: *self,
            sales,
        }
    }
}

impl BoxOffice {
    /// The generating configuration.
    pub fn config(&self) -> &BoxOfficeConfig {
        &self.config
    }

    /// Weekly sales row: `sales(week)[film] = dollars`.
    pub fn week(&self, week: u32) -> &[f64] {
        &self.sales[week as usize]
    }

    /// Number of weeks.
    pub fn weeks(&self) -> u32 {
        self.config.weeks
    }

    /// Number of films.
    pub fn films(&self) -> u64 {
        self.config.films
    }

    /// Total annual sales per film.
    pub fn annual_totals(&self) -> Vec<f64> {
        let films = self.config.films as usize;
        let mut totals = vec![0.0; films];
        for week in &self.sales {
            for (f, s) in week.iter().enumerate() {
                totals[f] += s;
            }
        }
        totals
    }

    /// Top-`k` films by annual sales: `(film, dollars)` descending (Fig. 2).
    pub fn top_annual(&self, k: usize) -> Vec<(u64, f64)> {
        let mut v: Vec<(u64, f64)> = self
            .annual_totals()
            .into_iter()
            .enumerate()
            .map(|(f, s)| (f as u64, s))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Top-`k` films in one week: `(film, dollars)` descending (Fig. 3).
    pub fn top_week(&self, week: u32, k: usize) -> Vec<(u64, f64)> {
        let mut v: Vec<(u64, f64)> = self
            .week(week)
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s > 0.0)
            .map(|(f, &s)| (f as u64, s))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Generate the request trace: one request per `dollars_per_request` of
    /// weekly sales, interleaved within each week in a deterministic
    /// shuffled order (so one film's requests don't arrive as a block).
    pub fn trace(&self) -> Trace {
        let mut rng = Rng::new(self.config.seed ^ 0x7ACE);
        let mut requests = Vec::new();
        for week in 0..self.config.weeks {
            let mut weekly: Vec<u64> = Vec::new();
            for (film, &s) in self.week(week).iter().enumerate() {
                let n = (s / self.config.dollars_per_request) as u64;
                weekly.extend(std::iter::repeat_n(film as u64, n as usize));
            }
            rng.shuffle(&mut weekly);
            let n = weekly.len().max(1) as f64;
            for (i, film) in weekly.into_iter().enumerate() {
                let time = week as f64 * WEEK_SECS + (i as f64 / n) * WEEK_SECS;
                requests.push(Request { time, key: film });
            }
        }
        Trace::new(requests, self.config.films)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn season() -> BoxOffice {
        BoxOfficeConfig::default().generate()
    }

    #[test]
    fn dimensions() {
        let s = season();
        assert_eq!(s.films(), 634);
        assert_eq!(s.weeks(), 52);
    }

    #[test]
    fn weekly_skew_sharper_than_annual() {
        // Paper: "Each week considered separately exhibits a more sharply
        // skewed distribution" (Fig. 3 vs Fig. 2). Metric: the ratio of
        // rank-1 to rank-10 sales, averaged over mid-season weeks, must
        // exceed the same ratio computed on annual totals.
        let s = season();
        let annual = s.top_annual(10);
        let annual_ratio = annual[0].1 / annual[9].1;
        let mut weekly_ratios = Vec::new();
        for week in 10..40 {
            let top = s.top_week(week, 10);
            if top.len() == 10 {
                weekly_ratios.push(top[0].1 / top[9].1);
            }
        }
        assert!(!weekly_ratios.is_empty());
        let mean_weekly = weekly_ratios.iter().sum::<f64>() / weekly_ratios.len() as f64;
        assert!(
            mean_weekly > annual_ratio,
            "weekly top1/top10 {mean_weekly:.2} should exceed annual {annual_ratio:.2}"
        );
    }

    #[test]
    fn sales_decay_after_release() {
        let s = season();
        // Find a film released early with strong opening.
        let top = s.top_annual(1)[0].0 as usize;
        let mut sales_curve: Vec<f64> = (0..s.weeks())
            .map(|w| s.week(w)[top])
            .filter(|&x| x > 0.0)
            .collect();
        assert!(sales_curve.len() >= 2, "top film should run several weeks");
        let first = sales_curve.remove(0);
        assert!(sales_curve.iter().all(|&x| x < first));
        // Geometric decay: each week ~retention of previous.
        assert!(
            (sales_curve[0] / first - 0.65).abs() < 1e-9,
            "retention should be exact in the generator"
        );
    }

    #[test]
    fn trace_matches_sales_volume() {
        let s = season();
        let t = s.trace();
        let expected: u64 = (0..s.weeks())
            .map(|w| {
                s.week(w)
                    .iter()
                    .map(|&x| (x / 100_000.0) as u64)
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(t.len() as u64, expected);
        assert!(t.len() > 10_000, "season should generate real volume");
    }

    #[test]
    fn trace_time_ordered_and_weekly() {
        let s = season();
        let t = s.trace();
        assert!(t.requests.windows(2).all(|w| w[0].time <= w[1].time));
        // First request of week 1 comes after all of week 0.
        let w0_max = t.requests.iter().filter(|r| r.time < WEEK_SECS).count();
        assert!(w0_max > 0);
    }

    #[test]
    fn deterministic() {
        let a = season().trace();
        let b = season().trace();
        assert_eq!(a.requests[..50], b.requests[..50]);
    }

    #[test]
    fn top_week_ignores_unreleased() {
        let s = season();
        for (_, dollars) in s.top_week(0, 10) {
            assert!(dollars > 0.0);
        }
    }
}
