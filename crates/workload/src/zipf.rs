//! Zipf (power-law) distributions: the paper's workload model (§2.1).
//!
//! In a Zipf distribution with parameter `α`, the `i`-th most popular of
//! `N` objects is requested with probability proportional to `i^-α`.
//! Sampling uses a precomputed CDF with binary search (`O(log N)` per
//! sample, exact); the CDF build is `O(N)` and done once per experiment.

use crate::rng::Rng;

/// Generalized harmonic number `H(n, s) = Σ_{i=1..n} i^-s`.
pub fn generalized_harmonic(n: u64, s: f64) -> f64 {
    let mut sum = 0.0;
    // Sum smallest terms first to reduce floating-point error.
    for i in (1..=n).rev() {
        sum += (i as f64).powf(-s);
    }
    sum
}

/// Sum of `i^s` for `i = 1..=n` (the adversary delay sums of Eq. 2/6 use
/// positive exponents).
pub fn power_sum(n: u64, s: f64) -> f64 {
    let mut sum = 0.0;
    for i in 1..=n {
        sum += (i as f64).powf(s);
    }
    sum
}

/// A Zipf distribution over ranks `1..=n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    alpha: f64,
    /// cdf[i] = P(rank <= i+1); cdf[n-1] == 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the distribution.
    ///
    /// # Panics
    /// If `n == 0` or `alpha` is negative / non-finite.
    pub fn new(n: u64, alpha: f64) -> Zipf {
        assert!(n > 0, "need at least one object");
        assert!(alpha.is_finite() && alpha >= 0.0, "alpha must be >= 0");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += (i as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating point leaving the last entry below 1.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { n, alpha, cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The Zipf parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Probability of rank `i` (1-based).
    pub fn probability(&self, rank: u64) -> f64 {
        assert!((1..=self.n).contains(&rank));
        let i = (rank - 1) as usize;
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Sample a rank in `1..=n` (1 = most popular).
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.next_f64();
        // partition_point returns the count of entries < u, i.e. the index
        // of the first cdf entry >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx as u64 + 1).min(self.n)
    }

    /// The rank of the median *request* (not the median object): the
    /// smallest `i` with `CDF(i) >= 0.5`. This is `i_med` in paper Eq. 3.
    pub fn median_rank(&self) -> u64 {
        (self.cdf.partition_point(|&c| c < 0.5) as u64 + 1).min(self.n)
    }

    /// Expected relative frequency of the most popular item (`f_max`).
    pub fn fmax(&self) -> f64 {
        self.probability(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_sum_to_one() {
        for alpha in [0.0, 0.5, 1.0, 1.5, 2.5] {
            let z = Zipf::new(1000, alpha);
            let total: f64 = (1..=1000).map(|i| z.probability(i)).sum();
            assert!((total - 1.0).abs() < 1e-9, "alpha {alpha}: {total}");
        }
    }

    #[test]
    fn uniform_when_alpha_zero() {
        let z = Zipf::new(100, 0.0);
        for i in 1..=100 {
            assert!((z.probability(i) - 0.01).abs() < 1e-12);
        }
        assert_eq!(z.median_rank(), 50);
    }

    #[test]
    fn skew_orders_probabilities() {
        let z = Zipf::new(100, 1.2);
        for i in 1..100 {
            assert!(z.probability(i) > z.probability(i + 1));
        }
        assert!(z.fmax() > 0.1);
    }

    #[test]
    fn sample_frequencies_match_probabilities() {
        let z = Zipf::new(50, 1.0);
        let mut rng = Rng::new(99);
        let trials = 200_000;
        let mut counts = vec![0u64; 51];
        for _ in 0..trials {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for rank in [1u64, 2, 5, 10] {
            let observed = counts[rank as usize] as f64 / trials as f64;
            let expected = z.probability(rank);
            assert!(
                (observed - expected).abs() / expected < 0.05,
                "rank {rank}: obs {observed} vs exp {expected}"
            );
        }
    }

    #[test]
    fn median_rank_tracks_theory() {
        // For alpha > 1 the median request rank is O(log N): tiny.
        let z = Zipf::new(100_000, 1.5);
        assert!(z.median_rank() < 20, "got {}", z.median_rank());
        // For alpha < 1 it is Θ(N): a constant fraction of N.
        let z = Zipf::new(100_000, 0.5);
        assert!(z.median_rank() > 10_000, "got {}", z.median_rank());
    }

    #[test]
    fn harmonic_sums() {
        assert!((generalized_harmonic(1, 1.0) - 1.0).abs() < 1e-12);
        assert!((generalized_harmonic(3, 1.0) - (1.0 + 0.5 + 1.0 / 3.0)).abs() < 1e-12);
        // H(n, 2) converges to pi^2/6.
        let h = generalized_harmonic(1_000_000, 2.0);
        assert!((h - std::f64::consts::PI.powi(2) / 6.0).abs() < 1e-5);
    }

    #[test]
    fn power_sums() {
        assert_eq!(power_sum(3, 1.0), 6.0);
        assert_eq!(power_sum(3, 2.0), 14.0);
        assert_eq!(power_sum(1, 5.0), 1.0);
    }

    #[test]
    fn sampling_is_deterministic() {
        let z = Zipf::new(1000, 1.5);
        let mut a = Rng::new(5);
        let mut b = Rng::new(5);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    #[should_panic]
    fn zero_objects_rejected() {
        Zipf::new(0, 1.0);
    }
}
