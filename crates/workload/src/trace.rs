//! Access traces: timestamped request streams over object keys.

/// One request in a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Virtual time of the request (seconds).
    pub time: f64,
    /// Object key requested.
    pub key: u64,
}

/// A request stream plus the object universe it draws from.
#[derive(Debug, Clone)]
pub struct Trace {
    /// All requests in time order.
    pub requests: Vec<Request>,
    /// Number of distinct objects in the universe (keys are `0..objects`).
    pub objects: u64,
}

impl Trace {
    /// Build a trace, asserting time-ordering in debug builds.
    pub fn new(requests: Vec<Request>, objects: u64) -> Trace {
        debug_assert!(
            requests.windows(2).all(|w| w[0].time <= w[1].time),
            "requests must be time-ordered"
        );
        Trace { requests, objects }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Count of distinct keys actually requested.
    pub fn distinct_keys(&self) -> usize {
        let mut seen = vec![false; self.objects as usize];
        let mut n = 0;
        for r in &self.requests {
            let k = r.key as usize;
            if !seen[k] {
                seen[k] = true;
                n += 1;
            }
        }
        n
    }

    /// Per-key request counts (index = key).
    pub fn counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.objects as usize];
        for r in &self.requests {
            counts[r.key as usize] += 1;
        }
        counts
    }

    /// Empirical rank/frequency table sorted descending: `(key, count)`.
    pub fn rank_table(&self) -> Vec<(u64, u64)> {
        let counts = self.counts();
        let mut table: Vec<(u64, u64)> = counts
            .into_iter()
            .enumerate()
            .filter(|&(_, c)| c > 0)
            .map(|(k, c)| (k as u64, c))
            .collect();
        table.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Trace {
        Trace::new(
            vec![
                Request { time: 0.0, key: 1 },
                Request { time: 1.0, key: 1 },
                Request { time: 2.0, key: 0 },
                Request { time: 3.0, key: 1 },
            ],
            4,
        )
    }

    #[test]
    fn counts_and_distinct() {
        let t = demo();
        assert_eq!(t.len(), 4);
        assert_eq!(t.distinct_keys(), 2);
        assert_eq!(t.counts(), vec![1, 3, 0, 0]);
    }

    #[test]
    fn rank_table_sorted() {
        let t = demo();
        assert_eq!(t.rank_table(), vec![(1, 3), (0, 1)]);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new(vec![], 10);
        assert!(t.is_empty());
        assert_eq!(t.distinct_keys(), 0);
        assert!(t.rank_table().is_empty());
    }
}
