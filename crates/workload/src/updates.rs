//! Update streams with skewed per-item rates (paper §3, §4.3).
//!
//! The §4.3 experiment poses uniform queries against a 100,000-tuple
//! relation while updates arrive with Zipf-distributed rates (α from 0.25
//! to 2.5). This module assigns each item a concrete update rate and can
//! generate the corresponding Poisson update events.

use crate::rng::Rng;
use crate::zipf::Zipf;

/// Per-item update rates, Zipf-shaped over a shuffled item universe.
#[derive(Debug, Clone)]
pub struct UpdateRates {
    /// rate[item] = updates per second.
    rates: Vec<f64>,
    alpha: f64,
}

impl UpdateRates {
    /// Assign rates to `items` items: the rate of the `i`-th most
    /// frequently updated item is proportional to `i^-alpha`, scaled so the
    /// whole dataset sees `total_rate` updates per second. The mapping from
    /// rate-rank to item id is shuffled by `seed`.
    pub fn zipf(items: u64, alpha: f64, total_rate: f64, seed: u64) -> UpdateRates {
        assert!(items > 0 && total_rate > 0.0);
        let zipf = Zipf::new(items, alpha);
        let mut rng = Rng::new(seed);
        let rank_to_item = rng.permutation(items as usize);
        let mut rates = vec![0.0; items as usize];
        for rank in 1..=items {
            let item = rank_to_item[(rank - 1) as usize] as usize;
            rates[item] = zipf.probability(rank) * total_rate;
        }
        UpdateRates { rates, alpha }
    }

    /// Uniform rates (no skew): every item updated equally often.
    pub fn uniform(items: u64, total_rate: f64) -> UpdateRates {
        assert!(items > 0 && total_rate > 0.0);
        UpdateRates {
            rates: vec![total_rate / items as f64; items as usize],
            alpha: 0.0,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Whether there are no items (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// The Zipf parameter used (0 for uniform).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Update rate of one item (updates/second).
    pub fn rate(&self, item: u64) -> f64 {
        self.rates[item as usize]
    }

    /// All rates.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// The highest per-item rate (`r_max` in Eq. 9).
    pub fn rmax(&self) -> f64 {
        self.rates.iter().copied().fold(0.0, f64::max)
    }

    /// Sum of all rates.
    pub fn total_rate(&self) -> f64 {
        self.rates.iter().sum()
    }

    /// Items sorted by descending rate: `item_by_rank()[0]` is the most
    /// frequently updated item (update-rank 1).
    pub fn items_by_rank(&self) -> Vec<u64> {
        let mut items: Vec<u64> = (0..self.rates.len() as u64).collect();
        items.sort_by(|&a, &b| {
            self.rates[b as usize]
                .total_cmp(&self.rates[a as usize])
                .then(a.cmp(&b))
        });
        items
    }

    /// Probability that an item with this rate is updated at least once in
    /// a window of `secs` seconds (Poisson arrivals).
    pub fn stale_probability(&self, item: u64, secs: f64) -> f64 {
        let lambda = self.rate(item) * secs.max(0.0);
        1.0 - (-lambda).exp()
    }
}

/// An iterator of Poisson update events over the item universe.
#[derive(Debug, Clone)]
pub struct UpdateStream {
    rates: UpdateRates,
    sampler: crate::alias::AliasTable,
    rng: Rng,
    time: f64,
    total_rate: f64,
}

/// One update event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateEvent {
    /// Virtual time of the update (seconds).
    pub time: f64,
    /// Item updated.
    pub item: u64,
}

impl UpdateStream {
    /// A stream over the given rates (superposed Poisson processes: the
    /// merged process has rate `Σ r_i` and each event picks item `i` with
    /// probability `r_i / Σ r`).
    pub fn new(rates: UpdateRates, seed: u64) -> UpdateStream {
        let total_rate = rates.total_rate();
        let sampler = crate::alias::AliasTable::new(rates.rates());
        UpdateStream {
            rates,
            sampler,
            rng: Rng::new(seed),
            time: 0.0,
            total_rate,
        }
    }

    /// The underlying rates.
    pub fn rates(&self) -> &UpdateRates {
        &self.rates
    }
}

impl Iterator for UpdateStream {
    type Item = UpdateEvent;

    fn next(&mut self) -> Option<UpdateEvent> {
        self.time += self.rng.exponential(self.total_rate);
        let item = self.sampler.sample(&mut self.rng) as u64;
        Some(UpdateEvent {
            time: self.time,
            item,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_rates_sum_to_total() {
        let r = UpdateRates::zipf(1000, 1.0, 50.0, 1);
        assert!((r.total_rate() - 50.0).abs() < 1e-9);
        assert_eq!(r.len(), 1000);
        assert!(r.rmax() > 50.0 / 1000.0, "max above uniform share");
    }

    #[test]
    fn uniform_rates_equal() {
        let r = UpdateRates::uniform(10, 5.0);
        for i in 0..10 {
            assert!((r.rate(i) - 0.5).abs() < 1e-12);
        }
        assert!((r.rmax() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn items_by_rank_descending() {
        let r = UpdateRates::zipf(100, 1.5, 10.0, 3);
        let ranked = r.items_by_rank();
        for w in ranked.windows(2) {
            assert!(r.rate(w[0]) >= r.rate(w[1]));
        }
        assert!((r.rate(ranked[0]) - r.rmax()).abs() < 1e-12);
    }

    #[test]
    fn stale_probability_monotone_in_window() {
        let r = UpdateRates::zipf(10, 1.0, 1.0, 5);
        let p1 = r.stale_probability(0, 10.0);
        let p2 = r.stale_probability(0, 100.0);
        assert!(p2 >= p1);
        assert_eq!(r.stale_probability(0, 0.0), 0.0);
        assert!(r.stale_probability(0, 1e12) > 0.999);
    }

    #[test]
    fn stream_inter_arrivals_match_rate() {
        let rates = UpdateRates::uniform(100, 20.0);
        let stream = UpdateStream::new(rates, 9);
        let events: Vec<UpdateEvent> = stream.take(20_000).collect();
        let span = events.last().unwrap().time - events[0].time;
        let observed_rate = (events.len() - 1) as f64 / span;
        assert!(
            (observed_rate - 20.0).abs() / 20.0 < 0.05,
            "rate {observed_rate}"
        );
    }

    #[test]
    fn stream_item_mix_follows_rates() {
        let rates = UpdateRates::zipf(10, 1.0, 10.0, 11);
        let expected0 = rates.rate(0) / rates.total_rate();
        let stream = UpdateStream::new(rates, 13);
        let n = 100_000;
        let hits = stream.take(n).filter(|e| e.item == 0).count();
        let observed = hits as f64 / n as f64;
        assert!(
            (observed - expected0).abs() / expected0 < 0.1,
            "obs {observed} vs exp {expected0}"
        );
    }

    #[test]
    fn stream_times_increase() {
        let rates = UpdateRates::uniform(5, 1.0);
        let events: Vec<UpdateEvent> = UpdateStream::new(rates, 2).take(100).collect();
        assert!(events.windows(2).all(|w| w[0].time < w[1].time));
    }
}
