//! Adversary models (paper §1.1, §2.4).
//!
//! An extraction adversary "must eventually request every element in the
//! set". These models decide *in what order* and *with how many
//! identities* it does so. The delay totals they incur are computed by
//! `delayguard-sim`.

use crate::rng::Rng;

/// The order in which an adversary requests the universe `0..objects`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractionOrder {
    /// Ascending key order — the "robot that repeatedly asks slightly
    /// different selective queries whose union is the entire database".
    Sequential,
    /// A seeded random permutation — a robot trying to look less regular.
    /// Delay totals are identical (the sum is order-independent); only
    /// time-to-first-coverage of specific keys changes.
    Shuffled(u64),
}

impl ExtractionOrder {
    /// Materialize the request order over `objects` keys.
    pub fn keys(&self, objects: u64) -> Vec<u64> {
        match self {
            ExtractionOrder::Sequential => (0..objects).collect(),
            ExtractionOrder::Shuffled(seed) => Rng::new(*seed).permutation(objects as usize),
        }
    }
}

/// A Sybil adversary that splits extraction across `identities` fake users
/// issuing queries in parallel (§2.4): it pays the *maximum* of its
/// identities' delay totals rather than the sum.
#[derive(Debug, Clone, Copy)]
pub struct SybilPlan {
    /// Number of identities the adversary controls.
    pub identities: usize,
    /// How the key space is ordered before partitioning.
    pub order: ExtractionOrder,
}

impl SybilPlan {
    /// Partition the key universe into one work list per identity
    /// (round-robin, which balances delay when delays correlate with key
    /// order only weakly).
    pub fn partition(&self, objects: u64) -> Vec<Vec<u64>> {
        assert!(self.identities > 0, "need at least one identity");
        let keys = self.order.keys(objects);
        let mut parts = vec![Vec::new(); self.identities];
        for (i, key) in keys.into_iter().enumerate() {
            parts[i % self.identities].push(key);
        }
        parts
    }

    /// Given per-key delays, the wall-clock the parallel extraction takes:
    /// the maximum per-identity sum.
    pub fn wall_clock(&self, objects: u64, delay_of: impl Fn(u64) -> f64) -> f64 {
        self.partition(objects)
            .into_iter()
            .map(|part| part.into_iter().map(&delay_of).sum::<f64>())
            .fold(0.0, f64::max)
    }
}

/// A storefront adversary forwards *legitimate users'* queries and caches
/// results (§2.4). It only ever sees what legitimate users ask, so its
/// coverage is bounded by the distinct-key footprint of the legit workload.
#[derive(Debug, Clone)]
pub struct StorefrontObserver {
    seen: Vec<bool>,
    distinct: u64,
    forwarded: u64,
}

impl StorefrontObserver {
    /// Observe a universe of `objects` keys.
    pub fn new(objects: u64) -> StorefrontObserver {
        StorefrontObserver {
            seen: vec![false; objects as usize],
            distinct: 0,
            forwarded: 0,
        }
    }

    /// The storefront forwards one user query for `key` and caches it.
    pub fn forward(&mut self, key: u64) {
        self.forwarded += 1;
        let slot = &mut self.seen[key as usize];
        if !*slot {
            *slot = true;
            self.distinct += 1;
        }
    }

    /// Queries forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Distinct keys harvested so far.
    pub fn coverage(&self) -> u64 {
        self.distinct
    }

    /// Fraction of the universe harvested.
    pub fn coverage_fraction(&self) -> f64 {
        self.distinct as f64 / self.seen.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_order_is_complete_and_sorted() {
        let keys = ExtractionOrder::Sequential.keys(10);
        assert_eq!(keys, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn shuffled_order_is_complete_permutation() {
        let mut keys = ExtractionOrder::Shuffled(3).keys(100);
        assert_ne!(keys, (0..100).collect::<Vec<u64>>());
        keys.sort_unstable();
        assert_eq!(keys, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn sybil_partitions_cover_everything_once() {
        let plan = SybilPlan {
            identities: 7,
            order: ExtractionOrder::Sequential,
        };
        let parts = plan.partition(100);
        assert_eq!(parts.len(), 7);
        let mut all: Vec<u64> = parts.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn sybil_wall_clock_divides_delay() {
        // Uniform 1-second delays: k identities cut wall clock ~k-fold.
        let single = SybilPlan {
            identities: 1,
            order: ExtractionOrder::Sequential,
        };
        let many = SybilPlan {
            identities: 10,
            order: ExtractionOrder::Sequential,
        };
        let d = |_k: u64| 1.0;
        assert_eq!(single.wall_clock(100, d), 100.0);
        assert_eq!(many.wall_clock(100, d), 10.0);
    }

    #[test]
    fn sybil_pays_max_partition() {
        // All the delay concentrated on key 0: parallelism doesn't help.
        let plan = SybilPlan {
            identities: 10,
            order: ExtractionOrder::Sequential,
        };
        let d = |k: u64| if k == 0 { 100.0 } else { 0.0 };
        assert_eq!(plan.wall_clock(100, d), 100.0);
    }

    #[test]
    fn storefront_coverage_tracks_distinct_forwards() {
        let mut s = StorefrontObserver::new(10);
        for key in [1u64, 1, 2, 3, 3, 3] {
            s.forward(key);
        }
        assert_eq!(s.forwarded(), 6);
        assert_eq!(s.coverage(), 3);
        assert!((s.coverage_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn storefront_skewed_workload_covers_slowly() {
        // Under a Zipf workload most forwards hit already-cached keys, so
        // coverage grows far slower than query volume.
        use crate::zipf::Zipf;
        let z = Zipf::new(1000, 1.5);
        let mut rng = Rng::new(21);
        let mut s = StorefrontObserver::new(1000);
        for _ in 0..10_000 {
            s.forward(z.sample(&mut rng) - 1);
        }
        assert!(
            s.coverage_fraction() < 0.5,
            "coverage {}",
            s.coverage_fraction()
        );
    }

    #[test]
    #[should_panic]
    fn sybil_needs_identities() {
        SybilPlan {
            identities: 0,
            order: ExtractionOrder::Sequential,
        }
        .partition(10);
    }
}
