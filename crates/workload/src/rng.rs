//! Deterministic pseudo-random number generation.
//!
//! Every experiment in this repository must be reproducible from a seed, so
//! we use a small, well-understood generator implemented locally:
//! `xoshiro256**` seeded through SplitMix64 (the construction recommended
//! by the xoshiro authors). This avoids depending on external RNG crates
//! whose output streams change across versions.

/// SplitMix64 step; used for seeding and as a standalone mixer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed deterministically from a single value.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Uses rejection to avoid modulo bias.
    ///
    /// # Panics
    /// If `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire-style widening multiply with rejection.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed sample with the given rate (mean `1/rate`).
    ///
    /// # Panics
    /// If `rate <= 0`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        // Inverse CDF; guard the log away from 0.
        let u = 1.0 - self.next_f64(); // (0, 1]
        -u.ln() / rate
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n as u64).collect();
        self.shuffle(&mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(1);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut r = Rng::new(7);
        let n = 10u64;
        let mut counts = [0u64; 10];
        let trials = 100_000;
        for _ in 0..trials {
            counts[r.below(n) as usize] += 1;
        }
        let expected = trials as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bucket {i} off by {dev}");
        }
    }

    #[test]
    fn range_bounds() {
        let mut r = Rng::new(3);
        for _ in 0..1000 {
            let x = r.range(5, 8);
            assert!((5..8).contains(&x));
        }
    }

    #[test]
    fn exponential_mean() {
        let mut r = Rng::new(11);
        let rate = 4.0;
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exponential(rate)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(5);
        let mut v: Vec<u64> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u64>>());
        assert_ne!(v, (0..100).collect::<Vec<u64>>(), "astronomically unlikely");
    }

    #[test]
    fn permutation_deterministic() {
        let mut a = Rng::new(9);
        let mut b = Rng::new(9);
        assert_eq!(a.permutation(50), b.permutation(50));
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(2);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    #[should_panic]
    fn below_zero_panics() {
        Rng::new(0).below(0);
    }
}
