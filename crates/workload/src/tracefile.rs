//! Trace import/export in a simple CSV format.
//!
//! Synthetic traces stand in for the paper's Calgary and Variety data, but
//! operators evaluating the defense on *their own* access logs need a way
//! in. The format is one request per line, `time_secs,key`, with an
//! optional `# objects=N` header (otherwise the universe is inferred as
//! `max(key)+1`). Lines starting with `#` are comments.

use crate::trace::{Request, Trace};
use std::fmt::Write as _;
use std::fs;
use std::io::{self, BufRead, BufReader, Read};
use std::path::Path;

/// Errors from trace parsing.
#[derive(Debug)]
pub enum TraceFileError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based number and content.
    Malformed { line: usize, content: String },
    /// Requests are not in non-decreasing time order.
    OutOfOrder { line: usize },
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "io error: {e}"),
            TraceFileError::Malformed { line, content } => {
                write!(f, "malformed trace line {line}: `{content}`")
            }
            TraceFileError::OutOfOrder { line } => {
                write!(f, "trace not time-ordered at line {line}")
            }
        }
    }
}

impl std::error::Error for TraceFileError {}

impl From<io::Error> for TraceFileError {
    fn from(e: io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

/// Serialize a trace to the CSV format.
pub fn to_csv(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.len() * 16 + 32);
    let _ = writeln!(out, "# objects={}", trace.objects);
    for r in &trace.requests {
        let _ = writeln!(out, "{},{}", r.time, r.key);
    }
    out
}

/// Parse a trace from any reader.
pub fn from_reader(reader: impl Read) -> Result<Trace, TraceFileError> {
    let reader = BufReader::new(reader);
    let mut requests = Vec::new();
    let mut declared_objects: Option<u64> = None;
    let mut max_key = 0u64;
    let mut last_time = f64::NEG_INFINITY;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('#') {
            if let Some(value) = rest.trim().strip_prefix("objects=") {
                declared_objects = value.trim().parse().ok();
            }
            continue;
        }
        let mut parts = trimmed.split(',');
        let (Some(t), Some(k), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(TraceFileError::Malformed {
                line: lineno,
                content: line.clone(),
            });
        };
        let time: f64 = t.trim().parse().map_err(|_| TraceFileError::Malformed {
            line: lineno,
            content: line.clone(),
        })?;
        let key: u64 = k.trim().parse().map_err(|_| TraceFileError::Malformed {
            line: lineno,
            content: line.clone(),
        })?;
        if !time.is_finite() || time < last_time {
            return Err(TraceFileError::OutOfOrder { line: lineno });
        }
        last_time = time;
        max_key = max_key.max(key);
        requests.push(Request { time, key });
    }
    // The universe must cover every observed key; a declared header can
    // only widen it.
    let observed = if requests.is_empty() { 0 } else { max_key + 1 };
    let objects = declared_objects.unwrap_or(0).max(observed);
    Ok(Trace::new(requests, objects))
}

/// Load a trace from a file.
pub fn load(path: &Path) -> Result<Trace, TraceFileError> {
    from_reader(fs::File::open(path)?)
}

/// Save a trace to a file.
pub fn save(trace: &Trace, path: &Path) -> Result<(), TraceFileError> {
    fs::write(path, to_csv(trace))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Trace {
        Trace::new(
            vec![
                Request { time: 0.0, key: 3 },
                Request { time: 1.5, key: 0 },
                Request { time: 1.5, key: 3 },
            ],
            10,
        )
    }

    #[test]
    fn csv_round_trip() {
        let t = demo();
        let csv = to_csv(&t);
        let back = from_reader(csv.as_bytes()).unwrap();
        assert_eq!(back.objects, 10);
        assert_eq!(back.requests, t.requests);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("dg-trace-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        save(&demo(), &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.len(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn infers_universe_without_header() {
        let t = from_reader("0,5\n1,2\n".as_bytes()).unwrap();
        assert_eq!(t.objects, 6);
    }

    #[test]
    fn header_expands_universe_but_keys_win() {
        // Declared universe smaller than observed keys: keys win.
        let t = from_reader("# objects=2\n0,5\n".as_bytes()).unwrap();
        assert_eq!(t.objects, 6);
        // Declared universe larger: declaration wins.
        let t = from_reader("# objects=100\n0,5\n".as_bytes()).unwrap();
        assert_eq!(t.objects, 100);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let t = from_reader("# hello\n\n0,1\n# mid\n2,2\n".as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(matches!(
            from_reader("0,1,2\n".as_bytes()),
            Err(TraceFileError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            from_reader("zero,1\n".as_bytes()),
            Err(TraceFileError::Malformed { .. })
        ));
        assert!(matches!(
            from_reader("0\n".as_bytes()),
            Err(TraceFileError::Malformed { .. })
        ));
    }

    #[test]
    fn out_of_order_rejected() {
        assert!(matches!(
            from_reader("5,1\n1,2\n".as_bytes()),
            Err(TraceFileError::OutOfOrder { line: 2 })
        ));
        assert!(from_reader("NaN,1\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input_is_empty_trace() {
        let t = from_reader("".as_bytes()).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.objects, 0);
    }
}
