//! Walker–Vose alias method: `O(1)` sampling from arbitrary discrete
//! distributions.
//!
//! Used where weights are not rank-shaped — e.g. sampling films in
//! proportion to their weekly box-office sales.

use crate::rng::Rng;

/// An alias table over `n` outcomes.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Build from non-negative weights (not necessarily normalized).
    ///
    /// # Panics
    /// If `weights` is empty, contains a negative/non-finite value, or sums
    /// to zero.
    pub fn new(weights: &[f64]) -> AliasTable {
        assert!(!weights.is_empty(), "need at least one outcome");
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        assert!(total > 0.0, "weights must not all be zero");
        let scale = n as f64 / total;
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let mut small = Vec::new();
        let mut large = Vec::new();
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true: construction requires ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Sample an outcome index.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let i = rng.below(self.len() as u64) as usize;
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_weights_statistically() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights);
        let mut rng = Rng::new(17);
        let trials = 400_000;
        let mut counts = [0u64; 4];
        for _ in 0..trials {
            counts[t.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for i in 0..4 {
            let obs = counts[i] as f64 / trials as f64;
            let exp = weights[i] / total;
            assert!(
                (obs - exp).abs() / exp < 0.03,
                "outcome {i}: {obs} vs {exp}"
            );
        }
    }

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[7.0]);
        let mut rng = Rng::new(1);
        for _ in 0..10 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_outcomes_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 1.0]);
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            let s = t.sample(&mut rng);
            assert!(s == 1 || s == 3, "sampled zero-weight outcome {s}");
        }
    }

    #[test]
    fn highly_skewed_weights() {
        let t = AliasTable::new(&[1e-9, 1.0]);
        let mut rng = Rng::new(4);
        let hits = (0..100_000).filter(|_| t.sample(&mut rng) == 0).count();
        assert!(hits < 10, "rare outcome sampled {hits} times");
    }

    #[test]
    #[should_panic]
    fn empty_rejected() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic]
    fn all_zero_rejected() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn negative_rejected() {
        AliasTable::new(&[1.0, -0.5]);
    }
}
