//! # delayguard-workload
//!
//! Deterministic workload generation for the paper's evaluation (§4):
//!
//! * [`rng`] — seeded xoshiro256** PRNG (all experiments reproduce
//!   bit-for-bit from a seed).
//! * [`zipf`] / [`alias`] — power-law and arbitrary discrete sampling.
//! * [`trace`] — timestamped request streams.
//! * [`calgary`] — synthetic stand-in for the Calgary web trace (§4.1):
//!   12,179 objects, 725,091 requests, static Zipf(1.5) popularity.
//! * [`boxoffice`] — synthetic stand-in for the 2002 Variety box-office
//!   season (§4.2): 634 films, weekly-shifting skew, one request per
//!   $100k of weekly sales.
//! * [`updates`] — Zipf-rate Poisson update streams (§3, §4.3).
//! * [`adversary`] — extraction orders, Sybil parallelism, storefront
//!   observers (§2.4).

#![forbid(unsafe_code)]

pub mod adversary;
pub mod alias;
pub mod boxoffice;
pub mod calgary;
pub mod rng;
pub mod trace;
pub mod tracefile;
pub mod updates;
pub mod zipf;

pub use adversary::{ExtractionOrder, StorefrontObserver, SybilPlan};
pub use alias::AliasTable;
pub use boxoffice::{BoxOffice, BoxOfficeConfig, WEEK_SECS};
pub use calgary::CalgaryConfig;
pub use rng::Rng;
pub use trace::{Request, Trace};
pub use tracefile::TraceFileError;
pub use updates::{UpdateEvent, UpdateRates, UpdateStream};
pub use zipf::{generalized_harmonic, power_sum, Zipf};
