//! Staleness accounting for the update-rate scheme (paper §3, §4.3).
//!
//! An extracted item is *stale* "if its value changes at least once during
//! the execution of the adversary's query" — i.e. if at least one update
//! to it lands between its retrieval and the end of extraction. With
//! Poisson updates at rate `r`, that happens with probability
//! `1 − exp(−r · (T_end − t_retrieved))`.

use delayguard_workload::{Rng, UpdateRates};

/// The retrieval schedule of one extraction run: item `i` was retrieved at
/// `times[i]` seconds, and extraction finished at `end`.
#[derive(Debug, Clone)]
pub struct ExtractionSchedule {
    /// Retrieval time per item (indexed by item id).
    pub times: Vec<f64>,
    /// Completion time of the whole extraction.
    pub end: f64,
}

impl ExtractionSchedule {
    /// Expected fraction of the extracted copy that is stale at `end`,
    /// under Poisson updates with the given per-item rates.
    pub fn expected_stale_fraction(&self, rates: &UpdateRates) -> f64 {
        assert_eq!(self.times.len(), rates.len());
        if self.times.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .times
            .iter()
            .enumerate()
            .map(|(item, &t)| rates.stale_probability(item as u64, self.end - t))
            .sum();
        sum / self.times.len() as f64
    }

    /// Monte-Carlo staleness: sample, per item, the first update after its
    /// retrieval (exponential with its rate) and check whether it lands
    /// before `end`. Deterministic given `seed`.
    pub fn simulated_stale_fraction(&self, rates: &UpdateRates, seed: u64) -> f64 {
        assert_eq!(self.times.len(), rates.len());
        if self.times.is_empty() {
            return 0.0;
        }
        let mut rng = Rng::new(seed);
        let stale = self
            .times
            .iter()
            .enumerate()
            .filter(|&(item, &t)| {
                let rate = rates.rate(item as u64);
                if rate <= 0.0 {
                    return false;
                }
                let next_update = t + rng.exponential(rate);
                next_update <= self.end
            })
            .count();
        stale as f64 / self.times.len() as f64
    }

    /// The paper's deterministic criterion (Eq. 10): item `i` is stale iff
    /// `d_total ≥ 1/r_i`, where `d_total` is the *whole* extraction time.
    /// This is what Eq. 11/12 are derived from; it slightly overstates
    /// staleness for items retrieved late in the run (their true exposure
    /// is `end − t_i`), which the exposure-based measures below refine.
    pub fn paper_stale_fraction(&self, rates: &UpdateRates) -> f64 {
        assert_eq!(self.times.len(), rates.len());
        if self.times.is_empty() {
            return 0.0;
        }
        let stale = (0..rates.len() as u64)
            .filter(|&item| {
                let r = rates.rate(item);
                r > 0.0 && self.end >= 1.0 / r
            })
            .count();
        stale as f64 / self.times.len() as f64
    }

    /// Number of items whose update *period* (1/rate) fits inside their
    /// actual exposure window `end − t_i`, as a fraction — the
    /// per-item-exposure refinement of Eq. 10.
    pub fn deterministic_stale_fraction(&self, rates: &UpdateRates) -> f64 {
        assert_eq!(self.times.len(), rates.len());
        if self.times.is_empty() {
            return 0.0;
        }
        let stale = self
            .times
            .iter()
            .enumerate()
            .filter(|&(item, &t)| {
                let r = rates.rate(item as u64);
                r > 0.0 && (self.end - t) >= 1.0 / r
            })
            .count();
        stale as f64 / self.times.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule_all_at_zero(n: usize, end: f64) -> ExtractionSchedule {
        ExtractionSchedule {
            times: vec![0.0; n],
            end,
        }
    }

    #[test]
    fn no_time_no_staleness() {
        let rates = UpdateRates::uniform(100, 10.0);
        let s = schedule_all_at_zero(100, 0.0);
        assert_eq!(s.expected_stale_fraction(&rates), 0.0);
        assert_eq!(s.deterministic_stale_fraction(&rates), 0.0);
    }

    #[test]
    fn long_exposure_means_everything_stale() {
        let rates = UpdateRates::uniform(100, 10.0); // 0.1 upd/s each
        let s = schedule_all_at_zero(100, 1e6);
        assert!(s.expected_stale_fraction(&rates) > 0.999);
        assert_eq!(s.deterministic_stale_fraction(&rates), 1.0);
        assert!(s.simulated_stale_fraction(&rates, 1) > 0.99);
    }

    #[test]
    fn expected_matches_formula() {
        // One item, rate 1/s, exposed 1s: P = 1 - e^-1.
        let rates = UpdateRates::uniform(1, 1.0);
        let s = schedule_all_at_zero(1, 1.0);
        let p = s.expected_stale_fraction(&rates);
        assert!((p - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn later_retrieval_less_stale() {
        let rates = UpdateRates::uniform(2, 2.0); // 1 upd/s each
        let s = ExtractionSchedule {
            times: vec![0.0, 9.0],
            end: 10.0,
        };
        let p_early = rates.stale_probability(0, 10.0);
        let p_late = rates.stale_probability(1, 1.0);
        assert!(p_early > p_late);
        let expected = (p_early + p_late) / 2.0;
        assert!((s.expected_stale_fraction(&rates) - expected).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_close_to_expectation() {
        let rates = UpdateRates::zipf(2_000, 1.0, 20.0, 7);
        let s = schedule_all_at_zero(2_000, 50.0);
        let expected = s.expected_stale_fraction(&rates);
        let simulated = s.simulated_stale_fraction(&rates, 99);
        assert!(
            (expected - simulated).abs() < 0.05,
            "expected {expected}, simulated {simulated}"
        );
    }

    #[test]
    fn skew_reduces_stale_fraction_at_fixed_budget() {
        // Paper Fig. 6: with updates concentrated on few items (high α),
        // a smaller fraction of the database goes stale.
        let n = 5_000u64;
        let end = 1_000.0;
        let low = UpdateRates::zipf(n, 0.25, 10.0, 3);
        let high = UpdateRates::zipf(n, 2.5, 10.0, 3);
        let s = schedule_all_at_zero(n as usize, end);
        assert!(
            s.expected_stale_fraction(&low) > s.expected_stale_fraction(&high),
            "low skew should go staler"
        );
    }
}
