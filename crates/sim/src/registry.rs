//! A lightweight metrics registry shared by the simulator and the server.
//!
//! [`Registry`] hands out cheap clonable handles — monotonically
//! increasing [`Counter`]s and settable [`Gauge`]s — backed by atomics,
//! so hot paths record without locking; the registry itself only locks to
//! create or enumerate metrics. The server's `STATS` verb and the
//! simulator's reports both render [`Registry::snapshot`].
//!
//! Durations are recorded as integer microseconds (`Counter::add_secs`)
//! so counters stay lock-free `u64`s.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add a duration in seconds, recorded as whole microseconds.
    pub fn add_secs(&self, secs: f64) {
        debug_assert!(secs >= 0.0);
        self.add((secs * 1e6).round() as u64);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways, with a recorded
/// high-water mark.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
    high_water: Arc<AtomicI64>,
}

impl Gauge {
    /// Set to an absolute value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        self.high_water.fetch_max(v, Ordering::Relaxed);
    }

    /// Adjust by a signed delta, returning the new value.
    pub fn add(&self, delta: i64) -> i64 {
        let new = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.high_water.fetch_max(new, Ordering::Relaxed);
        new
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Largest value ever set or reached.
    pub fn high_water(&self) -> i64 {
        self.high_water.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
}

/// One metric's value in a [`Registry::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter's current count.
    Counter(u64),
    /// A gauge's current value and high-water mark.
    Gauge { value: i64, high_water: i64 },
}

impl MetricValue {
    /// The value as an `i64` regardless of kind (counters saturate).
    pub fn as_i64(&self) -> i64 {
        match *self {
            MetricValue::Counter(v) => v.min(i64::MAX as u64) as i64,
            MetricValue::Gauge { value, .. } => value,
        }
    }
}

/// A named collection of counters and gauges.
///
/// Cloning the registry clones a handle to the same underlying metrics.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created at zero on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a gauge.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().unwrap();
        let metric = metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Counter::default()));
        match metric {
            Metric::Counter(c) => c.clone(),
            Metric::Gauge(_) => panic!("metric {name:?} is a gauge, not a counter"),
        }
    }

    /// The gauge named `name`, created at zero on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a counter.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().unwrap();
        let metric = metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Gauge::default()));
        match metric {
            Metric::Gauge(g) => g.clone(),
            Metric::Counter(_) => panic!("metric {name:?} is a counter, not a gauge"),
        }
    }

    /// The current value of a metric, if registered.
    pub fn value(&self, name: &str) -> Option<MetricValue> {
        let metrics = self.metrics.lock().unwrap();
        metrics.get(name).map(|m| match m {
            Metric::Counter(c) => MetricValue::Counter(c.get()),
            Metric::Gauge(g) => MetricValue::Gauge {
                value: g.get(),
                high_water: g.high_water(),
            },
        })
    }

    /// All metrics and their current values, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let metrics = self.metrics.lock().unwrap();
        metrics
            .iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge {
                        value: g.get(),
                        high_water: g.high_water(),
                    },
                };
                (name.clone(), v)
            })
            .collect()
    }

    /// Render the snapshot as aligned `name value` lines.
    pub fn render(&self) -> String {
        let snap = self.snapshot();
        let width = snap.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in snap {
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{name:<width$}  {v}\n"));
                }
                MetricValue::Gauge { value, high_water } => {
                    out.push_str(&format!("{name:<width$}  {value} (high {high_water})\n"));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_handles() {
        let r = Registry::new();
        let a = r.counter("queries");
        let b = r.counter("queries");
        a.inc();
        b.add(4);
        assert_eq!(r.value("queries"), Some(MetricValue::Counter(5)));
    }

    #[test]
    fn seconds_recorded_as_micros() {
        let r = Registry::new();
        let c = r.counter("delay_micros");
        c.add_secs(1.5);
        c.add_secs(0.000_25);
        assert_eq!(c.get(), 1_500_250);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let r = Registry::new();
        let g = r.gauge("queue_depth");
        g.add(3);
        g.add(5);
        g.add(-6);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_water(), 8);
        g.set(1);
        assert_eq!(g.high_water(), 8);
    }

    #[test]
    fn snapshot_sorted_and_typed() {
        let r = Registry::new();
        r.counter("b_counter").inc();
        r.gauge("a_gauge").set(-2);
        let snap = r.snapshot();
        assert_eq!(snap[0].0, "a_gauge");
        assert_eq!(
            snap[0].1,
            MetricValue::Gauge {
                value: -2,
                high_water: 0
            }
        );
        assert_eq!(snap[1].1, MetricValue::Counter(1));
        assert!(r.render().contains("b_counter"));
    }

    #[test]
    fn concurrent_updates_do_not_lose_increments() {
        let r = Registry::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = r.counter("n");
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter("n").get(), 80_000);
    }

    #[test]
    #[should_panic]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }
}
