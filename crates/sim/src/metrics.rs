//! Latency metrics: online mean/stdev and quantiles.
//!
//! The paper argues (§2.1) that for skewed distributions "a quantile
//! metric such as the median is more representative and fair" than the
//! mean; this module provides both so tables can report medians while the
//! overhead experiment (Table 5) reports mean ± stdev.

/// Welford online mean / variance accumulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> OnlineStats {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (n-1 denominator; 0 for < 2 samples).
    pub fn stdev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

/// Exact quantiles over a sample set (consumes and sorts a copy).
#[derive(Debug, Clone)]
pub struct Quantiles {
    sorted: Vec<f64>,
}

impl Quantiles {
    /// Build from samples. NaNs are rejected.
    ///
    /// # Panics
    /// If any sample is NaN.
    pub fn of(mut samples: Vec<f64>) -> Quantiles {
        assert!(samples.iter().all(|x| !x.is_nan()), "NaN sample");
        samples.sort_by(|a, b| a.total_cmp(b));
        Quantiles { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by the nearest-rank method;
    /// 0 for an empty set.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        self.sorted[idx]
    }

    /// The median (`q = 0.5`): the paper's headline user metric.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// Compute the median of a sample vector in place (linear time).
pub fn median_of(mut samples: Vec<f64>) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mid = (samples.len() - 1) / 2;
    let (_, m, _) = samples.select_nth_unstable_by(mid, |a, b| a.total_cmp(b));
    *m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_match_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample stdev with n-1: sqrt(32/7).
        assert!((s.stdev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zeroish() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stdev(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let q = Quantiles::of(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(q.median(), 3.0);
        assert_eq!(q.quantile(0.0), 1.0);
        assert_eq!(q.quantile(1.0), 5.0);
        assert_eq!(q.quantile(0.2), 1.0);
        assert_eq!(q.quantile(0.21), 2.0);
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn median_of_even_and_odd() {
        assert_eq!(median_of(vec![3.0, 1.0, 2.0]), 2.0);
        // Even count: lower middle by our convention.
        assert_eq!(median_of(vec![4.0, 1.0, 3.0, 2.0]), 2.0);
        assert_eq!(median_of(vec![]), 0.0);
        assert_eq!(median_of(vec![7.0]), 7.0);
    }

    #[test]
    fn median_of_matches_quantiles() {
        let xs: Vec<f64> = (0..1001).map(|i| ((i * 7919) % 1001) as f64).collect();
        assert_eq!(median_of(xs.clone()), Quantiles::of(xs).median());
    }

    #[test]
    #[should_panic]
    fn nan_rejected() {
        Quantiles::of(vec![1.0, f64::NAN]);
    }
}
