//! Plain-text table rendering for the experiments harness.

/// A simple aligned-column table builder.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableBuilder {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> TableBuilder {
        TableBuilder {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render to a string with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let sep_len = widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1);
        out.push_str(&"=".repeat(self.title.len().max(sep_len.min(100))));
        out.push('\n');
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(sep_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format seconds adaptively (µs/ms below 1 s, then s/h/weeks).
pub fn fmt_secs(secs: f64) -> String {
    if secs.abs() < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else if secs < 120.0 {
        format!("{secs:.2} s")
    } else if secs < 48.0 * 3600.0 {
        format!("{:.2} h", secs / 3600.0)
    } else {
        format!("{:.2} weeks", secs / (7.0 * 24.0 * 3600.0))
    }
}

/// Format a ratio as a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format dollars with thousands separators.
pub fn fmt_dollars(x: f64) -> String {
    let v = x.round() as i64;
    let s = v.abs().to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    if v < 0 {
        format!("-${out}")
    } else {
        format!("${out}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TableBuilder::new("Demo", &["a", "long_header"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["100".into(), "2000000".into()]);
        let s = t.render();
        assert!(s.contains("Demo"));
        assert!(s.contains("long_header"));
        let lines: Vec<&str> = s.lines().collect();
        // Header row and data rows have equal width.
        assert_eq!(lines[2].len(), lines[4].len());
    }

    #[test]
    #[should_panic]
    fn row_arity_checked() {
        TableBuilder::new("x", &["a", "b"]).row(&["1".into()]);
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(0.0000154), "15.40 us");
        assert_eq!(fmt_secs(0.0154), "15.40 ms");
        assert_eq!(fmt_secs(3.5), "3.50 s");
        assert_eq!(fmt_secs(7200.0), "2.00 h");
        assert!(fmt_secs(2e6).contains("weeks"));
    }

    #[test]
    fn fmt_pct_and_dollars() {
        assert_eq!(fmt_pct(0.897), "89.7%");
        assert_eq!(fmt_dollars(403_706_375.0), "$403,706,375");
        assert_eq!(fmt_dollars(-1234.0), "-$1,234");
        assert_eq!(fmt_dollars(12.0), "$12");
    }
}
