//! A minimal discrete-event queue.
//!
//! Orders events by time with a stable FIFO tie-break, so simulations that
//! schedule queries and updates at identical instants are deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Scheduled<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest event pops first,
        // breaking time ties by insertion order.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue.
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    seq: u64,
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `payload` at `time`.
    ///
    /// # Panics
    /// If `time` is NaN.
    pub fn push(&mut self, time: f64, payload: T) {
        assert!(!time.is_nan(), "event time must not be NaN");
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Pop the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|s| (s.time, s.payload))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.peek_time(), Some(1.0));
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.push(1.0, 1);
        q.push(1.0, 2);
        q.push(1.0, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn len_tracks() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(0.0, ());
        q.push(5.0, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic]
    fn nan_rejected() {
        EventQueue::new().push(f64::NAN, ());
    }
}
