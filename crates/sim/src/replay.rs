//! Trace replay through the learning + delay pipeline (paper §4.1–§4.2).
//!
//! Replays a [`Trace`] against a [`FrequencyTracker`] and an
//! [`AccessDelayPolicy`], exactly as the paper replays the Calgary and
//! box-office traces: each request is charged the delay implied by the
//! statistics learned *so far*, then recorded. At the end, the adversary's
//! extraction total is computed from the final counts ("we computed the
//! delay that would be imposed on an adversary ... by examining the access
//! counts after the trace was replayed").
//!
//! This is the *fast path* used for the large parameter sweeps; the
//! engine-backed path (`delayguard_core::GuardedDatabase`) runs the same
//! logic through SQL and is exercised by the integration tests and the
//! overhead experiment (Table 5).

use delayguard_core::AccessDelayPolicy;
use delayguard_popularity::{DecaySchedule, FrequencyTracker};
use delayguard_workload::Trace;

use crate::metrics::{median_of, OnlineStats};

/// When decay ticks are applied during replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecayMode {
    /// Tick once per request (§2.3: "the decay is applied at each
    /// request"; Table 3 sweeps this rate).
    PerRequest(f64),
    /// Tick once per period of virtual time (Table 4 applies decay "at
    /// weekly boundaries").
    PerBoundary { rate: f64, period_secs: f64 },
}

impl DecayMode {
    fn rate(&self) -> f64 {
        match self {
            DecayMode::PerRequest(r) => *r,
            DecayMode::PerBoundary { rate, .. } => *rate,
        }
    }
}

/// Replay configuration.
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// The access-rate delay policy under test.
    pub policy: AccessDelayPolicy,
    /// Decay application mode.
    pub decay: DecayMode,
    /// Pre-register every object at zero count (the paper's "all items
    /// are equally unpopular with frequencies of zero" start state).
    pub pretrack_all: bool,
}

/// Everything the paper reports about one replay.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// Delay charged to each request, in order (seconds).
    pub delays: Vec<f64>,
    /// Learned statistics at the end of the trace.
    pub tracker: FrequencyTracker,
    /// Total adversary delay to extract all objects, from final counts.
    pub adversary_total_secs: f64,
    /// `N · d_max`: the largest total an adversary could ever pay.
    pub max_possible_secs: f64,
}

impl ReplayResult {
    /// Median per-request user delay, seconds.
    pub fn median_user_delay_secs(&self) -> f64 {
        median_of(self.delays.clone())
    }

    /// Mean/stdev/min/max summary of user delays.
    pub fn user_delay_stats(&self) -> OnlineStats {
        let mut s = OnlineStats::new();
        for &d in &self.delays {
            s.push(d);
        }
        s
    }

    /// Publish headline numbers into a metrics [`Registry`](crate::Registry)
    /// (the same registry type the server's `STATS` verb reports from).
    pub fn record_to(&self, registry: &crate::Registry) {
        registry
            .counter("replay_requests")
            .add(self.delays.len() as u64);
        registry
            .counter("replay_user_delay_micros")
            .add_secs(self.delays.iter().sum::<f64>());
        registry
            .counter("replay_adversary_delay_micros")
            .add_secs(self.adversary_total_secs);
    }

    /// Adversary total as a fraction of the maximum possible
    /// (the paper reports "nearly 90% of the maximum possible delay" for
    /// Calgary and "100%" for the box-office data).
    pub fn fraction_of_max(&self) -> f64 {
        if self.max_possible_secs <= 0.0 {
            0.0
        } else {
            self.adversary_total_secs / self.max_possible_secs
        }
    }
}

/// Replay a lazy key stream under per-request decay, keeping every
/// `stride`-th delay sample (systematic sampling keeps the median accurate
/// while bounding memory for multi-million-request sweeps like Table 1).
///
/// # Panics
/// If `stride == 0` or `config.decay` is not [`DecayMode::PerRequest`]
/// (boundary decay needs request *times*; use [`replay`]).
pub fn replay_keys(
    keys: impl IntoIterator<Item = u64>,
    objects: u64,
    config: &ReplayConfig,
    stride: usize,
) -> ReplayResult {
    assert!(stride > 0, "stride must be positive");
    let DecayMode::PerRequest(rate) = config.decay else {
        panic!("replay_keys supports per-request decay only");
    };
    let mut tracker = FrequencyTracker::new(DecaySchedule::new(rate));
    if config.pretrack_all {
        for key in 0..objects {
            tracker.ensure_tracked(key);
        }
    }
    let mut delays = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let d = config.policy.delay(&tracker, objects, key);
        if i % stride == 0 {
            delays.push(d);
        }
        tracker.record(key);
    }
    let adversary_total_secs = config.policy.adversary_total(&tracker, objects);
    ReplayResult {
        delays,
        tracker,
        adversary_total_secs,
        max_possible_secs: objects as f64 * config.policy.cap_secs,
    }
}

/// Replay `trace` under `config`.
pub fn replay(trace: &Trace, config: &ReplayConfig) -> ReplayResult {
    let mut tracker = FrequencyTracker::new(DecaySchedule::new(config.decay.rate()));
    if config.pretrack_all {
        for key in 0..trace.objects {
            tracker.ensure_tracked(key);
        }
    }
    let mut delays = Vec::with_capacity(trace.len());
    let mut next_boundary = match config.decay {
        DecayMode::PerBoundary { period_secs, .. } => Some(period_secs),
        DecayMode::PerRequest(_) => None,
    };
    for req in &trace.requests {
        if let (Some(boundary), DecayMode::PerBoundary { period_secs, .. }) =
            (next_boundary.as_mut(), config.decay)
        {
            while req.time >= *boundary {
                tracker.tick_boundary();
                *boundary += period_secs;
            }
        }
        let d = config.policy.delay(&tracker, trace.objects, req.key);
        delays.push(d);
        match config.decay {
            DecayMode::PerRequest(_) => tracker.record(req.key),
            DecayMode::PerBoundary { .. } => tracker.record_static(req.key),
        }
    }
    let adversary_total_secs = config.policy.adversary_total(&tracker, trace.objects);
    ReplayResult {
        delays,
        tracker,
        adversary_total_secs,
        max_possible_secs: trace.objects as f64 * config.policy.cap_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayguard_workload::CalgaryConfig;

    fn small_trace() -> Trace {
        CalgaryConfig {
            objects: 1000,
            requests: 100_000,
            alpha: 1.5,
            inter_arrival_secs: 1.0,
            seed: 42,
        }
        .generate()
    }

    fn policy() -> AccessDelayPolicy {
        AccessDelayPolicy::new(1.5, 1.0).with_cap(10.0)
    }

    fn config() -> ReplayConfig {
        ReplayConfig {
            policy: policy(),
            decay: DecayMode::PerRequest(1.0),
            pretrack_all: true,
        }
    }

    #[test]
    fn users_fast_adversary_slow() {
        let trace = small_trace();
        let result = replay(&trace, &config());
        let median = result.median_user_delay_secs();
        // The median request hits a highly popular object: tiny delay.
        assert!(median < 0.05, "median {median}");
        // The adversary pays close to N * cap.
        assert!(
            result.fraction_of_max() > 0.8,
            "{}",
            result.fraction_of_max()
        );
        // Orders of magnitude between them.
        let per_object_adversary = result.adversary_total_secs / trace.objects as f64;
        assert!(per_object_adversary / median.max(1e-9) > 1e2);
    }

    #[test]
    fn early_requests_pay_cap_late_ones_do_not() {
        let trace = small_trace();
        let result = replay(&trace, &config());
        assert_eq!(result.delays[0], 10.0, "start-up transient: cap");
        let late = &result.delays[result.delays.len() - 1000..];
        let late_median = median_of(late.to_vec());
        assert!(late_median < 0.05, "late median {late_median}");
    }

    #[test]
    fn delays_match_trace_length() {
        let trace = small_trace();
        let result = replay(&trace, &config());
        assert_eq!(result.delays.len(), trace.len());
        assert_eq!(result.tracker.events(), trace.len() as u64);
    }

    #[test]
    fn decay_increases_median_delay() {
        // Table 3's phenomenon: stronger per-request decay shrinks the
        // effective history, so learned ranks are noisier and the median
        // user delay rises.
        let trace = small_trace();
        let no_decay = replay(&trace, &config());
        let heavy = replay(
            &trace,
            &ReplayConfig {
                decay: DecayMode::PerRequest(1.001),
                ..config()
            },
        );
        assert!(
            heavy.median_user_delay_secs() > no_decay.median_user_delay_secs(),
            "decay {} vs none {}",
            heavy.median_user_delay_secs(),
            no_decay.median_user_delay_secs()
        );
        // And the adversary's total only grows.
        assert!(heavy.adversary_total_secs >= no_decay.adversary_total_secs * 0.99);
    }

    #[test]
    fn boundary_decay_mode_runs() {
        let trace = small_trace();
        let result = replay(
            &trace,
            &ReplayConfig {
                decay: DecayMode::PerBoundary {
                    rate: 1.5,
                    period_secs: 10_000.0,
                },
                ..config()
            },
        );
        assert!(result.tracker.schedule().ticks() > 0, "boundaries ticked");
        assert!(
            result.tracker.schedule().ticks() < 20,
            "only boundaries tick"
        );
        assert!(result.median_user_delay_secs() < 1.0);
    }

    #[test]
    fn replay_keys_matches_replay_for_per_request_decay() {
        let trace = small_trace();
        let cfg = config();
        let a = replay(&trace, &cfg);
        let keys = trace.requests.iter().map(|r| r.key);
        let b = replay_keys(keys, trace.objects, &cfg, 1);
        assert_eq!(a.delays, b.delays);
        assert!((a.adversary_total_secs - b.adversary_total_secs).abs() < 1e-9);
    }

    #[test]
    fn strided_sampling_preserves_median() {
        let trace = small_trace();
        let cfg = config();
        let full = replay(&trace, &cfg);
        let keys = trace.requests.iter().map(|r| r.key);
        let strided = replay_keys(keys, trace.objects, &cfg, 16);
        assert_eq!(strided.delays.len(), trace.len().div_ceil(16));
        let m_full = full.median_user_delay_secs();
        let m_strided = strided.median_user_delay_secs();
        assert!(
            (m_full - m_strided).abs() <= m_full.max(0.001) * 0.5,
            "median {m_full} vs strided {m_strided}"
        );
    }

    #[test]
    #[should_panic]
    fn replay_keys_rejects_boundary_decay() {
        let cfg = ReplayConfig {
            decay: DecayMode::PerBoundary {
                rate: 1.5,
                period_secs: 100.0,
            },
            ..config()
        };
        replay_keys(std::iter::once(0u64), 10, &cfg, 1);
    }

    #[test]
    fn higher_cap_scales_adversary_not_median() {
        // Table 2's phenomenon.
        let trace = small_trace();
        let low = replay(&trace, &config());
        let high = replay(
            &trace,
            &ReplayConfig {
                policy: policy().with_cap(100.0),
                ..config()
            },
        );
        assert!(high.adversary_total_secs > low.adversary_total_secs * 5.0);
        let m_low = low.median_user_delay_secs();
        let m_high = high.median_user_delay_secs();
        assert!(
            (m_high - m_low).abs() <= m_low.max(0.001) * 0.5,
            "median roughly unchanged: {m_low} vs {m_high}"
        );
    }
}
