//! Implementation-overhead measurement (paper §4.4, Table 5).
//!
//! The paper poses 100 random single-tuple selection queries and compares
//! the average cost without count maintenance / delay computation against
//! the cost with them. This module reproduces that methodology against the
//! embedded engine: the *baseline* runs plain SQL through
//! [`delayguard_query::Engine`]; the *guarded* run goes through
//! [`delayguard_core::GuardedDatabase`], which additionally maintains
//! per-tuple counts, updates order statistics, and computes the Eq. 1
//! delay (the delay itself is accounted, not slept — Table 5 measures
//! mechanism cost, not the imposed wait).

use crate::metrics::OnlineStats;
use delayguard_core::{GuardConfig, GuardedDatabase};
use delayguard_query::Engine;
use delayguard_workload::Rng;
use std::time::Instant;

/// Configuration of an overhead run.
#[derive(Debug, Clone, Copy)]
pub struct OverheadConfig {
    /// Rows in the table.
    pub rows: u64,
    /// Number of measured selection queries.
    pub queries: u64,
    /// Warm-up queries before measurement starts.
    pub warmup: u64,
    /// RNG seed for query targets.
    pub seed: u64,
}

impl Default for OverheadConfig {
    fn default() -> Self {
        OverheadConfig {
            rows: 10_000,
            // The paper poses 100 random selections; its base query cost
            // was ~55 ms on a 2004 commercial DBMS. Ours is microseconds,
            // so we take more samples for a stable mean.
            queries: 5_000,
            warmup: 500,
            seed: 0x0CEA11,
        }
    }
}

/// Result: per-query latency statistics for both configurations.
#[derive(Debug, Clone)]
pub struct OverheadReport {
    /// Plain engine cost (Table 5 "Base query cost").
    pub base: OnlineStats,
    /// Guarded cost (Table 5 "Total cost").
    pub guarded: OnlineStats,
}

impl OverheadReport {
    /// Mean added cost per query, seconds.
    pub fn overhead_secs(&self) -> f64 {
        self.guarded.mean() - self.base.mean()
    }

    /// Overhead as a fraction of the base cost.
    pub fn overhead_fraction(&self) -> f64 {
        if self.base.mean() <= 0.0 {
            0.0
        } else {
            self.overhead_secs() / self.base.mean()
        }
    }
}

fn build_engine(rows: u64) -> Engine {
    let engine = Engine::new();
    engine
        .execute("CREATE TABLE records (id INT NOT NULL, payload TEXT NOT NULL)")
        .expect("create table");
    engine
        .execute("CREATE UNIQUE INDEX records_pk ON records (id)")
        .expect("create index");
    // Batch inserts for setup speed.
    let mut batch = String::new();
    for id in 0..rows {
        if batch.is_empty() {
            batch.push_str("INSERT INTO records VALUES ");
        } else {
            batch.push(',');
        }
        batch.push_str(&format!("({id}, 'payload-{id}')"));
        if batch.len() > 60_000 || id == rows - 1 {
            engine.execute(&batch).expect("insert batch");
            batch.clear();
        }
    }
    engine
}

/// Run the Table 5 methodology.
///
/// Base and guarded queries are *interleaved* over the same id sequence:
/// with microsecond-scale query costs, two sequential measurement phases
/// would let cache/frequency drift swamp the guard's overhead.
pub fn measure_overhead(config: &OverheadConfig) -> OverheadReport {
    let engine = build_engine(config.rows);
    let guarded_db =
        GuardedDatabase::with_engine(build_engine(config.rows), GuardConfig::paper_default());
    let mut rng = Rng::new(config.seed);
    let mut base = OnlineStats::new();
    let mut guarded = OnlineStats::new();
    for i in 0..config.warmup + config.queries {
        let id = rng.below(config.rows);
        let sql = format!("SELECT * FROM records WHERE id = {id}");

        let start = Instant::now();
        let out = engine.query(&sql).expect("query");
        let dt_base = start.elapsed().as_secs_f64();
        assert_eq!(out.len(), 1, "each selection returns exactly one tuple");

        let start = Instant::now();
        let resp = guarded_db
            .execute_at(&sql, i as f64)
            .expect("guarded query");
        let dt_guarded = start.elapsed().as_secs_f64();
        assert_eq!(resp.tuples_charged, 1);

        if i >= config.warmup {
            base.push(dt_base);
            guarded.push(dt_guarded);
        }
    }
    OverheadReport { base, guarded }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_measurable_and_modest() {
        let report = measure_overhead(&OverheadConfig {
            rows: 2_000,
            queries: 200,
            warmup: 50,
            seed: 1,
        });
        assert_eq!(report.base.count(), 200);
        assert_eq!(report.guarded.count(), 200);
        assert!(report.base.mean() > 0.0);
        // The guard costs something but not an order of magnitude: the
        // paper reports ~20%; we allow a broad band because debug builds
        // and CI noise vary. The key claim is "overheads are small".
        let frac = report.overhead_fraction();
        assert!(frac < 5.0, "overhead fraction {frac} out of band");
    }
}
