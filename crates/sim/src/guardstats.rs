//! Publishing the guard's snapshot-machinery health into a [`Registry`].
//!
//! The guard's lock-free read path trades exactness for bounded
//! staleness, so operators need to *see* the bound being honored: how old
//! the current [`delayguard_core::PolicySnapshot`] is, how many recorded
//! accesses are waiting to be folded in, and how often rebuilds run. The
//! server's refresher thread calls [`GuardStatsPublisher::publish`] once
//! per epoch; simulations can call it ad hoc around experiment phases.

use crate::registry::{Counter, Gauge, Registry};
use delayguard_core::{GuardedDatabase, SnapshotStats};

/// Pre-resolved handles for the snapshot-machinery metrics, so the
/// refresher republishes without touching the registry lock.
#[derive(Debug, Clone)]
pub struct GuardStatsPublisher {
    /// Age of the live policy snapshot, in whole microseconds.
    pub snapshot_age_micros: Gauge,
    /// Snapshot generation counter.
    pub snapshot_version: Gauge,
    /// Recorded access events not yet applied to the master trackers.
    pub pending_events: Gauge,
    /// Snapshot rebuilds performed since the guard started.
    pub rebuilds: Counter,
    /// Events drained into the trackers since the guard started.
    pub events_applied: Counter,
}

impl GuardStatsPublisher {
    /// Resolve every handle against `registry` (creating the metrics).
    pub fn new(registry: &Registry) -> GuardStatsPublisher {
        GuardStatsPublisher {
            snapshot_age_micros: registry.gauge("guard_snapshot_age_micros"),
            snapshot_version: registry.gauge("guard_snapshot_version"),
            pending_events: registry.gauge("guard_pending_events"),
            rebuilds: registry.counter("guard_snapshot_rebuilds_total"),
            events_applied: registry.counter("guard_events_applied_total"),
        }
    }

    /// Publish the guard's current [`SnapshotStats`].
    pub fn publish(&self, db: &GuardedDatabase) -> SnapshotStats {
        let stats = db.snapshot_stats();
        self.publish_stats(&stats);
        stats
    }

    /// Publish an already-sampled [`SnapshotStats`].
    pub fn publish_stats(&self, stats: &SnapshotStats) {
        self.snapshot_age_micros
            .set((stats.age_secs.max(0.0) * 1e6).round() as i64);
        self.snapshot_version
            .set(stats.version.min(i64::MAX as u64) as i64);
        self.pending_events
            .set(stats.pending_events.min(i64::MAX as usize) as i64);
        // Counters are monotone; republish only the delta since last time.
        let applied = self.events_applied.get();
        if stats.events_applied > applied {
            self.events_applied.add(stats.events_applied - applied);
        }
        let rebuilds = self.rebuilds.get();
        if stats.rebuilds > rebuilds {
            self.rebuilds.add(stats.rebuilds - rebuilds);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricValue;
    use delayguard_core::GuardConfig;

    #[test]
    fn publishes_snapshot_health() {
        let db = GuardedDatabase::new(GuardConfig::paper_default());
        db.execute_at("CREATE TABLE t (id INT NOT NULL)", 0.0)
            .unwrap();
        db.execute_at("INSERT INTO t VALUES (1), (2)", 0.0).unwrap();
        db.execute_snapshot_at("SELECT * FROM t WHERE id = 1", 1.0)
            .unwrap();
        db.refresh();

        let registry = Registry::new();
        let pub1 = GuardStatsPublisher::new(&registry);
        let stats = pub1.publish(&db);
        assert!(stats.version >= 1);
        assert_eq!(stats.pending_events, 0);
        match registry.value("guard_snapshot_version") {
            Some(MetricValue::Gauge { value, .. }) => {
                assert_eq!(value, stats.version as i64);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            registry.value("guard_events_applied_total"),
            Some(MetricValue::Counter(n)) if n == stats.events_applied
        ));
    }

    #[test]
    fn republishing_keeps_counters_monotone() {
        let db = GuardedDatabase::new(GuardConfig::paper_default());
        db.execute_at("CREATE TABLE t (id INT NOT NULL)", 0.0)
            .unwrap();
        db.execute_at("INSERT INTO t VALUES (1)", 0.0).unwrap();
        let registry = Registry::new();
        let publisher = GuardStatsPublisher::new(&registry);
        publisher.publish(&db);
        db.execute_snapshot_at("SELECT * FROM t WHERE id = 1", 1.0)
            .unwrap();
        db.refresh();
        let first = publisher.publish(&db).rebuilds;
        // Publishing twice with no new rebuilds must not double-count.
        let again = publisher.publish(&db).rebuilds;
        assert_eq!(first, again);
        assert_eq!(publisher.rebuilds.get(), first);
    }
}
