//! Extraction-attack simulation (paper §4.3 and the adversary columns of
//! Tables 1–4).
//!
//! Runs an adversary through the whole key space, accumulating per-tuple
//! delays into a retrieval schedule, and pairs that schedule with update
//! rates to measure staleness.

use crate::staleness::ExtractionSchedule;
use delayguard_core::{AccessDelayPolicy, UpdateDelayPolicy};
use delayguard_popularity::FrequencyTracker;
use delayguard_workload::{ExtractionOrder, UpdateRates};

/// Result of a full extraction.
#[derive(Debug, Clone)]
pub struct ExtractionReport {
    /// Total delay paid, seconds.
    pub total_delay_secs: f64,
    /// Retrieval schedule (item → completion time).
    pub schedule: ExtractionSchedule,
    /// Maximum possible total (`N · d_max`).
    pub max_possible_secs: f64,
}

impl ExtractionReport {
    /// Fraction of the maximum possible delay actually paid.
    pub fn fraction_of_max(&self) -> f64 {
        if self.max_possible_secs <= 0.0 {
            0.0
        } else {
            self.total_delay_secs / self.max_possible_secs
        }
    }
}

/// Extract every tuple under the access-rate policy with *frozen* learned
/// statistics (the paper computes adversary delay from the counts left by
/// the legitimate trace; the adversary's own probes are not counted as
/// popularity).
pub fn extract_access_based(
    tracker: &FrequencyTracker,
    policy: &AccessDelayPolicy,
    objects: u64,
    order: ExtractionOrder,
) -> ExtractionReport {
    let mut times = vec![0.0; objects as usize];
    let mut now = 0.0;
    for key in order.keys(objects) {
        now += policy.delay(tracker, objects, key);
        times[key as usize] = now;
    }
    ExtractionReport {
        total_delay_secs: now,
        schedule: ExtractionSchedule { times, end: now },
        max_possible_secs: objects as f64 * policy.cap_secs,
    }
}

/// Extract every tuple under the update-rate policy, where each tuple's
/// delay derives from its true update rate (the §4.3 setup: "objects are
/// assigned delays based on their relative rate of updates").
pub fn extract_update_based(
    rates: &UpdateRates,
    policy: &UpdateDelayPolicy,
    order: ExtractionOrder,
) -> ExtractionReport {
    let n = rates.len() as u64;
    let mut times = vec![0.0; rates.len()];
    let mut now = 0.0;
    for key in order.keys(n) {
        now += policy.delay_from_rate(n, rates.rate(key));
        times[key as usize] = now;
    }
    ExtractionReport {
        total_delay_secs: now,
        schedule: ExtractionSchedule { times, end: now },
        max_possible_secs: n as f64 * policy.cap_secs,
    }
}

/// Median delay a legitimate user sees under the update-rate policy with a
/// *uniform* query distribution (the §4.3 user model): the median of the
/// per-item delays.
pub fn uniform_user_median_delay(rates: &UpdateRates, policy: &UpdateDelayPolicy) -> f64 {
    let n = rates.len() as u64;
    let delays: Vec<f64> = (0..n)
        .map(|i| policy.delay_from_rate(n, rates.rate(i)))
        .collect();
    crate::metrics::median_of(delays)
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayguard_core::AccessDelayPolicy;

    fn tracker_zipfish(objects: u64) -> FrequencyTracker {
        let mut t = FrequencyTracker::no_decay();
        for key in 0..objects {
            t.ensure_tracked(key);
        }
        // Low keys popular.
        for key in 0..objects.min(50) {
            for _ in 0..(1000 / (key + 1)) {
                t.record(key);
            }
        }
        t
    }

    #[test]
    fn access_extraction_charges_everything_once() {
        let objects = 500;
        let t = tracker_zipfish(objects);
        let p = AccessDelayPolicy::new(1.0, 1.0).with_cap(10.0);
        let report = extract_access_based(&t, &p, objects, ExtractionOrder::Sequential);
        assert!(report.total_delay_secs > 0.0);
        assert!(report.total_delay_secs <= report.max_possible_secs + 1e-6);
        assert_eq!(report.schedule.times.len(), 500);
        assert_eq!(report.schedule.end, report.total_delay_secs);
        // Most objects were never requested: near the cap for most.
        assert!(report.fraction_of_max() > 0.85);
    }

    #[test]
    fn order_does_not_change_total() {
        let objects = 300;
        let t = tracker_zipfish(objects);
        let p = AccessDelayPolicy::new(1.0, 1.0).with_cap(10.0);
        let a = extract_access_based(&t, &p, objects, ExtractionOrder::Sequential);
        let b = extract_access_based(&t, &p, objects, ExtractionOrder::Shuffled(9));
        assert!((a.total_delay_secs - b.total_delay_secs).abs() < 1e-6);
    }

    #[test]
    fn update_extraction_total_matches_sum() {
        let rates = UpdateRates::zipf(1000, 1.0, 10.0, 5);
        let p = UpdateDelayPolicy::new(1.0).with_cap(10.0);
        let report = extract_update_based(&rates, &p, ExtractionOrder::Sequential);
        let direct: f64 = (0..1000u64)
            .map(|i| p.delay_from_rate(1000, rates.rate(i)))
            .sum();
        assert!((report.total_delay_secs - direct).abs() < 1e-6);
    }

    #[test]
    fn retrieval_times_monotone_in_order() {
        let rates = UpdateRates::zipf(100, 1.5, 5.0, 2);
        let p = UpdateDelayPolicy::new(1.0).with_cap(10.0);
        let report = extract_update_based(&rates, &p, ExtractionOrder::Sequential);
        for w in report.schedule.times.windows(2) {
            assert!(w[0] <= w[1], "sequential order ⇒ increasing times");
        }
    }

    #[test]
    fn staleness_pipeline_matches_eq12() {
        // c = 1, α = 0.5 ⇒ S_max = (1/1.5)^2 ≈ 0.444 (Eq. 12). The
        // Poisson-expected fraction lands near the deterministic bound.
        let alpha = 0.5;
        let rates = UpdateRates::zipf(2_000, alpha, 20.0, 3);
        let p = UpdateDelayPolicy::new(1.0).with_cap(f64::INFINITY);
        let report = extract_update_based(&rates, &p, ExtractionOrder::Sequential);
        let stale = report.schedule.expected_stale_fraction(&rates);
        let predicted = p.smax(alpha);
        assert!(
            (stale - predicted).abs() < 0.15,
            "stale {stale} vs Eq.12 {predicted}"
        );
        // The paper's Eq. 10 criterion (full-window) matches Eq. 12 tightly.
        let paper = report.schedule.paper_stale_fraction(&rates);
        assert!(
            (paper - predicted).abs() < 0.05,
            "paper criterion {paper} vs Eq.12 {predicted}"
        );
        // The per-item exposure refinement is necessarily lower.
        let det = report.schedule.deterministic_stale_fraction(&rates);
        assert!(det <= paper + 1e-12, "exposure {det} > full-window {paper}");
    }

    #[test]
    fn uniform_user_median_is_small_under_skew() {
        let rates = UpdateRates::zipf(1_000, 2.0, 100.0, 4);
        let p = UpdateDelayPolicy::new(1.0).with_cap(10.0);
        let med = uniform_user_median_delay(&rates, &p);
        let report = extract_update_based(&rates, &p, ExtractionOrder::Sequential);
        // The adversary pays the whole sum; the median user pays one
        // median tuple delay. Orders of magnitude apart.
        assert!(report.total_delay_secs / med.max(1e-12) > 100.0);
    }
}
