//! Virtual time.
//!
//! All delays in the evaluation are *accounted*, never slept: the paper's
//! adversary totals run to weeks. A [`VirtualClock`] is a monotone f64 of
//! seconds that workloads and the gatekeeper share.

/// A monotone virtual clock (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VirtualClock {
    now: f64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> VirtualClock {
        VirtualClock { now: 0.0 }
    }

    /// A clock starting at `t`.
    pub fn at(t: f64) -> VirtualClock {
        assert!(t.is_finite());
        VirtualClock { now: t }
    }

    /// Current time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advance by `dt` seconds.
    ///
    /// # Panics
    /// If `dt` is negative or not finite.
    pub fn advance(&mut self, dt: f64) {
        assert!(dt >= 0.0 && dt.is_finite(), "time must move forward");
        self.now += dt;
    }

    /// Jump to an absolute time not before the current one.
    pub fn advance_to(&mut self, t: f64) {
        assert!(t >= self.now, "clock cannot go backwards");
        self.now = t;
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        VirtualClock::new()
    }
}

/// Convenient time-unit conversions for reporting.
pub mod units {
    /// Seconds per hour.
    pub const HOUR: f64 = 3600.0;
    /// Seconds per day.
    pub const DAY: f64 = 24.0 * HOUR;
    /// Seconds per week.
    pub const WEEK: f64 = 7.0 * DAY;

    /// Seconds → hours.
    pub fn to_hours(secs: f64) -> f64 {
        secs / HOUR
    }

    /// Seconds → weeks.
    pub fn to_weeks(secs: f64) -> f64 {
        secs / WEEK
    }

    /// Seconds → milliseconds.
    pub fn to_millis(secs: f64) -> f64 {
        secs * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances() {
        let mut c = VirtualClock::new();
        c.advance(1.5);
        c.advance(0.0);
        assert_eq!(c.now(), 1.5);
        c.advance_to(10.0);
        assert_eq!(c.now(), 10.0);
    }

    #[test]
    #[should_panic]
    fn backwards_rejected() {
        let mut c = VirtualClock::at(5.0);
        c.advance_to(4.0);
    }

    #[test]
    #[should_panic]
    fn negative_dt_rejected() {
        VirtualClock::new().advance(-1.0);
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(units::to_hours(7200.0), 2.0);
        assert_eq!(units::to_weeks(units::WEEK * 3.0), 3.0);
        assert_eq!(units::to_millis(0.25), 250.0);
    }
}
