//! Event-accurate mixed workload simulation (paper §4.3).
//!
//! The §4.3 experiment "simultaneously posed queries and posted updates"
//! against a 100,000-tuple relation. [`crate::extraction`] computes the
//! same quantities analytically from rates; this module runs the actual
//! discrete-event race on the [`crate::events::EventQueue`]: Poisson
//! queries from legitimate users, Poisson updates with skewed rates, and
//! an adversary whose next fetch is scheduled after the current tuple's
//! delay elapses. Staleness is then *observed* (a fetched value was
//! overwritten before the extraction finished), not estimated.

use crate::events::EventQueue;
use delayguard_core::UpdateDelayPolicy;
use delayguard_workload::{Rng, UpdateRates};

/// Events racing in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A legitimate user's query (uniform over items).
    UserQuery,
    /// An update to some item (chosen by rate-weighted sampling).
    Update,
    /// The adversary's delayed fetch of item at this position of its scan
    /// completes.
    AdversaryFetch { position: usize },
}

/// Configuration of a mixed run.
#[derive(Debug, Clone, Copy)]
pub struct MixedConfig {
    /// Aggregate legitimate query rate (queries/sec), uniform over items.
    pub user_query_rate: f64,
    /// Update-rate delay policy.
    pub policy: UpdateDelayPolicy,
    /// RNG seed.
    pub seed: u64,
}

/// Results of one mixed run.
#[derive(Debug, Clone)]
pub struct MixedReport {
    /// Per-user-query delays charged during the run.
    pub user_delays: Vec<f64>,
    /// When the adversary finished (seconds).
    pub extraction_end: f64,
    /// Observed fraction of the adversary's copy overwritten before the
    /// end of extraction.
    pub observed_stale_fraction: f64,
    /// Total updates applied during the run.
    pub updates_applied: u64,
}

impl MixedReport {
    /// Median legitimate-user delay.
    pub fn median_user_delay_secs(&self) -> f64 {
        crate::metrics::median_of(self.user_delays.clone())
    }
}

/// Run queries, updates, and a full sequential extraction concurrently
/// under a virtual clock until the extraction completes.
pub fn run_mixed(rates: &UpdateRates, config: &MixedConfig) -> MixedReport {
    let n = rates.len();
    let n_u64 = n as u64;
    let mut rng = Rng::new(config.seed);
    let update_sampler = delayguard_workload::AliasTable::new(rates.rates());
    let total_update_rate = rates.total_rate();

    // Version counters: bumped on update; the adversary records the
    // version it saw. An item is stale if its version moved afterwards.
    let mut version = vec![0u64; n];
    let mut seen_version: Vec<Option<u64>> = vec![None; n];

    let mut queue: EventQueue<Event> = EventQueue::new();
    // Prime the recurring processes.
    queue.push(rng.exponential(config.user_query_rate), Event::UserQuery);
    queue.push(rng.exponential(total_update_rate), Event::Update);
    // The adversary starts immediately; its first fetch completes after
    // the first tuple's delay.
    let first_delay = config.policy.delay_from_rate(n_u64, rates.rate(0));
    queue.push(first_delay, Event::AdversaryFetch { position: 0 });

    let mut user_delays = Vec::new();
    let mut updates_applied = 0u64;
    let mut extraction_end = 0.0;

    while let Some((now, event)) = queue.pop() {
        match event {
            Event::UserQuery => {
                let item = rng.below(n_u64);
                user_delays.push(config.policy.delay_from_rate(n_u64, rates.rate(item)));
                queue.push(
                    now + rng.exponential(config.user_query_rate),
                    Event::UserQuery,
                );
            }
            Event::Update => {
                let item = update_sampler.sample(&mut rng);
                version[item] += 1;
                updates_applied += 1;
                queue.push(now + rng.exponential(total_update_rate), Event::Update);
            }
            Event::AdversaryFetch { position } => {
                // The fetch of item `position` completes now.
                seen_version[position] = Some(version[position]);
                let next = position + 1;
                if next < n {
                    let d = config
                        .policy
                        .delay_from_rate(n_u64, rates.rate(next as u64));
                    queue.push(now + d, Event::AdversaryFetch { position: next });
                } else {
                    extraction_end = now;
                    break; // extraction complete: stop the world
                }
            }
        }
    }

    let stale = seen_version
        .iter()
        .enumerate()
        .filter(|&(item, seen)| match seen {
            Some(v) => version[item] > *v,
            None => false,
        })
        .count();
    MixedReport {
        user_delays,
        extraction_end,
        observed_stale_fraction: stale as f64 / n as f64,
        updates_applied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extraction::extract_update_based;
    use delayguard_workload::ExtractionOrder;

    fn setup(alpha: f64) -> (UpdateRates, MixedConfig) {
        let n = 5_000u64;
        let rates = UpdateRates::zipf(n, alpha, n as f64, 3);
        let config = MixedConfig {
            user_query_rate: 50.0,
            policy: UpdateDelayPolicy::new(2.0).with_cap(10.0),
            seed: 11,
        };
        (rates, config)
    }

    #[test]
    fn extraction_end_matches_analytic_total() {
        let (rates, config) = setup(1.0);
        let report = run_mixed(&rates, &config);
        let analytic = extract_update_based(&rates, &config.policy, ExtractionOrder::Sequential)
            .total_delay_secs;
        let rel = (report.extraction_end - analytic).abs() / analytic;
        assert!(
            rel < 1e-9,
            "event sim {} vs sum {}",
            report.extraction_end,
            analytic
        );
    }

    #[test]
    fn observed_staleness_tracks_expected() {
        let (rates, config) = setup(1.0);
        let report = run_mixed(&rates, &config);
        let schedule =
            extract_update_based(&rates, &config.policy, ExtractionOrder::Sequential).schedule;
        let expected = schedule.expected_stale_fraction(&rates);
        assert!(
            (report.observed_stale_fraction - expected).abs() < 0.05,
            "observed {} vs expected {}",
            report.observed_stale_fraction,
            expected
        );
        assert!(report.updates_applied > 0);
    }

    #[test]
    fn user_queries_interleave_and_stay_fast() {
        let (rates, config) = setup(2.0);
        let report = run_mixed(&rates, &config);
        assert!(
            !report.user_delays.is_empty(),
            "users got queries in during extraction"
        );
        // Uniform users mostly hit low-delay (frequently updated) items
        // less often than high-delay ones... their *median* is the median
        // per-item delay, far below the adversary's mean per-item cost.
        let med = report.median_user_delay_secs();
        let adversary_mean = report.extraction_end / rates.len() as f64;
        assert!(
            med <= adversary_mean,
            "median {med} vs mean {adversary_mean}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (rates, config) = setup(1.5);
        let a = run_mixed(&rates, &config);
        let b = run_mixed(&rates, &config);
        assert_eq!(a.extraction_end, b.extraction_end);
        assert_eq!(a.observed_stale_fraction, b.observed_stale_fraction);
        assert_eq!(a.updates_applied, b.updates_applied);
    }

    #[test]
    fn high_skew_reduces_observed_staleness() {
        let (low_rates, config) = setup(0.25);
        let (high_rates, _) = setup(2.5);
        let low = run_mixed(&low_rates, &config);
        let high = run_mixed(&high_rates, &config);
        assert!(
            low.observed_stale_fraction > high.observed_stale_fraction,
            "low {} vs high {}",
            low.observed_stale_fraction,
            high.observed_stale_fraction
        );
    }
}
