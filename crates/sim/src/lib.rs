//! # delayguard-sim
//!
//! Virtual-clock simulation of the paper's evaluation (§4):
//!
//! * [`clock`] / [`events`] — virtual time and a discrete-event queue.
//! * [`metrics`] — online mean/stdev (Welford) and exact quantiles; the
//!   paper reports *medians* for users and totals for adversaries.
//! * [`replay`] — replay a workload trace through the learn→rank→delay
//!   pipeline (Tables 1–4).
//! * [`extraction`] — full-database extraction under either policy,
//!   producing delay totals and retrieval schedules (Figures 4–5).
//! * [`staleness`] — expected / simulated stale fractions of an extracted
//!   copy (Figure 6).
//! * [`overhead`] — the §4.4 mechanism-cost methodology (Table 5).
//! * [`registry`] — lock-free counters/gauges shared with
//!   `delayguard-server`'s `STATS` endpoint.
//! * [`guardstats`] — publishes the guard's snapshot-machinery health
//!   (snapshot age, pending events, rebuilds) into a [`Registry`].
//! * [`report`] — plain-text table rendering for the harness.

#![forbid(unsafe_code)]

pub mod clock;
pub mod events;
pub mod extraction;
pub mod guardstats;
pub mod metrics;
pub mod mixed;
pub mod overhead;
pub mod registry;
pub mod replay;
pub mod report;
pub mod staleness;

pub use clock::{units, VirtualClock};
pub use events::EventQueue;
pub use extraction::{
    extract_access_based, extract_update_based, uniform_user_median_delay, ExtractionReport,
};
pub use guardstats::GuardStatsPublisher;
pub use metrics::{median_of, OnlineStats, Quantiles};
pub use mixed::{run_mixed, MixedConfig, MixedReport};
pub use overhead::{measure_overhead, OverheadConfig, OverheadReport};
pub use registry::{Counter, Gauge, MetricValue, Registry};
pub use replay::{replay, replay_keys, DecayMode, ReplayConfig, ReplayResult};
pub use report::{fmt_dollars, fmt_pct, fmt_secs, TableBuilder};
pub use staleness::ExtractionSchedule;
