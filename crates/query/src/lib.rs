//! # delayguard-query
//!
//! A SQL-subset query engine over [`delayguard_storage`]: lexer, parser,
//! expression evaluator with SQL three-valued logic, a rule-based planner
//! that exploits B-tree indexes, and an executor.
//!
//! The dialect covers exactly what the paper's workloads need:
//!
//! * `CREATE TABLE` / `CREATE [UNIQUE] INDEX` / `DROP TABLE`
//! * `INSERT INTO t VALUES (...), (...)`
//! * `SELECT cols|* FROM t [WHERE ...] [ORDER BY col [ASC|DESC]] [LIMIT n]`
//! * `UPDATE t SET col = expr, ... [WHERE ...]`
//! * `DELETE FROM t [WHERE ...]`
//!
//! Crucially for the delay defense, [`exec::SelectOutput`] keeps the
//! [`delayguard_storage::RowId`] of every returned tuple so the guard layer
//! can charge per-tuple delays and maintain per-tuple popularity counts.
//!
//! ```
//! use delayguard_query::Engine;
//!
//! let e = Engine::new();
//! e.execute("CREATE TABLE t (id INT NOT NULL, name TEXT)").unwrap();
//! e.execute("CREATE UNIQUE INDEX t_pk ON t (id)").unwrap();
//! e.execute("INSERT INTO t VALUES (1, 'ann'), (2, 'bob')").unwrap();
//! let out = e.query("SELECT name FROM t WHERE id = 2").unwrap();
//! assert_eq!(out.len(), 1);
//! ```

#![forbid(unsafe_code)]

pub mod ast;
pub mod engine;
pub mod error;
pub mod exec;
pub mod expr;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod planner;
pub mod token;

pub use engine::{Engine, PreparedSelect, StatementOutput, StreamedStatement};
pub use error::{QueryError, Result};
pub use exec::{open_select, ExecScratch, RowBuf, RowStream, SelectCursor, SelectOutput};
pub use parser::{parse, parse_expr};
