//! Physical plans for SELECT (and the row-location phase of UPDATE/DELETE).

use crate::expr::BoundExpr;
use delayguard_storage::IndexKey;
use std::ops::Bound;

/// How matching rows are located.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Scan every live row.
    FullScan,
    /// Exact-match lookup on an index over `columns`.
    IndexEq { columns: Vec<usize>, key: IndexKey },
    /// Range scan on a single-column index.
    IndexRange {
        columns: Vec<usize>,
        lo: Bound<IndexKey>,
        hi: Bound<IndexKey>,
    },
}

impl AccessPath {
    /// Whether this path uses an index.
    pub fn is_indexed(&self) -> bool {
        !matches!(self, AccessPath::FullScan)
    }
}

/// A fully-bound SELECT plan.
///
/// The residual `filter` is the *entire* WHERE clause, re-evaluated on
/// candidate rows whenever the access path might be imprecise — except
/// when the planner proved the probe returns exactly the satisfying rows,
/// in which case `filter` is `None` and candidate rows pass untouched
/// (see the coverage rules in the planner module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectPlan {
    pub access: AccessPath,
    pub filter: Option<BoundExpr>,
    /// Output column positions (in schema order for `SELECT *`).
    pub projection: Vec<usize>,
    /// Names matching `projection`, for result presentation.
    pub output_names: Vec<String>,
    /// Sort key position and direction.
    pub order_by: Option<(usize, bool)>,
    pub limit: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexed_classification() {
        assert!(!AccessPath::FullScan.is_indexed());
        assert!(AccessPath::IndexEq {
            columns: vec![0],
            key: vec![]
        }
        .is_indexed());
    }
}
