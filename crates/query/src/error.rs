//! Query-layer errors.

use delayguard_storage::StorageError;
use std::fmt;

/// Errors produced while lexing, parsing, planning, or executing queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Lexical error at a byte offset.
    Lex { offset: usize, message: String },
    /// Syntax error with a human-readable description.
    Parse(String),
    /// Semantic error (unknown column, type misuse in an expression, ...).
    Semantic(String),
    /// Error surfaced from the storage layer.
    Storage(StorageError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { offset, message } => {
                write!(f, "lex error at byte {offset}: {message}")
            }
            QueryError::Parse(m) => write!(f, "parse error: {m}"),
            QueryError::Semantic(m) => write!(f, "semantic error: {m}"),
            QueryError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for QueryError {
    fn from(e: StorageError) -> Self {
        QueryError::Storage(e)
    }
}

/// Result alias for query operations.
pub type Result<T> = std::result::Result<T, QueryError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(QueryError::Parse("x".into()).to_string().contains("parse"));
        assert!(QueryError::Lex {
            offset: 3,
            message: "bad".into()
        }
        .to_string()
        .contains("byte 3"));
        let e: QueryError = StorageError::TableNotFound("t".into()).into();
        assert!(e.to_string().contains("storage"));
    }

    #[test]
    fn source_chains_storage() {
        use std::error::Error;
        let e: QueryError = StorageError::TableNotFound("t".into()).into();
        assert!(e.source().is_some());
        assert!(QueryError::Parse("p".into()).source().is_none());
    }
}
