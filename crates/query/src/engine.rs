//! The query engine: parse → plan → execute against a shared catalog.

use crate::ast::{Expr, OrderBy, Projection, Statement};
use crate::error::{QueryError, Result};
use crate::exec::{
    const_eval, open_select, run_delete, run_select, run_update, ExecScratch, SelectCursor,
    SelectOutput,
};
use crate::parser::parse;
use crate::plan::SelectPlan;
use crate::planner::{plan_locate, plan_select};
use delayguard_storage::{Catalog, Column, Row, RowId, Schema};
use std::sync::Arc;

/// The outcome of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementOutput {
    /// `CREATE TABLE` succeeded.
    TableCreated,
    /// `CREATE INDEX` succeeded.
    IndexCreated,
    /// `DROP TABLE` succeeded.
    TableDropped,
    /// Rows inserted, with their new RowIds.
    Inserted { rids: Vec<RowId> },
    /// Rows updated, with their (possibly relocated) RowIds.
    Updated { rids: Vec<RowId> },
    /// Rows deleted, with their former RowIds.
    Deleted { rids: Vec<RowId> },
    /// SELECT result set.
    Rows(SelectOutput),
}

impl StatementOutput {
    /// Number of rows affected or returned.
    pub fn row_count(&self) -> usize {
        match self {
            StatementOutput::Inserted { rids }
            | StatementOutput::Updated { rids }
            | StatementOutput::Deleted { rids } => rids.len(),
            StatementOutput::Rows(out) => out.len(),
            _ => 0,
        }
    }

    /// The SELECT output, if this was a SELECT.
    pub fn rows(&self) -> Option<&SelectOutput> {
        match self {
            StatementOutput::Rows(out) => Some(out),
            _ => None,
        }
    }
}

/// A statement being executed in streaming mode.
///
/// SELECTs expose an open [`SelectCursor`] to pull rows from; every other
/// statement runs to completion eagerly (DML has no row stream to speak
/// of) and hands back its finished output.
pub enum StreamedStatement<'a> {
    /// An open SELECT pipeline; pull rows with [`SelectCursor::next_row`].
    Rows(SelectCursor<'a>),
    /// A non-SELECT statement that already ran to completion.
    Finished(StatementOutput),
}

/// A SELECT parsed, bound, and planned once, for repeated execution.
///
/// The cached plan is validated against the table's DDL *and* data
/// versions on every execution: two u64 compares in the common case, a
/// transparent replan when an index was created/dropped, the table was
/// rebuilt, or any row was inserted/updated/deleted since planning (the
/// planner's derived statistics and located row sets go stale with the
/// data, not just the schema). Together with [`ExecScratch`], repeated
/// execution of a prepared statement is allocation-free on index access
/// paths.
pub struct PreparedSelect {
    table: String,
    projection: Projection,
    filter: Option<Expr>,
    order_by: Option<OrderBy>,
    limit: Option<u64>,
    plan: SelectPlan,
    ddl_version: u64,
    data_version: u64,
}

impl PreparedSelect {
    /// The table this statement reads.
    pub fn table(&self) -> &str {
        &self.table
    }
}

/// A SQL engine bound to a catalog.
///
/// `Engine` is cheap to clone (it shares the catalog) and safe to use from
/// multiple threads; per-statement locking is at table granularity.
#[derive(Clone)]
pub struct Engine {
    catalog: Arc<Catalog>,
}

impl Engine {
    /// An engine over a fresh, empty catalog.
    pub fn new() -> Engine {
        Engine {
            catalog: Arc::new(Catalog::new()),
        }
    }

    /// An engine over an existing catalog (e.g. loaded from a snapshot).
    pub fn with_catalog(catalog: Arc<Catalog>) -> Engine {
        Engine { catalog }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Parse and execute one SQL statement.
    pub fn execute(&self, sql: &str) -> Result<StatementOutput> {
        let stmt = parse(sql)?;
        self.execute_stmt(&stmt)
    }

    /// Execute a pre-parsed statement (hot paths can cache the parse).
    pub fn execute_stmt(&self, stmt: &Statement) -> Result<StatementOutput> {
        match stmt {
            Statement::CreateTable { name, columns } => {
                let cols = columns
                    .iter()
                    .map(|c| Column {
                        name: c.name.clone(),
                        dtype: c.dtype,
                        not_null: c.not_null,
                    })
                    .collect();
                let schema = Schema::new(cols)?;
                self.catalog.create_table(name, schema)?;
                Ok(StatementOutput::TableCreated)
            }
            Statement::CreateIndex {
                name,
                table,
                columns,
                unique,
            } => {
                let t = self.catalog.table(table)?;
                let col_refs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
                t.write().create_index(name, &col_refs, *unique)?;
                Ok(StatementOutput::IndexCreated)
            }
            Statement::DropTable { name } => {
                self.catalog.drop_table(name)?;
                Ok(StatementOutput::TableDropped)
            }
            Statement::Insert { table, rows } => {
                let t = self.catalog.table(table)?;
                let mut t = t.write();
                let mut rids = Vec::with_capacity(rows.len());
                for exprs in rows {
                    let mut values = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        values.push(const_eval(e)?);
                    }
                    rids.push(t.insert(Row::new(values))?);
                }
                Ok(StatementOutput::Inserted { rids })
            }
            Statement::Select {
                table,
                projection,
                filter,
                order_by,
                limit,
            } => {
                let t = self.catalog.table(table)?;
                let mut t = t.write();
                let plan = plan_select(&t, projection, filter.as_ref(), order_by.as_ref(), *limit)?;
                let out = run_select(&mut t, &plan)?;
                Ok(StatementOutput::Rows(out))
            }
            Statement::Update {
                table,
                assignments,
                filter,
            } => {
                let t = self.catalog.table(table)?;
                let mut t = t.write();
                let (access, bound_filter) = plan_locate(&t, filter.as_ref())?;
                let schema = t.schema().clone();
                let mut bound_assignments = Vec::with_capacity(assignments.len());
                for (col, e) in assignments {
                    let idx = schema.index_of(col)?;
                    bound_assignments.push((idx, crate::expr::bind(e, &schema)?));
                }
                let rids = run_update(&mut t, &access, bound_filter.as_ref(), &bound_assignments)?;
                Ok(StatementOutput::Updated { rids })
            }
            Statement::Delete { table, filter } => {
                let t = self.catalog.table(table)?;
                let mut t = t.write();
                let (access, bound_filter) = plan_locate(&t, filter.as_ref())?;
                let rids = run_delete(&mut t, &access, bound_filter.as_ref())?;
                Ok(StatementOutput::Deleted { rids })
            }
        }
    }

    /// Parse and execute one statement in streaming mode.
    ///
    /// See [`Engine::execute_stmt_streaming`].
    pub fn execute_streaming<R>(
        &self,
        sql: &str,
        f: impl FnOnce(&mut StreamedStatement<'_>) -> R,
    ) -> Result<R> {
        let stmt = parse(sql)?;
        self.execute_stmt_streaming(&stmt, f)
    }

    /// Execute a statement in streaming mode: a SELECT is handed to `f`
    /// as an open [`SelectCursor`] instead of a materialized result set.
    ///
    /// The table's write lock is held for the duration of `f`, exactly as
    /// it is held across `run_select` on the materialized path — the
    /// stream is a different shape for the same critical section, so `f`
    /// must not call back into this engine for the same table. Rows read
    /// are recorded when `f` returns; a partially-consumed cursor charges
    /// only the rows it actually yielded.
    pub fn execute_stmt_streaming<R>(
        &self,
        stmt: &Statement,
        f: impl FnOnce(&mut StreamedStatement<'_>) -> R,
    ) -> Result<R> {
        match stmt {
            Statement::Select {
                table,
                projection,
                filter,
                order_by,
                limit,
            } => {
                let t = self.catalog.table(table)?;
                let mut t = t.write();
                let plan = plan_select(&t, projection, filter.as_ref(), order_by.as_ref(), *limit)?;
                let mut scratch = ExecScratch::new();
                let (result, yielded) = {
                    let cursor = open_select(&t, &plan, &mut scratch)?;
                    let mut streamed = StreamedStatement::Rows(cursor);
                    let result = f(&mut streamed);
                    let yielded = match &streamed {
                        StreamedStatement::Rows(c) => c.rows_yielded(),
                        StreamedStatement::Finished(_) => 0,
                    };
                    (result, yielded)
                };
                t.record_reads(yielded);
                Ok(result)
            }
            other => {
                let out = self.execute_stmt(other)?;
                let mut streamed = StreamedStatement::Finished(out);
                Ok(f(&mut streamed))
            }
        }
    }

    /// Prepare a SELECT for repeated execution: parse, bind, and plan now
    /// so [`Engine::execute_prepared_streaming`] does neither per query.
    pub fn prepare_select(&self, sql: &str) -> Result<PreparedSelect> {
        let stmt = parse(sql)?;
        let Statement::Select {
            table,
            projection,
            filter,
            order_by,
            limit,
        } = stmt
        else {
            return Err(QueryError::Semantic(
                "only SELECT statements can be prepared".into(),
            ));
        };
        let t = self.catalog.table(&table)?;
        let t = t.read();
        let plan = plan_select(&t, &projection, filter.as_ref(), order_by.as_ref(), limit)?;
        let ddl_version = t.ddl_version();
        let data_version = t.data_version();
        Ok(PreparedSelect {
            table,
            projection,
            filter,
            order_by,
            limit,
            plan,
            ddl_version,
            data_version,
        })
    }

    /// Execute a prepared SELECT in streaming mode.
    ///
    /// Identical locking and charging semantics to
    /// [`Engine::execute_stmt_streaming`], but the plan is reused (after a
    /// DDL-version check) and every buffer comes from `scratch`, so the
    /// steady-state path performs no parsing, no planning, and no
    /// allocation on index access paths.
    pub fn execute_prepared_streaming<R>(
        &self,
        prep: &mut PreparedSelect,
        scratch: &mut ExecScratch,
        f: impl FnOnce(&mut StreamedStatement<'_>) -> R,
    ) -> Result<R> {
        let t = self.catalog.table(&prep.table)?;
        let mut t = t.write();
        if t.ddl_version() != prep.ddl_version || t.data_version() != prep.data_version {
            prep.plan = plan_select(
                &t,
                &prep.projection,
                prep.filter.as_ref(),
                prep.order_by.as_ref(),
                prep.limit,
            )?;
            prep.ddl_version = t.ddl_version();
            prep.data_version = t.data_version();
        }
        let (result, yielded) = {
            let cursor = open_select(&t, &prep.plan, scratch)?;
            let mut streamed = StreamedStatement::Rows(cursor);
            let result = f(&mut streamed);
            let yielded = match &streamed {
                StreamedStatement::Rows(c) => c.rows_yielded(),
                StreamedStatement::Finished(_) => 0,
            };
            (result, yielded)
        };
        t.record_reads(yielded);
        Ok(result)
    }

    /// Convenience: run a SELECT and return just its output, erroring if the
    /// statement is not a SELECT.
    pub fn query(&self, sql: &str) -> Result<SelectOutput> {
        match self.execute(sql)? {
            StatementOutput::Rows(out) => Ok(out),
            other => Err(QueryError::Semantic(format!(
                "expected a SELECT, statement produced {other:?}"
            ))),
        }
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delayguard_storage::Value;

    fn engine_with_movies() -> Engine {
        let e = Engine::new();
        e.execute("CREATE TABLE movies (id INT NOT NULL, title TEXT NOT NULL, gross FLOAT)")
            .unwrap();
        e.execute("CREATE UNIQUE INDEX movies_pk ON movies (id)")
            .unwrap();
        e.execute(
            "INSERT INTO movies VALUES \
             (1, 'Spider-Man', 403.7), (2, 'Two Towers', 339.8), (3, 'Attack of the Clones', 302.2)",
        )
        .unwrap();
        e
    }

    #[test]
    fn end_to_end_select() {
        let e = engine_with_movies();
        let out = e.query("SELECT title FROM movies WHERE id = 2").unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(
            out.rows[0].1.get(0),
            Some(&Value::Text("Two Towers".into()))
        );
    }

    #[test]
    fn insert_reports_rids() {
        let e = engine_with_movies();
        let out = e
            .execute("INSERT INTO movies VALUES (4, 'Signs', 228.0)")
            .unwrap();
        assert_eq!(out.row_count(), 1);
        assert!(matches!(out, StatementOutput::Inserted { .. }));
    }

    #[test]
    fn update_and_delete() {
        let e = engine_with_movies();
        let out = e
            .execute("UPDATE movies SET gross = gross + 1.0 WHERE id = 1")
            .unwrap();
        assert_eq!(out.row_count(), 1);
        let rows = e.query("SELECT gross FROM movies WHERE id = 1").unwrap();
        assert_eq!(rows.rows[0].1.get(0), Some(&Value::Float(404.7)));
        let out = e.execute("DELETE FROM movies WHERE id = 3").unwrap();
        assert_eq!(out.row_count(), 1);
        assert_eq!(e.query("SELECT * FROM movies").unwrap().len(), 2);
    }

    #[test]
    fn unique_violation_surfaces() {
        let e = engine_with_movies();
        let err = e
            .execute("INSERT INTO movies VALUES (1, 'Dup', 0.0)")
            .unwrap_err();
        assert!(err.to_string().contains("unique"));
    }

    #[test]
    fn null_and_not_null() {
        let e = engine_with_movies();
        e.execute("INSERT INTO movies VALUES (9, 'NoGross', NULL)")
            .unwrap();
        let err = e
            .execute("INSERT INTO movies VALUES (10, NULL, 1.0)")
            .unwrap_err();
        assert!(err.to_string().contains("NOT NULL"));
    }

    #[test]
    fn drop_table() {
        let e = engine_with_movies();
        e.execute("DROP TABLE movies").unwrap();
        assert!(e.query("SELECT * FROM movies").is_err());
    }

    #[test]
    fn query_rejects_non_select() {
        let e = engine_with_movies();
        assert!(e.query("DELETE FROM movies").is_err());
    }

    #[test]
    fn engine_is_cloneable_and_shares_state() {
        let e = engine_with_movies();
        let e2 = e.clone();
        e2.execute("INSERT INTO movies VALUES (5, 'Ice Age', 176.0)")
            .unwrap();
        assert_eq!(e.query("SELECT * FROM movies").unwrap().len(), 4);
    }

    #[test]
    fn prepared_select_matches_adhoc_and_reuses_scratch() {
        let e = engine_with_movies();
        let mut prep = e
            .prepare_select("SELECT title FROM movies WHERE id >= 1 AND id < 3")
            .unwrap();
        let mut scratch = ExecScratch::new();
        let adhoc = e
            .query("SELECT title FROM movies WHERE id >= 1 AND id < 3")
            .unwrap();
        for _ in 0..3 {
            let rows = e
                .execute_prepared_streaming(&mut prep, &mut scratch, |s| {
                    let StreamedStatement::Rows(cursor) = s else {
                        panic!("expected rows");
                    };
                    let mut rows = Vec::new();
                    while let Some(pair) = cursor.next_row().unwrap() {
                        rows.push(pair);
                    }
                    rows
                })
                .unwrap();
            assert_eq!(rows, adhoc.rows);
        }
    }

    #[test]
    fn prepared_select_replans_after_ddl() {
        let e = engine_with_movies();
        let mut prep = e
            .prepare_select("SELECT id FROM movies WHERE title = 'Two Towers'")
            .unwrap();
        // A new index changes the best access path; the prepared statement
        // must notice and still return correct results.
        e.execute("CREATE INDEX movies_title ON movies (title)")
            .unwrap();
        let mut scratch = ExecScratch::new();
        let count = e
            .execute_prepared_streaming(&mut prep, &mut scratch, |s| {
                let StreamedStatement::Rows(cursor) = s else {
                    panic!("expected rows");
                };
                let mut n = 0;
                while cursor.next_row().unwrap().is_some() {
                    n += 1;
                }
                n
            })
            .unwrap();
        assert_eq!(count, 1);
        assert!(matches!(
            prep.plan.access,
            crate::plan::AccessPath::IndexEq { .. }
        ));
    }

    #[test]
    fn prepared_select_sees_rows_mutated_after_prepare() {
        let e = engine_with_movies();
        let mut prep = e
            .prepare_select("SELECT title FROM movies WHERE id = 9")
            .unwrap();
        let mut scratch = ExecScratch::new();
        let collect = |s: &mut StreamedStatement<'_>| {
            let StreamedStatement::Rows(cursor) = s else {
                panic!("expected rows");
            };
            let mut rows = Vec::new();
            while let Some(pair) = cursor.next_row().unwrap() {
                rows.push(pair);
            }
            rows
        };
        let before = e
            .execute_prepared_streaming(&mut prep, &mut scratch, collect)
            .unwrap();
        assert!(before.is_empty());
        // A row inserted after preparation must be visible on the next
        // execution: the data-version check forces a replan over the
        // mutated index instead of reusing a stale located plan.
        e.execute("INSERT INTO movies VALUES (9, 'Late Arrival', 2004.0)")
            .unwrap();
        let after = e
            .execute_prepared_streaming(&mut prep, &mut scratch, collect)
            .unwrap();
        assert_eq!(after.len(), 1);
        // And a delete disappears the same way.
        e.execute("DELETE FROM movies WHERE id = 9").unwrap();
        let gone = e
            .execute_prepared_streaming(&mut prep, &mut scratch, collect)
            .unwrap();
        assert!(gone.is_empty());
    }

    #[test]
    fn prepare_rejects_non_select() {
        let e = engine_with_movies();
        assert!(e.prepare_select("DELETE FROM movies").is_err());
        assert!(e.prepare_select("SELECT * FROM missing").is_err());
    }

    #[test]
    fn concurrent_queries() {
        let e = engine_with_movies();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let e = e.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let out = e.query("SELECT * FROM movies WHERE id = 1").unwrap();
                    assert_eq!(out.len(), 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
