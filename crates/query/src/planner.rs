//! A rule-based planner: picks an index access path from the WHERE clause.
//!
//! Strategy: split the WHERE clause into top-level conjuncts. If some
//! conjunct is `col = literal` and an index exists whose key is exactly
//! `[col]` (or all columns of a composite index are equality-constrained),
//! use an [`AccessPath::IndexEq`]. Otherwise, if range conjuncts
//! (`<`, `<=`, `>`, `>=`) constrain a single-column index, use an
//! [`AccessPath::IndexRange`]. Otherwise fall back to a full scan. The full
//! WHERE clause is always kept as a residual filter.

use crate::ast::{BinOp, Expr, OrderBy, Projection};
use crate::error::{QueryError, Result};
use crate::expr::{bind, BoundExpr};
use crate::plan::{AccessPath, SelectPlan};
use delayguard_storage::{IndexDef, Schema, Table, Value};
use std::ops::Bound;

/// Build a plan for a SELECT's pieces against a table.
pub fn plan_select(
    table: &Table,
    projection: &Projection,
    filter: Option<&Expr>,
    order_by: Option<&OrderBy>,
    limit: Option<u64>,
) -> Result<SelectPlan> {
    let schema = table.schema();
    let (projection_idx, output_names) = resolve_projection(schema, projection)?;
    let bound_filter = filter.map(|f| bind(f, schema)).transpose()?;
    let access = filter
        .map(|f| choose_access(schema, &table.index_defs(), f))
        .transpose()?
        .flatten()
        .unwrap_or(AccessPath::FullScan);
    let order = order_by
        .map(|ob| Ok::<_, QueryError>((schema.index_of(&ob.column)?, ob.ascending)))
        .transpose()?;
    Ok(SelectPlan {
        access,
        filter: bound_filter,
        projection: projection_idx,
        output_names,
        order_by: order,
        limit,
    })
}

fn resolve_projection(
    schema: &Schema,
    projection: &Projection,
) -> Result<(Vec<usize>, Vec<String>)> {
    match projection {
        Projection::All => Ok((
            (0..schema.arity()).collect(),
            schema.columns().iter().map(|c| c.name.clone()).collect(),
        )),
        Projection::Columns(names) => {
            let mut idx = Vec::with_capacity(names.len());
            for n in names {
                idx.push(schema.index_of(n)?);
            }
            Ok((idx, names.clone()))
        }
    }
}

/// A `col op literal` conjunct usable for index selection.
#[derive(Debug)]
struct Constraint {
    column: usize,
    op: BinOp,
    value: Value,
}

/// Split `expr` into top-level AND conjuncts.
fn conjuncts(expr: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    let mut stack = vec![expr];
    while let Some(e) = stack.pop() {
        match e {
            Expr::Binary {
                op: BinOp::And,
                left,
                right,
            } => {
                stack.push(left);
                stack.push(right);
            }
            other => out.push(other),
        }
    }
    out
}

/// Extract a sargable constraint from a conjunct, normalizing
/// `literal op col` into `col op' literal`.
fn constraint_of(schema: &Schema, e: &Expr) -> Option<Constraint> {
    let Expr::Binary { op, left, right } = e else {
        return None;
    };
    if !op.is_comparison() || *op == BinOp::NotEq {
        return None;
    }
    let (column, value, op) = match (&**left, &**right) {
        (Expr::Column(c), Expr::Literal(v)) => (c, v, *op),
        (Expr::Literal(v), Expr::Column(c)) => (c, v, flip(*op)),
        _ => return None,
    };
    if value.is_null() {
        return None; // NULL comparisons never match; leave to the filter.
    }
    let idx = schema.index_of(column).ok()?;
    Some(Constraint {
        column: idx,
        op,
        value: value.clone(),
    })
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::Gt => BinOp::Lt,
        BinOp::GtEq => BinOp::LtEq,
        other => other,
    }
}

/// Choose the best access path for `filter`, if any index applies.
fn choose_access(
    schema: &Schema,
    indexes: &[IndexDef],
    filter: &Expr,
) -> Result<Option<AccessPath>> {
    let cons: Vec<Constraint> = conjuncts(filter)
        .into_iter()
        .filter_map(|e| constraint_of(schema, e))
        .collect();
    if cons.is_empty() {
        return Ok(None);
    }
    // 1. Prefer full-equality composite or single-column index lookups.
    'index: for def in indexes {
        let mut key = Vec::with_capacity(def.columns.len());
        for &col in &def.columns {
            match cons.iter().find(|c| c.column == col && c.op == BinOp::Eq) {
                Some(c) => key.push(c.value.clone()),
                None => continue 'index,
            }
        }
        return Ok(Some(AccessPath::IndexEq {
            columns: def.columns.clone(),
            key,
        }));
    }
    // 2. Range scan on a single-column index.
    for def in indexes.iter().filter(|d| d.columns.len() == 1) {
        let col = def.columns[0];
        let mut lo: Bound<Value> = Bound::Unbounded;
        let mut hi: Bound<Value> = Bound::Unbounded;
        let mut any = false;
        for c in cons.iter().filter(|c| c.column == col) {
            any = true;
            match c.op {
                BinOp::Gt => lo = tighter_lo(lo, Bound::Excluded(c.value.clone())),
                BinOp::GtEq => lo = tighter_lo(lo, Bound::Included(c.value.clone())),
                BinOp::Lt => hi = tighter_hi(hi, Bound::Excluded(c.value.clone())),
                BinOp::LtEq => hi = tighter_hi(hi, Bound::Included(c.value.clone())),
                BinOp::Eq => {
                    lo = tighter_lo(lo, Bound::Included(c.value.clone()));
                    hi = tighter_hi(hi, Bound::Included(c.value.clone()));
                }
                _ => {}
            }
        }
        if any && !(matches!(lo, Bound::Unbounded) && matches!(hi, Bound::Unbounded)) {
            return Ok(Some(AccessPath::IndexRange {
                columns: def.columns.clone(),
                lo: map_bound(lo),
                hi: map_bound(hi),
            }));
        }
    }
    Ok(None)
}

fn map_bound(b: Bound<Value>) -> Bound<Vec<Value>> {
    match b {
        Bound::Included(v) => Bound::Included(vec![v]),
        Bound::Excluded(v) => Bound::Excluded(vec![v]),
        Bound::Unbounded => Bound::Unbounded,
    }
}

fn tighter_lo(a: Bound<Value>, b: Bound<Value>) -> Bound<Value> {
    match (&a, &b) {
        (Bound::Unbounded, _) => b,
        (_, Bound::Unbounded) => a,
        (Bound::Included(x) | Bound::Excluded(x), Bound::Included(y) | Bound::Excluded(y)) => {
            if y > x {
                b
            } else if x > y {
                a
            } else {
                // Equal endpoints: Excluded is tighter.
                if matches!(a, Bound::Excluded(_)) {
                    a
                } else {
                    b
                }
            }
        }
    }
}

fn tighter_hi(a: Bound<Value>, b: Bound<Value>) -> Bound<Value> {
    match (&a, &b) {
        (Bound::Unbounded, _) => b,
        (_, Bound::Unbounded) => a,
        (Bound::Included(x) | Bound::Excluded(x), Bound::Included(y) | Bound::Excluded(y)) => {
            if y < x {
                b
            } else if x < y || matches!(a, Bound::Excluded(_)) {
                a
            } else {
                b
            }
        }
    }
}

/// Plan the row-location phase shared by UPDATE and DELETE.
pub fn plan_locate(
    table: &Table,
    filter: Option<&Expr>,
) -> Result<(AccessPath, Option<BoundExpr>)> {
    let schema = table.schema();
    let bound = filter.map(|f| bind(f, schema)).transpose()?;
    let access = filter
        .map(|f| choose_access(schema, &table.index_defs(), f))
        .transpose()?
        .flatten()
        .unwrap_or(AccessPath::FullScan);
    Ok((access, bound))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use delayguard_storage::{Column, DataType};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::not_null("title", DataType::Text),
            Column::new("gross", DataType::Float),
        ])
        .unwrap();
        let mut t = Table::new("movies", schema);
        t.create_index("pk", &["id"], true).unwrap();
        t.create_index("by_title_gross", &["title", "gross"], false)
            .unwrap();
        t
    }

    fn access_for(t: &Table, filter: &str) -> AccessPath {
        let f = parse_expr(filter).unwrap();
        choose_access(t.schema(), &t.index_defs(), &f)
            .unwrap()
            .unwrap_or(AccessPath::FullScan)
    }

    #[test]
    fn picks_eq_lookup() {
        let t = table();
        let a = access_for(&t, "id = 5");
        assert_eq!(
            a,
            AccessPath::IndexEq {
                columns: vec![0],
                key: vec![Value::Int(5)]
            }
        );
    }

    #[test]
    fn picks_eq_through_conjunction_and_flipped_literal() {
        let t = table();
        let a = access_for(&t, "gross > 10 AND 5 = id");
        assert!(matches!(a, AccessPath::IndexEq { .. }));
    }

    #[test]
    fn picks_composite_when_fully_constrained() {
        let t = table();
        let a = access_for(&t, "title = 'x' AND gross = 1.0");
        assert_eq!(
            a,
            AccessPath::IndexEq {
                columns: vec![1, 2],
                key: vec![Value::Text("x".into()), Value::Float(1.0)]
            }
        );
    }

    #[test]
    fn picks_range_scan() {
        let t = table();
        let a = access_for(&t, "id > 3 AND id <= 9");
        match a {
            AccessPath::IndexRange { columns, lo, hi } => {
                assert_eq!(columns, vec![0]);
                assert_eq!(lo, Bound::Excluded(vec![Value::Int(3)]));
                assert_eq!(hi, Bound::Included(vec![Value::Int(9)]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tightens_duplicate_bounds() {
        let t = table();
        let a = access_for(&t, "id > 3 AND id > 7 AND id >= 7");
        match a {
            AccessPath::IndexRange { lo, .. } => {
                assert_eq!(lo, Bound::Excluded(vec![Value::Int(7)]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn falls_back_to_scan() {
        let t = table();
        assert_eq!(access_for(&t, "gross = 1.0"), AccessPath::FullScan);
        assert_eq!(access_for(&t, "id != 5"), AccessPath::FullScan);
        assert_eq!(access_for(&t, "id = 1 OR id = 2"), AccessPath::FullScan);
        assert_eq!(access_for(&t, "id = NULL"), AccessPath::FullScan);
    }

    #[test]
    fn plan_select_resolves_projection() {
        let t = table();
        let plan = plan_select(&t, &Projection::All, None, None, Some(3)).unwrap();
        assert_eq!(plan.projection, vec![0, 1, 2]);
        assert_eq!(plan.output_names, vec!["id", "title", "gross"]);
        assert_eq!(plan.limit, Some(3));
        let plan = plan_select(
            &t,
            &Projection::Columns(vec!["gross".into(), "id".into()]),
            None,
            None,
            None,
        )
        .unwrap();
        assert_eq!(plan.projection, vec![2, 0]);
    }

    #[test]
    fn plan_select_rejects_unknown_columns() {
        let t = table();
        assert!(plan_select(
            &t,
            &Projection::Columns(vec!["nope".into()]),
            None,
            None,
            None
        )
        .is_err());
        let ob = OrderBy {
            column: "nope".into(),
            ascending: true,
        };
        assert!(plan_select(&t, &Projection::All, None, Some(&ob), None).is_err());
    }
}
