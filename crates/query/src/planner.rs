//! A rule-based planner: picks an index access path from the WHERE clause.
//!
//! Strategy: split the WHERE clause into top-level conjuncts. If some
//! conjunct is `col = literal` and an index exists whose key is exactly
//! `[col]` (or all columns of a composite index are equality-constrained),
//! use an [`AccessPath::IndexEq`]. Otherwise, if range conjuncts
//! (`<`, `<=`, `>`, `>=`) constrain a single-column index, use an
//! [`AccessPath::IndexRange`]. Otherwise fall back to a full scan.
//!
//! The WHERE clause is kept as a residual filter unless the chosen access
//! path provably returns *exactly* the satisfying rows — every top-level
//! conjunct was absorbed into the probe, and nothing else constrains the
//! result. The proof leans on one invariant: index order and filter
//! comparisons both use [`Value`]'s total order (`Value::cmp`), so an
//! interval over index keys admits precisely the rows the comparisons
//! would. When coverage is exact the plan carries no filter at all, and
//! the executor skips a per-row expression walk on the hot path.

use crate::ast::{BinOp, Expr, OrderBy, Projection};
use crate::error::{QueryError, Result};
use crate::expr::{bind, BoundExpr};
use crate::plan::{AccessPath, SelectPlan};
use delayguard_storage::{IndexDef, Schema, Table, Value};
use std::ops::Bound;

/// Build a plan for a SELECT's pieces against a table.
pub fn plan_select(
    table: &Table,
    projection: &Projection,
    filter: Option<&Expr>,
    order_by: Option<&OrderBy>,
    limit: Option<u64>,
) -> Result<SelectPlan> {
    let schema = table.schema();
    let (projection_idx, output_names) = resolve_projection(schema, projection)?;
    let bound_filter = filter.map(|f| bind(f, schema)).transpose()?;
    let (access, covered) = filter
        .map(|f| choose_access(schema, &table.index_defs(), f))
        .transpose()?
        .flatten()
        .unwrap_or((AccessPath::FullScan, false));
    let order = order_by
        .map(|ob| Ok::<_, QueryError>((schema.index_of(&ob.column)?, ob.ascending)))
        .transpose()?;
    Ok(SelectPlan {
        access,
        filter: if covered { None } else { bound_filter },
        projection: projection_idx,
        output_names,
        order_by: order,
        limit,
    })
}

fn resolve_projection(
    schema: &Schema,
    projection: &Projection,
) -> Result<(Vec<usize>, Vec<String>)> {
    match projection {
        Projection::All => Ok((
            (0..schema.arity()).collect(),
            schema.columns().iter().map(|c| c.name.clone()).collect(),
        )),
        Projection::Columns(names) => {
            let mut idx = Vec::with_capacity(names.len());
            for n in names {
                idx.push(schema.index_of(n)?);
            }
            Ok((idx, names.clone()))
        }
    }
}

/// A `col op literal` conjunct usable for index selection.
#[derive(Debug)]
struct Constraint {
    column: usize,
    op: BinOp,
    value: Value,
}

/// Split `expr` into top-level AND conjuncts.
fn conjuncts(expr: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    let mut stack = vec![expr];
    while let Some(e) = stack.pop() {
        match e {
            Expr::Binary {
                op: BinOp::And,
                left,
                right,
            } => {
                stack.push(left);
                stack.push(right);
            }
            other => out.push(other),
        }
    }
    out
}

/// Extract a sargable constraint from a conjunct, normalizing
/// `literal op col` into `col op' literal`.
fn constraint_of(schema: &Schema, e: &Expr) -> Option<Constraint> {
    let Expr::Binary { op, left, right } = e else {
        return None;
    };
    if !op.is_comparison() || *op == BinOp::NotEq {
        return None;
    }
    let (column, value, op) = match (&**left, &**right) {
        (Expr::Column(c), Expr::Literal(v)) => (c, v, *op),
        (Expr::Literal(v), Expr::Column(c)) => (c, v, flip(*op)),
        _ => return None,
    };
    if value.is_null() {
        return None; // NULL comparisons never match; leave to the filter.
    }
    let idx = schema.index_of(column).ok()?;
    Some(Constraint {
        column: idx,
        op,
        value: value.clone(),
    })
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::Gt => BinOp::Lt,
        BinOp::GtEq => BinOp::LtEq,
        other => other,
    }
}

/// Choose the best access path for `filter`, if any index applies.
///
/// The second element of the pair reports *exact coverage*: the access
/// path returns precisely the rows satisfying the whole WHERE clause, so
/// the caller may drop the residual filter. Coverage is exact only when
/// every top-level conjunct became a [`Constraint`] (nothing else to
/// check) and the chosen probe absorbed all of them.
fn choose_access(
    schema: &Schema,
    indexes: &[IndexDef],
    filter: &Expr,
) -> Result<Option<(AccessPath, bool)>> {
    let conj = conjuncts(filter);
    let cons: Vec<Constraint> = conj
        .iter()
        .filter_map(|e| constraint_of(schema, e))
        .collect();
    // Some conjunct the probe cannot see (non-sargable, NULL, unknown
    // column) means the filter must stay regardless of the path chosen.
    let all_sargable = cons.len() == conj.len();
    if cons.is_empty() {
        return Ok(None);
    }
    // 1. Prefer full-equality composite or single-column index lookups.
    'index: for def in indexes {
        let mut key = Vec::with_capacity(def.columns.len());
        for &col in &def.columns {
            match cons.iter().find(|c| c.column == col && c.op == BinOp::Eq) {
                Some(c) => key.push(c.value.clone()),
                None => continue 'index,
            }
        }
        // Exact iff the constraints are one equality per key column and
        // nothing more: a duplicate (`id = 5 AND id = 6`) or an extra
        // column's predicate still needs re-checking.
        let exact = all_sargable
            && cons.len() == def.columns.len()
            && cons
                .iter()
                .all(|c| c.op == BinOp::Eq && def.columns.contains(&c.column))
            && def
                .columns
                .iter()
                .all(|col| cons.iter().filter(|c| c.column == *col).count() == 1);
        return Ok(Some((
            AccessPath::IndexEq {
                columns: def.columns.clone(),
                key,
            },
            exact,
        )));
    }
    // 2. Range scan on a single-column index.
    for def in indexes.iter().filter(|d| d.columns.len() == 1) {
        let col = def.columns[0];
        let mut lo: Bound<Value> = Bound::Unbounded;
        let mut hi: Bound<Value> = Bound::Unbounded;
        let mut any = false;
        for c in cons.iter().filter(|c| c.column == col) {
            any = true;
            match c.op {
                BinOp::Gt => lo = tighter_lo(lo, Bound::Excluded(c.value.clone())),
                BinOp::GtEq => lo = tighter_lo(lo, Bound::Included(c.value.clone())),
                BinOp::Lt => hi = tighter_hi(hi, Bound::Excluded(c.value.clone())),
                BinOp::LtEq => hi = tighter_hi(hi, Bound::Included(c.value.clone())),
                BinOp::Eq => {
                    lo = tighter_lo(lo, Bound::Included(c.value.clone()));
                    hi = tighter_hi(hi, Bound::Included(c.value.clone()));
                }
                _ => {}
            }
        }
        if any && !(matches!(lo, Bound::Unbounded) && matches!(hi, Bound::Unbounded)) {
            // Conjoined intervals over one column intersect to exactly
            // `[lo, hi]` (tighter_* picks the narrower endpoint under the
            // same `Value` order the index sorts by), so coverage is
            // exact whenever every conjunct constrained this column.
            let exact = all_sargable && cons.iter().all(|c| c.column == col);
            return Ok(Some((
                AccessPath::IndexRange {
                    columns: def.columns.clone(),
                    lo: map_bound(lo),
                    hi: map_bound(hi),
                },
                exact,
            )));
        }
    }
    Ok(None)
}

fn map_bound(b: Bound<Value>) -> Bound<Vec<Value>> {
    match b {
        Bound::Included(v) => Bound::Included(vec![v]),
        Bound::Excluded(v) => Bound::Excluded(vec![v]),
        Bound::Unbounded => Bound::Unbounded,
    }
}

fn tighter_lo(a: Bound<Value>, b: Bound<Value>) -> Bound<Value> {
    match (&a, &b) {
        (Bound::Unbounded, _) => b,
        (_, Bound::Unbounded) => a,
        (Bound::Included(x) | Bound::Excluded(x), Bound::Included(y) | Bound::Excluded(y)) => {
            if y > x {
                b
            } else if x > y {
                a
            } else {
                // Equal endpoints: Excluded is tighter.
                if matches!(a, Bound::Excluded(_)) {
                    a
                } else {
                    b
                }
            }
        }
    }
}

fn tighter_hi(a: Bound<Value>, b: Bound<Value>) -> Bound<Value> {
    match (&a, &b) {
        (Bound::Unbounded, _) => b,
        (_, Bound::Unbounded) => a,
        (Bound::Included(x) | Bound::Excluded(x), Bound::Included(y) | Bound::Excluded(y)) => {
            if y < x {
                b
            } else if x < y || matches!(a, Bound::Excluded(_)) {
                a
            } else {
                b
            }
        }
    }
}

/// Plan the row-location phase shared by UPDATE and DELETE.
pub fn plan_locate(
    table: &Table,
    filter: Option<&Expr>,
) -> Result<(AccessPath, Option<BoundExpr>)> {
    let schema = table.schema();
    let bound = filter.map(|f| bind(f, schema)).transpose()?;
    let (access, covered) = filter
        .map(|f| choose_access(schema, &table.index_defs(), f))
        .transpose()?
        .flatten()
        .unwrap_or((AccessPath::FullScan, false));
    Ok((access, if covered { None } else { bound }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use delayguard_storage::{Column, DataType};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::not_null("title", DataType::Text),
            Column::new("gross", DataType::Float),
        ])
        .unwrap();
        let mut t = Table::new("movies", schema);
        t.create_index("pk", &["id"], true).unwrap();
        t.create_index("by_title_gross", &["title", "gross"], false)
            .unwrap();
        t
    }

    fn access_for(t: &Table, filter: &str) -> AccessPath {
        access_and_coverage(t, filter).0
    }

    fn access_and_coverage(t: &Table, filter: &str) -> (AccessPath, bool) {
        let f = parse_expr(filter).unwrap();
        choose_access(t.schema(), &t.index_defs(), &f)
            .unwrap()
            .unwrap_or((AccessPath::FullScan, false))
    }

    #[test]
    fn picks_eq_lookup() {
        let t = table();
        let a = access_for(&t, "id = 5");
        assert_eq!(
            a,
            AccessPath::IndexEq {
                columns: vec![0],
                key: vec![Value::Int(5)]
            }
        );
    }

    #[test]
    fn picks_eq_through_conjunction_and_flipped_literal() {
        let t = table();
        let a = access_for(&t, "gross > 10 AND 5 = id");
        assert!(matches!(a, AccessPath::IndexEq { .. }));
    }

    #[test]
    fn picks_composite_when_fully_constrained() {
        let t = table();
        let a = access_for(&t, "title = 'x' AND gross = 1.0");
        assert_eq!(
            a,
            AccessPath::IndexEq {
                columns: vec![1, 2],
                key: vec![Value::Text("x".into()), Value::Float(1.0)]
            }
        );
    }

    #[test]
    fn picks_range_scan() {
        let t = table();
        let a = access_for(&t, "id > 3 AND id <= 9");
        match a {
            AccessPath::IndexRange { columns, lo, hi } => {
                assert_eq!(columns, vec![0]);
                assert_eq!(lo, Bound::Excluded(vec![Value::Int(3)]));
                assert_eq!(hi, Bound::Included(vec![Value::Int(9)]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tightens_duplicate_bounds() {
        let t = table();
        let a = access_for(&t, "id > 3 AND id > 7 AND id >= 7");
        match a {
            AccessPath::IndexRange { lo, .. } => {
                assert_eq!(lo, Bound::Excluded(vec![Value::Int(7)]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn exact_coverage_drops_the_residual_filter() {
        let t = table();
        // Fully absorbed probes: no filter left to run.
        assert!(access_and_coverage(&t, "id = 5").1);
        assert!(access_and_coverage(&t, "id > 3 AND id <= 9").1);
        assert!(access_and_coverage(&t, "id > 3 AND id > 7 AND id >= 7").1);
        assert!(access_and_coverage(&t, "title = 'x' AND gross = 1.0").1);
        // A conjunct the probe can't see keeps the filter.
        assert!(!access_and_coverage(&t, "id = 5 AND gross > 10").1);
        assert!(!access_and_coverage(&t, "id > 3 AND title = 'x'").1);
        // Contradictory equalities on the key column keep the filter (the
        // probe only honors one of them).
        assert!(!access_and_coverage(&t, "id = 5 AND id = 6").1);
        // And the plans themselves: covered WHERE => filter is None.
        let covered = plan_select(
            &t,
            &Projection::All,
            Some(&parse_expr("id > 3 AND id <= 9").unwrap()),
            None,
            None,
        )
        .unwrap();
        assert!(covered.filter.is_none());
        assert!(matches!(covered.access, AccessPath::IndexRange { .. }));
        let residual = plan_select(
            &t,
            &Projection::All,
            Some(&parse_expr("id > 3 AND gross > 10").unwrap()),
            None,
            None,
        )
        .unwrap();
        assert!(residual.filter.is_some());
    }

    #[test]
    fn falls_back_to_scan() {
        let t = table();
        assert_eq!(access_for(&t, "gross = 1.0"), AccessPath::FullScan);
        assert_eq!(access_for(&t, "id != 5"), AccessPath::FullScan);
        assert_eq!(access_for(&t, "id = 1 OR id = 2"), AccessPath::FullScan);
        assert_eq!(access_for(&t, "id = NULL"), AccessPath::FullScan);
    }

    #[test]
    fn plan_select_resolves_projection() {
        let t = table();
        let plan = plan_select(&t, &Projection::All, None, None, Some(3)).unwrap();
        assert_eq!(plan.projection, vec![0, 1, 2]);
        assert_eq!(plan.output_names, vec!["id", "title", "gross"]);
        assert_eq!(plan.limit, Some(3));
        let plan = plan_select(
            &t,
            &Projection::Columns(vec!["gross".into(), "id".into()]),
            None,
            None,
            None,
        )
        .unwrap();
        assert_eq!(plan.projection, vec![2, 0]);
    }

    #[test]
    fn plan_select_rejects_unknown_columns() {
        let t = table();
        assert!(plan_select(
            &t,
            &Projection::Columns(vec!["nope".into()]),
            None,
            None,
            None
        )
        .is_err());
        let ob = OrderBy {
            column: "nope".into(),
            ascending: true,
        };
        assert!(plan_select(&t, &Projection::All, None, Some(&ob), None).is_err());
    }
}
