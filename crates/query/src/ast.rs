//! Abstract syntax tree for the SQL subset.

use delayguard_storage::{DataType, Value};

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col TYPE [NOT NULL], ...)`
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
    },
    /// `CREATE [UNIQUE] INDEX name ON table (col, ...)`
    CreateIndex {
        name: String,
        table: String,
        columns: Vec<String>,
        unique: bool,
    },
    /// `DROP TABLE name`
    DropTable { name: String },
    /// `INSERT INTO table VALUES (...), (...)`
    Insert { table: String, rows: Vec<Vec<Expr>> },
    /// `SELECT ... FROM table [WHERE ...] [ORDER BY col [ASC|DESC]] [LIMIT n]`
    Select {
        table: String,
        projection: Projection,
        filter: Option<Expr>,
        order_by: Option<OrderBy>,
        limit: Option<u64>,
    },
    /// `UPDATE table SET col = expr, ... [WHERE ...]`
    Update {
        table: String,
        assignments: Vec<(String, Expr)>,
        filter: Option<Expr>,
    },
    /// `DELETE FROM table [WHERE ...]`
    Delete { table: String, filter: Option<Expr> },
}

/// Column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub dtype: DataType,
    pub not_null: bool,
}

/// What a SELECT projects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Projection {
    /// `SELECT *`
    All,
    /// `SELECT a, b, c`
    Columns(Vec<String>),
}

/// `ORDER BY column [ASC|DESC]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderBy {
    pub column: String,
    pub ascending: bool,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A column reference.
    Column(String),
    /// Unary operator application.
    Unary { op: UnaryOp, expr: Box<Expr> },
    /// Binary operator application.
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for binary nodes.
    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Convenience constructor `column op literal`.
    pub fn cmp(column: &str, op: BinOp, value: impl Into<Value>) -> Expr {
        Expr::binary(
            op,
            Expr::Column(column.to_owned()),
            Expr::Literal(value.into()),
        )
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl BinOp {
    /// Whether this operator is a comparison yielding a boolean.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical NOT.
    Not,
    /// Arithmetic negation.
    Neg,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_helpers() {
        let e = Expr::cmp("id", BinOp::Eq, 42i64);
        match e {
            Expr::Binary { op, left, right } => {
                assert_eq!(op, BinOp::Eq);
                assert_eq!(*left, Expr::Column("id".into()));
                assert_eq!(*right, Expr::Literal(Value::Int(42)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(BinOp::GtEq.is_comparison());
        assert!(!BinOp::And.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }
}
