//! Expression binding and evaluation with SQL three-valued logic.
//!
//! Parsed [`Expr`]s reference columns by name; before execution they are
//! *bound* against a schema, resolving names to positions, so per-row
//! evaluation never does string lookups.

use crate::ast::{BinOp, Expr, UnaryOp};
use crate::error::{QueryError, Result};
use delayguard_storage::{Row, Schema, Value};
use std::cmp::Ordering;

/// An expression with column references resolved to positions.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    Literal(Value),
    Column(usize),
    Unary {
        op: UnaryOp,
        expr: Box<BoundExpr>,
    },
    Binary {
        op: BinOp,
        left: Box<BoundExpr>,
        right: Box<BoundExpr>,
    },
}

/// Resolve column names in `expr` against `schema`.
pub fn bind(expr: &Expr, schema: &Schema) -> Result<BoundExpr> {
    Ok(match expr {
        Expr::Literal(v) => BoundExpr::Literal(v.clone()),
        Expr::Column(name) => BoundExpr::Column(schema.index_of(name)?),
        Expr::Unary { op, expr } => BoundExpr::Unary {
            op: *op,
            expr: Box::new(bind(expr, schema)?),
        },
        Expr::Binary { op, left, right } => BoundExpr::Binary {
            op: *op,
            left: Box::new(bind(left, schema)?),
            right: Box::new(bind(right, schema)?),
        },
    })
}

/// Evaluate a bound expression over a row.
///
/// SQL semantics: any comparison or arithmetic with a NULL operand yields
/// NULL; `AND`/`OR` use Kleene three-valued logic.
pub fn eval(expr: &BoundExpr, row: &Row) -> Result<Value> {
    match expr {
        BoundExpr::Literal(v) => Ok(v.clone()),
        BoundExpr::Column(idx) => Ok(row.get(*idx).cloned().unwrap_or(Value::Null)),
        BoundExpr::Unary { op, expr } => {
            let v = eval(expr, row)?;
            match op {
                UnaryOp::Not => Ok(match v {
                    Value::Null => Value::Null,
                    Value::Bool(b) => Value::Bool(!b),
                    other => {
                        return Err(QueryError::Semantic(format!(
                            "NOT expects a boolean, got {}",
                            other.type_name()
                        )))
                    }
                }),
                UnaryOp::Neg => {
                    Ok(match v {
                        Value::Null => Value::Null,
                        Value::Int(i) => Value::Int(i.checked_neg().ok_or_else(|| {
                            QueryError::Semantic("integer negation overflow".into())
                        })?),
                        Value::Float(x) => Value::Float(-x),
                        other => {
                            return Err(QueryError::Semantic(format!(
                                "unary minus expects a number, got {}",
                                other.type_name()
                            )))
                        }
                    })
                }
            }
        }
        BoundExpr::Binary { op, left, right } => {
            if matches!(op, BinOp::And | BinOp::Or) {
                return eval_logic(*op, left, right, row);
            }
            let l = eval(left, row)?;
            let r = eval(right, row)?;
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            if op.is_comparison() {
                return Ok(eval_comparison(*op, &l, &r));
            }
            eval_arith(*op, l, r)
        }
    }
}

/// Evaluate a filter: NULL and FALSE both reject the row.
pub fn eval_filter(expr: &BoundExpr, row: &Row) -> Result<bool> {
    match eval(expr, row)? {
        Value::Bool(b) => Ok(b),
        Value::Null => Ok(false),
        other => Err(QueryError::Semantic(format!(
            "WHERE clause must be boolean, got {}",
            other.type_name()
        ))),
    }
}

fn eval_logic(op: BinOp, left: &BoundExpr, right: &BoundExpr, row: &Row) -> Result<Value> {
    let l = as_tristate(eval(left, row)?)?;
    // Short-circuit where three-valued logic allows it.
    match (op, l) {
        (BinOp::And, Some(false)) => return Ok(Value::Bool(false)),
        (BinOp::Or, Some(true)) => return Ok(Value::Bool(true)),
        _ => {}
    }
    let r = as_tristate(eval(right, row)?)?;
    let out = match op {
        BinOp::And => match (l, r) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        BinOp::Or => match (l, r) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        _ => unreachable!("eval_logic called with non-logical op"),
    };
    Ok(match out {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    })
}

fn as_tristate(v: Value) -> Result<Option<bool>> {
    match v {
        Value::Bool(b) => Ok(Some(b)),
        Value::Null => Ok(None),
        other => Err(QueryError::Semantic(format!(
            "logical operator expects booleans, got {}",
            other.type_name()
        ))),
    }
}

fn eval_comparison(op: BinOp, l: &Value, r: &Value) -> Value {
    let ord = l.cmp(r);
    let b = match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::NotEq => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::LtEq => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::GtEq => ord != Ordering::Less,
        _ => unreachable!("non-comparison op"),
    };
    Value::Bool(b)
}

fn eval_arith(op: BinOp, l: Value, r: Value) -> Result<Value> {
    use Value::*;
    match (l, r) {
        (Int(a), Int(b)) => {
            let out = match op {
                BinOp::Add => a.checked_add(b),
                BinOp::Sub => a.checked_sub(b),
                BinOp::Mul => a.checked_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return Err(QueryError::Semantic("division by zero".into()));
                    }
                    a.checked_div(b)
                }
                BinOp::Mod => {
                    if b == 0 {
                        return Err(QueryError::Semantic("modulo by zero".into()));
                    }
                    a.checked_rem(b)
                }
                _ => unreachable!(),
            };
            out.map(Int)
                .ok_or_else(|| QueryError::Semantic("integer overflow".into()))
        }
        (a, b) => {
            let (x, y) = match (a.as_float(), b.as_float()) {
                (Some(x), Some(y)) => (x, y),
                _ => {
                    return Err(QueryError::Semantic(format!(
                        "arithmetic expects numbers, got {} and {}",
                        a.type_name(),
                        b.type_name()
                    )))
                }
            };
            Ok(Float(match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Mod => x % y,
                _ => unreachable!(),
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use delayguard_storage::{Column, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("name", DataType::Text),
            Column::new("score", DataType::Float),
        ])
        .unwrap()
    }

    fn row(id: i64, name: Option<&str>, score: Option<f64>) -> Row {
        Row::new(vec![
            Value::Int(id),
            name.map(Value::from).unwrap_or(Value::Null),
            score.map(Value::Float).unwrap_or(Value::Null),
        ])
    }

    fn ev(src: &str, r: &Row) -> Result<Value> {
        let e = bind(&parse_expr(src).unwrap(), &schema()).unwrap();
        eval(&e, r)
    }

    #[test]
    fn column_and_literal() {
        let r = row(7, Some("x"), Some(1.5));
        assert_eq!(ev("id", &r).unwrap(), Value::Int(7));
        assert_eq!(ev("42", &r).unwrap(), Value::Int(42));
        assert_eq!(ev("name", &r).unwrap(), Value::Text("x".into()));
    }

    #[test]
    fn comparisons() {
        let r = row(7, Some("x"), Some(1.5));
        assert_eq!(ev("id = 7", &r).unwrap(), Value::Bool(true));
        assert_eq!(ev("id != 7", &r).unwrap(), Value::Bool(false));
        assert_eq!(ev("id < 10", &r).unwrap(), Value::Bool(true));
        assert_eq!(ev("score >= 1.5", &r).unwrap(), Value::Bool(true));
        assert_eq!(ev("name = 'x'", &r).unwrap(), Value::Bool(true));
        // Cross-type numeric comparison works.
        assert_eq!(ev("id = 7.0", &r).unwrap(), Value::Bool(true));
    }

    #[test]
    fn null_propagation() {
        let r = row(7, None, None);
        assert_eq!(ev("name = 'x'", &r).unwrap(), Value::Null);
        assert_eq!(ev("score + 1", &r).unwrap(), Value::Null);
        assert_eq!(ev("NOT name = 'x'", &r).unwrap(), Value::Null);
    }

    #[test]
    fn three_valued_logic() {
        let r = row(7, None, None);
        // NULL AND FALSE = FALSE; NULL OR TRUE = TRUE; NULL AND TRUE = NULL.
        assert_eq!(ev("name = 'x' AND id = 0", &r).unwrap(), Value::Bool(false));
        assert_eq!(ev("name = 'x' OR id = 7", &r).unwrap(), Value::Bool(true));
        assert_eq!(ev("name = 'x' AND id = 7", &r).unwrap(), Value::Null);
        assert_eq!(ev("name = 'x' OR id = 0", &r).unwrap(), Value::Null);
    }

    #[test]
    fn short_circuit_does_not_mask_errors_on_left() {
        // Left FALSE short-circuits AND even when right would error.
        let r = row(1, Some("x"), Some(1.0));
        assert_eq!(ev("id = 0 AND id / 0 = 1", &r).unwrap(), Value::Bool(false));
        // Without short-circuit the division error surfaces.
        assert!(ev("id = 1 AND id / 0 = 1", &r).is_err());
    }

    #[test]
    fn filter_semantics() {
        let s = schema();
        let r = row(7, None, None);
        let pass = bind(&parse_expr("id = 7").unwrap(), &s).unwrap();
        let null = bind(&parse_expr("name = 'x'").unwrap(), &s).unwrap();
        assert!(eval_filter(&pass, &r).unwrap());
        assert!(!eval_filter(&null, &r).unwrap(), "NULL filter rejects");
        let not_bool = bind(&parse_expr("id + 1").unwrap(), &s).unwrap();
        assert!(eval_filter(&not_bool, &r).is_err());
    }

    #[test]
    fn arithmetic() {
        let r = row(7, Some("x"), Some(1.5));
        assert_eq!(ev("id + 1", &r).unwrap(), Value::Int(8));
        assert_eq!(ev("id * 2 - 4", &r).unwrap(), Value::Int(10));
        assert_eq!(ev("id % 4", &r).unwrap(), Value::Int(3));
        assert_eq!(ev("score * 2", &r).unwrap(), Value::Float(3.0));
        assert_eq!(ev("id / 2", &r).unwrap(), Value::Int(3), "integer division");
        assert_eq!(ev("-id", &r).unwrap(), Value::Int(-7));
    }

    #[test]
    fn arithmetic_errors() {
        let r = row(7, Some("x"), Some(1.5));
        assert!(ev("id / 0", &r).is_err());
        assert!(ev("id % 0", &r).is_err());
        assert!(ev("name + 1", &r).is_err());
        assert!(ev("9223372036854775807 + 1", &r).is_err());
        assert!(ev("NOT id", &r).is_err());
    }

    #[test]
    fn bind_unknown_column_fails() {
        let e = parse_expr("missing = 1").unwrap();
        assert!(bind(&e, &schema()).is_err());
    }
}
