//! Recursive-descent parser for the SQL subset.
//!
//! Grammar (informal):
//!
//! ```text
//! stmt      := select | insert | update | delete | create | drop
//! select    := SELECT (STAR | ident (, ident)*) FROM ident
//!              [WHERE expr] [ORDER BY ident [ASC|DESC]] [LIMIT int] [;]
//! insert    := INSERT INTO ident VALUES tuple (, tuple)* [;]
//! update    := UPDATE ident SET ident = expr (, ident = expr)* [WHERE expr] [;]
//! delete    := DELETE FROM ident [WHERE expr] [;]
//! create    := CREATE TABLE ident ( coldef (, coldef)* ) [;]
//!            | CREATE [UNIQUE] INDEX ident ON ident ( ident (, ident)* ) [;]
//! drop      := DROP TABLE ident [;]
//! expr      := or-expr with standard precedence:
//!              OR < AND < NOT < comparison < additive < multiplicative < unary
//! ```

use crate::ast::*;
use crate::error::{QueryError, Result};
use crate::lexer::lex;
use crate::token::{Keyword, Token, TokenKind};
use delayguard_storage::{DataType, Value};

/// Parse a single SQL statement.
pub fn parse(input: &str) -> Result<Statement> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_optional_semicolon();
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse just an expression (used in tests and by tooling).
pub fn parse_expr(input: &str) -> Result<Expr> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.peek() == &TokenKind::Keyword(k) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, k: Keyword) -> Result<()> {
        if self.eat_keyword(k) {
            Ok(())
        } else {
            Err(QueryError::Parse(format!(
                "expected {k:?}, found {}",
                self.peek()
            )))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<()> {
        if self.eat(&kind) {
            Ok(())
        } else {
            Err(QueryError::Parse(format!(
                "expected {kind}, found {}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            other => Err(QueryError::Parse(format!(
                "expected identifier, found {other}"
            ))),
        }
    }

    fn eat_optional_semicolon(&mut self) {
        self.eat(&TokenKind::Semicolon);
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.peek() == &TokenKind::Eof {
            Ok(())
        } else {
            Err(QueryError::Parse(format!(
                "unexpected trailing input starting at {}",
                self.peek()
            )))
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        match self.peek() {
            TokenKind::Keyword(Keyword::Select) => self.select(),
            TokenKind::Keyword(Keyword::Insert) => self.insert(),
            TokenKind::Keyword(Keyword::Update) => self.update(),
            TokenKind::Keyword(Keyword::Delete) => self.delete(),
            TokenKind::Keyword(Keyword::Create) => self.create(),
            TokenKind::Keyword(Keyword::Drop) => self.drop(),
            other => Err(QueryError::Parse(format!(
                "expected a statement, found {other}"
            ))),
        }
    }

    fn select(&mut self) -> Result<Statement> {
        self.expect_keyword(Keyword::Select)?;
        let projection = if self.eat(&TokenKind::Star) {
            Projection::All
        } else {
            let mut cols = vec![self.ident()?];
            while self.eat(&TokenKind::Comma) {
                cols.push(self.ident()?);
            }
            Projection::Columns(cols)
        };
        self.expect_keyword(Keyword::From)?;
        let table = self.ident()?;
        let filter = if self.eat_keyword(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        let order_by = if self.eat_keyword(Keyword::Order) {
            self.expect_keyword(Keyword::By)?;
            let column = self.ident()?;
            let ascending = if self.eat_keyword(Keyword::Desc) {
                false
            } else {
                self.eat_keyword(Keyword::Asc);
                true
            };
            Some(OrderBy { column, ascending })
        } else {
            None
        };
        let limit = if self.eat_keyword(Keyword::Limit) {
            match self.advance() {
                TokenKind::Int(n) if n >= 0 => Some(n as u64),
                other => {
                    return Err(QueryError::Parse(format!(
                        "LIMIT expects a non-negative integer, found {other}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Statement::Select {
            table,
            projection,
            filter,
            order_by,
            limit,
        })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_keyword(Keyword::Insert)?;
        self.expect_keyword(Keyword::Into)?;
        let table = self.ident()?;
        self.expect_keyword(Keyword::Values)?;
        let mut rows = vec![self.value_tuple()?];
        while self.eat(&TokenKind::Comma) {
            rows.push(self.value_tuple()?);
        }
        Ok(Statement::Insert { table, rows })
    }

    fn value_tuple(&mut self) -> Result<Vec<Expr>> {
        self.expect(TokenKind::LParen)?;
        let mut exprs = vec![self.expr()?];
        while self.eat(&TokenKind::Comma) {
            exprs.push(self.expr()?);
        }
        self.expect(TokenKind::RParen)?;
        Ok(exprs)
    }

    fn update(&mut self) -> Result<Statement> {
        self.expect_keyword(Keyword::Update)?;
        let table = self.ident()?;
        self.expect_keyword(Keyword::Set)?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(TokenKind::Eq)?;
            let e = self.expr()?;
            assignments.push((col, e));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let filter = if self.eat_keyword(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            filter,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_keyword(Keyword::Delete)?;
        self.expect_keyword(Keyword::From)?;
        let table = self.ident()?;
        let filter = if self.eat_keyword(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, filter })
    }

    fn create(&mut self) -> Result<Statement> {
        self.expect_keyword(Keyword::Create)?;
        if self.eat_keyword(Keyword::Table) {
            let name = self.ident()?;
            self.expect(TokenKind::LParen)?;
            let mut columns = vec![self.column_def()?];
            while self.eat(&TokenKind::Comma) {
                columns.push(self.column_def()?);
            }
            self.expect(TokenKind::RParen)?;
            return Ok(Statement::CreateTable { name, columns });
        }
        let unique = self.eat_keyword(Keyword::Unique);
        self.expect_keyword(Keyword::Index)?;
        let name = self.ident()?;
        self.expect_keyword(Keyword::On)?;
        let table = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut columns = vec![self.ident()?];
        while self.eat(&TokenKind::Comma) {
            columns.push(self.ident()?);
        }
        self.expect(TokenKind::RParen)?;
        Ok(Statement::CreateIndex {
            name,
            table,
            columns,
            unique,
        })
    }

    fn column_def(&mut self) -> Result<ColumnDef> {
        let name = self.ident()?;
        let tname = self.ident()?;
        let dtype = DataType::parse(&tname)
            .ok_or_else(|| QueryError::Parse(format!("unknown type `{tname}`")))?;
        let not_null = if self.eat_keyword(Keyword::Not) {
            self.expect_keyword(Keyword::Null)?;
            true
        } else {
            false
        };
        Ok(ColumnDef {
            name,
            dtype,
            not_null,
        })
    }

    fn drop(&mut self) -> Result<Statement> {
        self.expect_keyword(Keyword::Drop)?;
        self.expect_keyword(Keyword::Table)?;
        let name = self.ident()?;
        Ok(Statement::DropTable { name })
    }

    // ---- expressions, by descending precedence ----

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword(Keyword::Or) {
            let right = self.and_expr()?;
            left = Expr::binary(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword(Keyword::And) {
            let right = self.not_expr()?;
            left = Expr::binary(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword(Keyword::Not) {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::NotEq => BinOp::NotEq,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::LtEq => BinOp::LtEq,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::GtEq => BinOp::GtEq,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.additive()?;
        Ok(Expr::binary(op, left, right))
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.unary()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.advance();
                Ok(Expr::Literal(Value::Int(v)))
            }
            TokenKind::Float(v) => {
                self.advance();
                Ok(Expr::Literal(Value::Float(v)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Literal(Value::Text(s)))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.advance();
                Ok(Expr::Literal(Value::Bool(true)))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.advance();
                Ok(Expr::Literal(Value::Bool(false)))
            }
            TokenKind::Keyword(Keyword::Null) => {
                self.advance();
                Ok(Expr::Literal(Value::Null))
            }
            TokenKind::Ident(name) => {
                self.advance();
                Ok(Expr::Column(name))
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(QueryError::Parse(format!(
                "expected an expression, found {other}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_select_star() {
        let s = parse("SELECT * FROM movies").unwrap();
        assert_eq!(
            s,
            Statement::Select {
                table: "movies".into(),
                projection: Projection::All,
                filter: None,
                order_by: None,
                limit: None,
            }
        );
    }

    #[test]
    fn parses_full_select() {
        let s = parse(
            "SELECT id, title FROM movies WHERE gross > 1000000 AND id != 3 \
             ORDER BY id DESC LIMIT 10;",
        )
        .unwrap();
        match s {
            Statement::Select {
                table,
                projection,
                filter,
                order_by,
                limit,
            } => {
                assert_eq!(table, "movies");
                assert_eq!(
                    projection,
                    Projection::Columns(vec!["id".into(), "title".into()])
                );
                assert!(filter.is_some());
                let ob = order_by.unwrap();
                assert_eq!(ob.column, "id");
                assert!(!ob.ascending);
                assert_eq!(limit, Some(10));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_insert_multi_row() {
        let s = parse("INSERT INTO t VALUES (1, 'a'), (2, 'b')").unwrap();
        match s {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "t");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0].len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_update() {
        let s = parse("UPDATE t SET a = a + 1, b = 'x' WHERE id = 9").unwrap();
        match s {
            Statement::Update {
                table,
                assignments,
                filter,
            } => {
                assert_eq!(table, "t");
                assert_eq!(assignments.len(), 2);
                assert!(filter.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_delete() {
        let s = parse("DELETE FROM t WHERE id = 1").unwrap();
        assert!(matches!(s, Statement::Delete { .. }));
        let s = parse("DELETE FROM t").unwrap();
        assert!(matches!(s, Statement::Delete { filter: None, .. }));
    }

    #[test]
    fn parses_create_table() {
        let s = parse("CREATE TABLE m (id INT NOT NULL, title TEXT, gross FLOAT)").unwrap();
        match s {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "m");
                assert_eq!(columns.len(), 3);
                assert!(columns[0].not_null);
                assert!(!columns[1].not_null);
                assert_eq!(columns[2].dtype, DataType::Float);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_create_index() {
        let s = parse("CREATE UNIQUE INDEX pk ON m (id)").unwrap();
        assert_eq!(
            s,
            Statement::CreateIndex {
                name: "pk".into(),
                table: "m".into(),
                columns: vec!["id".into()],
                unique: true
            }
        );
        let s = parse("CREATE INDEX by_t ON m (title, gross)").unwrap();
        assert!(matches!(s, Statement::CreateIndex { unique: false, .. }));
    }

    #[test]
    fn parses_drop_table() {
        assert_eq!(
            parse("DROP TABLE m;").unwrap(),
            Statement::DropTable { name: "m".into() }
        );
    }

    #[test]
    fn precedence_or_and() {
        // a = 1 OR b = 2 AND c = 3  ==>  a=1 OR (b=2 AND c=3)
        let e = parse_expr("a = 1 OR b = 2 AND c = 3").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Or,
                right,
                ..
            } => {
                assert!(matches!(*right, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_arithmetic() {
        // 1 + 2 * 3 ==> 1 + (2*3)
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Add,
                right,
                ..
            } => {
                assert!(matches!(*right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parens_override_precedence() {
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn unary_not_and_neg() {
        let e = parse_expr("NOT a = 1").unwrap();
        assert!(matches!(
            e,
            Expr::Unary {
                op: UnaryOp::Not,
                ..
            }
        ));
        let e = parse_expr("-3").unwrap();
        assert!(matches!(
            e,
            Expr::Unary {
                op: UnaryOp::Neg,
                ..
            }
        ));
    }

    #[test]
    fn literals() {
        assert_eq!(parse_expr("NULL").unwrap(), Expr::Literal(Value::Null));
        assert_eq!(
            parse_expr("TRUE").unwrap(),
            Expr::Literal(Value::Bool(true))
        );
        assert_eq!(
            parse_expr("'s'").unwrap(),
            Expr::Literal(Value::Text("s".into()))
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("INSERT INTO t").is_err());
        assert!(parse("CREATE TABLE t (id WIBBLE)").is_err());
        assert!(parse("SELECT * FROM t LIMIT 'x'").is_err());
        assert!(parse("SELECT * FROM t extra").is_err());
        assert!(parse("").is_err());
    }
}
