//! Hand-written lexer for the SQL subset.

use crate::error::{QueryError, Result};
use crate::token::{Keyword, Token, TokenKind};

/// Tokenize `input` into a vector ending with an `Eof` token.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            c if c.is_ascii_whitespace() => {
                i += 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // -- line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: start,
                });
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: start,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    offset: start,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semicolon,
                    offset: start,
                });
                i += 1;
            }
            '+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    offset: start,
                });
                i += 1;
            }
            '-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    offset: start,
                });
                i += 1;
            }
            '/' => {
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    offset: start,
                });
                i += 1;
            }
            '%' => {
                tokens.push(Token {
                    kind: TokenKind::Percent,
                    offset: start,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    offset: start,
                });
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token {
                        kind: TokenKind::NotEq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(QueryError::Lex {
                        offset: start,
                        message: "expected `=` after `!`".into(),
                    });
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token {
                        kind: TokenKind::LtEq,
                        offset: start,
                    });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token {
                        kind: TokenKind::NotEq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token {
                        kind: TokenKind::GtEq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '\'' => {
                // String literal; '' escapes a quote.
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(QueryError::Lex {
                            offset: start,
                            message: "unterminated string literal".into(),
                        });
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Consume one UTF-8 character.
                        let rest = &input[i..];
                        let ch = rest.chars().next().expect("non-empty");
                        s.push(ch);
                        i += ch.len_utf8();
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            c if c.is_ascii_digit() => {
                let mut end = i;
                let mut is_float = false;
                while end < bytes.len() && (bytes[end] as char).is_ascii_digit() {
                    end += 1;
                }
                if end < bytes.len() && bytes[end] == b'.' {
                    is_float = true;
                    end += 1;
                    while end < bytes.len() && (bytes[end] as char).is_ascii_digit() {
                        end += 1;
                    }
                }
                if end < bytes.len() && (bytes[end] == b'e' || bytes[end] == b'E') {
                    let mut j = end + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        is_float = true;
                        end = j;
                        while end < bytes.len() && (bytes[end] as char).is_ascii_digit() {
                            end += 1;
                        }
                    }
                }
                let text = &input[i..end];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|e| QueryError::Lex {
                        offset: start,
                        message: format!("bad float literal `{text}`: {e}"),
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|e| QueryError::Lex {
                        offset: start,
                        message: format!("bad integer literal `{text}`: {e}"),
                    })?)
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                i = end;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut end = i;
                while end < bytes.len() {
                    let c = bytes[end] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        end += 1;
                    } else {
                        break;
                    }
                }
                let word = &input[i..end];
                let kind = match Keyword::parse(word) {
                    Some(k) => TokenKind::Keyword(k),
                    None => TokenKind::Ident(word.to_owned()),
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                i = end;
            }
            other => {
                return Err(QueryError::Lex {
                    offset: start,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_select() {
        use TokenKind::*;
        assert_eq!(
            kinds("SELECT * FROM movies WHERE id = 42"),
            vec![
                Keyword(super::Keyword::Select),
                Star,
                Keyword(super::Keyword::From),
                Ident("movies".into()),
                Keyword(super::Keyword::Where),
                Ident("id".into()),
                Eq,
                Int(42),
                Eof
            ]
        );
    }

    #[test]
    fn operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("= != <> < <= > >= + - * / %"),
            vec![Eq, NotEq, NotEq, Lt, LtEq, Gt, GtEq, Plus, Minus, Star, Slash, Percent, Eof]
        );
    }

    #[test]
    fn numbers() {
        use TokenKind::*;
        assert_eq!(
            kinds("1 2.5 3e2 4.25E-1 007"),
            vec![Int(1), Float(2.5), Float(300.0), Float(0.425), Int(7), Eof]
        );
    }

    #[test]
    fn strings_with_escapes_and_unicode() {
        use TokenKind::*;
        assert_eq!(
            kinds("'it''s' 'héllo'"),
            vec![Str("it's".into()), Str("héllo".into()), Eof]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn comments_skipped() {
        use TokenKind::*;
        assert_eq!(
            kinds("SELECT -- everything\n1"),
            vec![Keyword(super::Keyword::Select), Int(1), Eof]
        );
    }

    #[test]
    fn bad_char_errors_with_offset() {
        match lex("SELECT @") {
            Err(QueryError::Lex { offset, .. }) => assert_eq!(offset, 7),
            other => panic!("expected lex error, got {other:?}"),
        }
    }

    #[test]
    fn bare_bang_errors() {
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn identifiers_with_underscores() {
        use TokenKind::*;
        assert_eq!(
            kinds("_tmp user_name x9"),
            vec![
                Ident("_tmp".into()),
                Ident("user_name".into()),
                Ident("x9".into()),
                Eof
            ]
        );
    }

    #[test]
    fn offsets_recorded() {
        let toks = lex("SELECT id").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 7);
    }
}
