//! Tokens produced by the lexer.

use std::fmt;

/// SQL keywords recognized by the dialect (case-insensitive in source).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    Select,
    From,
    Where,
    Insert,
    Into,
    Values,
    Update,
    Set,
    Delete,
    Create,
    Drop,
    Table,
    Index,
    Unique,
    On,
    Not,
    Null,
    And,
    Or,
    True,
    False,
    Order,
    By,
    Asc,
    Desc,
    Limit,
}

impl Keyword {
    /// Parse a keyword from an identifier-shaped word.
    pub fn parse(word: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match word.to_ascii_uppercase().as_str() {
            "SELECT" => Select,
            "FROM" => From,
            "WHERE" => Where,
            "INSERT" => Insert,
            "INTO" => Into,
            "VALUES" => Values,
            "UPDATE" => Update,
            "SET" => Set,
            "DELETE" => Delete,
            "CREATE" => Create,
            "DROP" => Drop,
            "TABLE" => Table,
            "INDEX" => Index,
            "UNIQUE" => Unique,
            "ON" => On,
            "NOT" => Not,
            "NULL" => Null,
            "AND" => And,
            "OR" => Or,
            "TRUE" => True,
            "FALSE" => False,
            "ORDER" => Order,
            "BY" => By,
            "ASC" => Asc,
            "DESC" => Desc,
            "LIMIT" => Limit,
            _ => return None,
        })
    }
}

/// A lexical token with its source offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the token start in the input.
    pub offset: usize,
}

/// Token payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Keyword(Keyword),
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    // punctuation / operators
    Comma,
    LParen,
    RParen,
    Star,
    Semicolon,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Plus,
    Minus,
    Slash,
    Percent,
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{k:?}"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Float(v) => write!(f, "float {v}"),
            TokenKind::Str(s) => write!(f, "string '{s}'"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::Star => f.write_str("`*`"),
            TokenKind::Semicolon => f.write_str("`;`"),
            TokenKind::Eq => f.write_str("`=`"),
            TokenKind::NotEq => f.write_str("`!=`"),
            TokenKind::Lt => f.write_str("`<`"),
            TokenKind::LtEq => f.write_str("`<=`"),
            TokenKind::Gt => f.write_str("`>`"),
            TokenKind::GtEq => f.write_str("`>=`"),
            TokenKind::Plus => f.write_str("`+`"),
            TokenKind::Minus => f.write_str("`-`"),
            TokenKind::Slash => f.write_str("`/`"),
            TokenKind::Percent => f.write_str("`%`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(Keyword::parse("select"), Some(Keyword::Select));
        assert_eq!(Keyword::parse("SeLeCt"), Some(Keyword::Select));
        assert_eq!(Keyword::parse("selec"), None);
    }

    #[test]
    fn display_does_not_panic() {
        for k in [
            TokenKind::Comma,
            TokenKind::Eof,
            TokenKind::Ident("x".into()),
            TokenKind::Int(3),
            TokenKind::Float(1.5),
            TokenKind::Str("s".into()),
            TokenKind::Keyword(Keyword::From),
        ] {
            assert!(!k.to_string().is_empty());
        }
    }
}
