//! Plan execution against a single table.

use crate::ast::{Expr, UnaryOp};
use crate::error::{QueryError, Result};
use crate::expr::{eval, eval_filter, BoundExpr};
use crate::plan::{AccessPath, SelectPlan};
use delayguard_storage::{Row, RowId, Table, Value};
use std::ops::Bound;

/// Result of executing a SELECT: projected rows with their RowIds.
///
/// The RowIds are retained deliberately: the delay defense charges each
/// *returned tuple* to the requester's popularity ledger (§2.1 treats a
/// multi-tuple result as the aggregate of simple single-tuple queries).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectOutput {
    /// Output column names.
    pub columns: Vec<String>,
    /// `(row id, projected row)` pairs in output order.
    pub rows: Vec<(RowId, Row)>,
}

impl SelectOutput {
    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The RowIds of every returned tuple.
    pub fn row_ids(&self) -> impl Iterator<Item = RowId> + '_ {
        self.rows.iter().map(|(rid, _)| *rid)
    }
}

/// Collect the RowIds of rows matched by `access` + `filter`.
pub fn locate(
    table: &Table,
    access: &AccessPath,
    filter: Option<&BoundExpr>,
) -> Result<Vec<RowId>> {
    let mut out = Vec::new();
    match access {
        AccessPath::FullScan => {
            for item in table.scan() {
                let (rid, row) = item?;
                if passes(filter, &row)? {
                    out.push(rid);
                }
            }
        }
        AccessPath::IndexEq { columns, key } => {
            let rids = table
                .index_lookup(columns, key)
                .ok_or_else(|| QueryError::Semantic("planned index disappeared".into()))?;
            for rid in rids {
                let row = table.peek(rid)?;
                if passes(filter, &row)? {
                    out.push(rid);
                }
            }
        }
        AccessPath::IndexRange { columns, lo, hi } => {
            let rids = table
                .index_range(columns, as_ref_bound(lo), as_ref_bound(hi))
                .ok_or_else(|| QueryError::Semantic("planned index disappeared".into()))?;
            for rid in rids {
                let row = table.peek(rid)?;
                if passes(filter, &row)? {
                    out.push(rid);
                }
            }
        }
    }
    Ok(out)
}

fn as_ref_bound(b: &Bound<Vec<Value>>) -> Bound<&Vec<Value>> {
    match b {
        Bound::Included(k) => Bound::Included(k),
        Bound::Excluded(k) => Bound::Excluded(k),
        Bound::Unbounded => Bound::Unbounded,
    }
}

fn passes(filter: Option<&BoundExpr>, row: &Row) -> Result<bool> {
    match filter {
        Some(f) => eval_filter(f, row),
        None => Ok(true),
    }
}

/// A Volcano-style pull operator: each call produces the next output row
/// or `None` when the operator is exhausted.
///
/// Operators compose into a tree (source → filter → sort → limit →
/// project); only `SortOp` is a pipeline breaker, buffering its input.
/// Everything else holds O(1) state, which is what gives the server its
/// bounded per-connection memory.
pub trait RowStream {
    /// Pull the next `(row id, row)` pair, or `None` at end of stream.
    fn next_row(&mut self) -> Result<Option<(RowId, Row)>>;
}

/// Leaf operator: a heap scan over the whole table.
struct ScanSource<'a> {
    iter: Box<dyn Iterator<Item = delayguard_storage::Result<(RowId, Row)>> + 'a>,
}

impl RowStream for ScanSource<'_> {
    fn next_row(&mut self) -> Result<Option<(RowId, Row)>> {
        match self.iter.next() {
            Some(item) => {
                let (rid, row) = item?;
                Ok(Some((rid, row)))
            }
            None => Ok(None),
        }
    }
}

/// Leaf operator: RowIds from an index probe, rows fetched lazily so an
/// abandoned stream never pays for rows it did not yield.
struct IndexSource<'a> {
    table: &'a Table,
    rids: std::vec::IntoIter<RowId>,
}

impl RowStream for IndexSource<'_> {
    fn next_row(&mut self) -> Result<Option<(RowId, Row)>> {
        match self.rids.next() {
            Some(rid) => Ok(Some((rid, self.table.peek(rid)?))),
            None => Ok(None),
        }
    }
}

/// Drops rows that fail the residual predicate.
struct FilterOp<'a> {
    input: Box<dyn RowStream + 'a>,
    filter: Option<&'a BoundExpr>,
}

impl RowStream for FilterOp<'_> {
    fn next_row(&mut self) -> Result<Option<(RowId, Row)>> {
        while let Some((rid, row)) = self.input.next_row()? {
            if passes(self.filter, &row)? {
                return Ok(Some((rid, row)));
            }
        }
        Ok(None)
    }
}

/// Pipeline breaker: drains its input on first pull, sorts, then replays.
///
/// Sorting happens on unprojected rows (the sort key may not survive the
/// projection) with the same stable comparator the materialized executor
/// used, so streamed output order is identical.
struct SortOp<'a> {
    input: Option<Box<dyn RowStream + 'a>>,
    col: usize,
    ascending: bool,
    sorted: std::vec::IntoIter<(RowId, Row)>,
}

impl<'a> SortOp<'a> {
    fn new(input: Box<dyn RowStream + 'a>, col: usize, ascending: bool) -> Self {
        SortOp {
            input: Some(input),
            col,
            ascending,
            sorted: Vec::new().into_iter(),
        }
    }
}

impl RowStream for SortOp<'_> {
    fn next_row(&mut self) -> Result<Option<(RowId, Row)>> {
        if let Some(mut input) = self.input.take() {
            let mut buffered = Vec::new();
            while let Some(pair) = input.next_row()? {
                buffered.push(pair);
            }
            let (col, ascending) = (self.col, self.ascending);
            buffered.sort_by(|(_, a), (_, b)| {
                let av = a.get(col).cloned().unwrap_or(Value::Null);
                let bv = b.get(col).cloned().unwrap_or(Value::Null);
                if ascending {
                    av.cmp(&bv)
                } else {
                    bv.cmp(&av)
                }
            });
            self.sorted = buffered.into_iter();
        }
        Ok(self.sorted.next())
    }
}

/// Stops after `remaining` rows.
struct LimitOp<'a> {
    input: Box<dyn RowStream + 'a>,
    remaining: u64,
}

impl RowStream for LimitOp<'_> {
    fn next_row(&mut self) -> Result<Option<(RowId, Row)>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next_row()? {
            Some(pair) => {
                self.remaining -= 1;
                Ok(Some(pair))
            }
            None => {
                self.remaining = 0;
                Ok(None)
            }
        }
    }
}

/// Projects each row to the output column list.
struct ProjectOp<'a> {
    input: Box<dyn RowStream + 'a>,
    projection: &'a [usize],
}

impl RowStream for ProjectOp<'_> {
    fn next_row(&mut self) -> Result<Option<(RowId, Row)>> {
        match self.input.next_row()? {
            Some((rid, row)) => Ok(Some((rid, row.project(self.projection)))),
            None => Ok(None),
        }
    }
}

/// An open SELECT pipeline: pull projected rows one at a time.
///
/// The cursor captures `table.len()` at open so the pricing layer can
/// read cardinality without re-acquiring the table lock mid-stream, and
/// counts yielded rows so the executor can charge `record_reads` for
/// exactly the rows a partially-consumed stream produced.
pub struct SelectCursor<'a> {
    inner: Box<dyn RowStream + 'a>,
    columns: &'a [String],
    table_rows: u64,
    yielded: u64,
}

impl SelectCursor<'_> {
    /// Pull the next projected `(row id, row)` pair.
    pub fn next_row(&mut self) -> Result<Option<(RowId, Row)>> {
        let item = self.inner.next_row()?;
        if item.is_some() {
            self.yielded += 1;
        }
        Ok(item)
    }

    /// Output column names, in projection order.
    pub fn columns(&self) -> &[String] {
        self.columns
    }

    /// Table cardinality captured when the cursor was opened.
    pub fn table_rows(&self) -> u64 {
        self.table_rows
    }

    /// Rows yielded so far.
    pub fn rows_yielded(&self) -> u64 {
        self.yielded
    }
}

/// Open a SELECT plan as a pull pipeline over `table`.
pub fn open_select<'a>(table: &'a Table, plan: &'a SelectPlan) -> Result<SelectCursor<'a>> {
    let source: Box<dyn RowStream + 'a> = match &plan.access {
        AccessPath::FullScan => Box::new(ScanSource {
            iter: Box::new(table.scan()),
        }),
        AccessPath::IndexEq { columns, key } => {
            let rids = table
                .index_lookup(columns, key)
                .ok_or_else(|| QueryError::Semantic("planned index disappeared".into()))?;
            Box::new(IndexSource {
                table,
                rids: rids.into_iter(),
            })
        }
        AccessPath::IndexRange { columns, lo, hi } => {
            let rids = table
                .index_range(columns, as_ref_bound(lo), as_ref_bound(hi))
                .ok_or_else(|| QueryError::Semantic("planned index disappeared".into()))?;
            Box::new(IndexSource {
                table,
                rids: rids.into_iter(),
            })
        }
    };
    let mut stream: Box<dyn RowStream + 'a> = Box::new(FilterOp {
        input: source,
        filter: plan.filter.as_ref(),
    });
    if let Some((col, ascending)) = plan.order_by {
        stream = Box::new(SortOp::new(stream, col, ascending));
    }
    if let Some(limit) = plan.limit {
        stream = Box::new(LimitOp {
            input: stream,
            remaining: limit,
        });
    }
    stream = Box::new(ProjectOp {
        input: stream,
        projection: &plan.projection,
    });
    Ok(SelectCursor {
        inner: stream,
        columns: &plan.output_names,
        table_rows: table.len() as u64,
        yielded: 0,
    })
}

/// Execute a SELECT plan by draining the pull pipeline.
pub fn run_select(table: &mut Table, plan: &SelectPlan) -> Result<SelectOutput> {
    let mut rows = Vec::new();
    let yielded = {
        let mut cursor = open_select(table, plan)?;
        while let Some(pair) = cursor.next_row()? {
            rows.push(pair);
        }
        cursor.rows_yielded()
    };
    table.record_reads(yielded);
    Ok(SelectOutput {
        columns: plan.output_names.clone(),
        rows,
    })
}

/// Apply UPDATE assignments to located rows.
///
/// Assignment expressions are evaluated against the *old* row (SQL
/// semantics), so `SET a = a + 1, b = a` uses the original `a` for both.
pub fn run_update(
    table: &mut Table,
    access: &AccessPath,
    filter: Option<&BoundExpr>,
    assignments: &[(usize, BoundExpr)],
) -> Result<Vec<RowId>> {
    let rids = locate(table, access, filter)?;
    let mut out = Vec::with_capacity(rids.len());
    for rid in rids {
        let old = table.peek(rid)?;
        let mut new = old.clone();
        for (col, e) in assignments {
            new.set(*col, eval(e, &old)?);
        }
        let new_rid = table.update(rid, new)?;
        out.push(new_rid);
    }
    Ok(out)
}

/// Delete located rows, returning their RowIds.
pub fn run_delete(
    table: &mut Table,
    access: &AccessPath,
    filter: Option<&BoundExpr>,
) -> Result<Vec<RowId>> {
    let rids = locate(table, access, filter)?;
    for rid in &rids {
        table.delete(*rid)?;
    }
    Ok(rids)
}

/// Evaluate an INSERT value expression, which must be constant (no column
/// references).
pub fn const_eval(expr: &Expr) -> Result<Value> {
    let bound = to_const_bound(expr)?;
    let empty = Row::new(Vec::new());
    eval(&bound, &empty)
}

fn to_const_bound(expr: &Expr) -> Result<BoundExpr> {
    Ok(match expr {
        Expr::Literal(v) => BoundExpr::Literal(v.clone()),
        Expr::Column(name) => {
            return Err(QueryError::Semantic(format!(
                "column reference `{name}` not allowed in VALUES"
            )))
        }
        Expr::Unary { op, expr } => BoundExpr::Unary {
            op: match op {
                UnaryOp::Not => UnaryOp::Not,
                UnaryOp::Neg => UnaryOp::Neg,
            },
            expr: Box::new(to_const_bound(expr)?),
        },
        Expr::Binary { op, left, right } => BoundExpr::Binary {
            op: *op,
            left: Box::new(to_const_bound(left)?),
            right: Box::new(to_const_bound(right)?),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr};
    use crate::planner::{plan_locate, plan_select};
    use delayguard_storage::{Column, DataType, Schema};

    fn movies() -> Table {
        let schema = Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::not_null("title", DataType::Text),
            Column::new("gross", DataType::Float),
        ])
        .unwrap();
        let mut t = Table::new("movies", schema);
        t.create_index("pk", &["id"], true).unwrap();
        for i in 0..20i64 {
            t.insert(Row::new(vec![
                Value::Int(i),
                Value::Text(format!("movie-{i}")),
                Value::Float((i * 10) as f64),
            ]))
            .unwrap();
        }
        t
    }

    fn select(t: &mut Table, sql: &str) -> SelectOutput {
        let stmt = parse(sql).unwrap();
        match stmt {
            crate::ast::Statement::Select {
                projection,
                filter,
                order_by,
                limit,
                ..
            } => {
                let plan =
                    plan_select(t, &projection, filter.as_ref(), order_by.as_ref(), limit).unwrap();
                run_select(t, &plan).unwrap()
            }
            other => panic!("not a select: {other:?}"),
        }
    }

    #[test]
    fn point_lookup_via_index() {
        let mut t = movies();
        let out = select(&mut t, "SELECT title FROM movies WHERE id = 7");
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0].1.get(0), Some(&Value::Text("movie-7".into())));
    }

    #[test]
    fn range_scan_with_residual_filter() {
        let mut t = movies();
        let out = select(
            &mut t,
            "SELECT id FROM movies WHERE id >= 5 AND id < 10 AND gross > 60.0",
        );
        let ids: Vec<i64> = out
            .rows
            .iter()
            .map(|(_, r)| r.get(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(ids, vec![7, 8, 9]);
    }

    #[test]
    fn order_by_and_limit() {
        let mut t = movies();
        let out = select(&mut t, "SELECT id FROM movies ORDER BY id DESC LIMIT 3");
        let ids: Vec<i64> = out
            .rows
            .iter()
            .map(|(_, r)| r.get(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(ids, vec![19, 18, 17]);
    }

    #[test]
    fn select_star_projects_all() {
        let mut t = movies();
        let out = select(&mut t, "SELECT * FROM movies WHERE id = 0");
        assert_eq!(out.columns, vec!["id", "title", "gross"]);
        assert_eq!(out.rows[0].1.arity(), 3);
    }

    #[test]
    fn reads_recorded() {
        let mut t = movies();
        let before = t.stats().reads;
        select(&mut t, "SELECT * FROM movies WHERE id < 5");
        assert_eq!(t.stats().reads, before + 5);
    }

    #[test]
    fn update_uses_old_row_values() {
        let mut t = movies();
        let filter = parse_expr("id = 3").unwrap();
        let (access, bound) = plan_locate(&t, Some(&filter)).unwrap();
        let schema = t.schema().clone();
        let gross_col = schema.index_of("gross").unwrap();
        // SET gross = gross + 1, then id stays keyed correctly.
        let assign_expr = crate::expr::bind(&parse_expr("gross + 1.0").unwrap(), &schema).unwrap();
        let rids =
            run_update(&mut t, &access, bound.as_ref(), &[(gross_col, assign_expr)]).unwrap();
        assert_eq!(rids.len(), 1);
        assert_eq!(
            t.peek(rids[0]).unwrap().get(gross_col),
            Some(&Value::Float(31.0))
        );
    }

    #[test]
    fn delete_removes_rows() {
        let mut t = movies();
        let filter = parse_expr("id >= 15").unwrap();
        let (access, bound) = plan_locate(&t, Some(&filter)).unwrap();
        let rids = run_delete(&mut t, &access, bound.as_ref()).unwrap();
        assert_eq!(rids.len(), 5);
        assert_eq!(t.len(), 15);
    }

    #[test]
    fn const_eval_folds_and_rejects_columns() {
        assert_eq!(
            const_eval(&parse_expr("1 + 2 * 3").unwrap()).unwrap(),
            Value::Int(7)
        );
        assert_eq!(
            const_eval(&parse_expr("-1.5").unwrap()).unwrap(),
            Value::Float(-1.5)
        );
        assert!(const_eval(&parse_expr("id + 1").unwrap()).is_err());
    }
}
