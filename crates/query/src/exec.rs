//! Plan execution against a single table.

use crate::ast::{Expr, UnaryOp};
use crate::error::{QueryError, Result};
use crate::expr::{eval, eval_filter, BoundExpr};
use crate::plan::{AccessPath, SelectPlan};
use delayguard_storage::{Row, RowId, Table, Value};
use std::ops::Bound;

/// Result of executing a SELECT: projected rows with their RowIds.
///
/// The RowIds are retained deliberately: the delay defense charges each
/// *returned tuple* to the requester's popularity ledger (§2.1 treats a
/// multi-tuple result as the aggregate of simple single-tuple queries).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectOutput {
    /// Output column names.
    pub columns: Vec<String>,
    /// `(row id, projected row)` pairs in output order.
    pub rows: Vec<(RowId, Row)>,
}

impl SelectOutput {
    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The RowIds of every returned tuple.
    pub fn row_ids(&self) -> impl Iterator<Item = RowId> + '_ {
        self.rows.iter().map(|(rid, _)| *rid)
    }
}

/// Collect the RowIds of rows matched by `access` + `filter`.
pub fn locate(
    table: &Table,
    access: &AccessPath,
    filter: Option<&BoundExpr>,
) -> Result<Vec<RowId>> {
    let mut out = Vec::new();
    match access {
        AccessPath::FullScan => {
            for item in table.scan() {
                let (rid, row) = item?;
                if passes(filter, &row)? {
                    out.push(rid);
                }
            }
        }
        AccessPath::IndexEq { columns, key } => {
            let rids = table
                .index_lookup(columns, key)
                .ok_or_else(|| QueryError::Semantic("planned index disappeared".into()))?;
            for rid in rids {
                let row = table.peek(rid)?;
                if passes(filter, &row)? {
                    out.push(rid);
                }
            }
        }
        AccessPath::IndexRange { columns, lo, hi } => {
            let rids = table
                .index_range(columns, as_ref_bound(lo), as_ref_bound(hi))
                .ok_or_else(|| QueryError::Semantic("planned index disappeared".into()))?;
            for rid in rids {
                let row = table.peek(rid)?;
                if passes(filter, &row)? {
                    out.push(rid);
                }
            }
        }
    }
    Ok(out)
}

fn as_ref_bound(b: &Bound<Vec<Value>>) -> Bound<&Vec<Value>> {
    match b {
        Bound::Included(k) => Bound::Included(k),
        Bound::Excluded(k) => Bound::Excluded(k),
        Bound::Unbounded => Bound::Unbounded,
    }
}

fn passes(filter: Option<&BoundExpr>, row: &Row) -> Result<bool> {
    match filter {
        Some(f) => eval_filter(f, row),
        None => Ok(true),
    }
}

/// A Volcano-style pull stream of `(row id, row)` pairs.
///
/// [`SelectCursor`] is the one implementation; the trait survives so
/// callers that only need pull semantics stay decoupled from the cursor.
pub trait RowStream {
    /// Pull the next `(row id, row)` pair, or `None` at end of stream.
    fn next_row(&mut self) -> Result<Option<(RowId, Row)>>;
}

/// Reusable executor scratch: the buffers a cursor borrows instead of
/// allocating per query. Recycle one per connection (or per bench
/// thread) and the steady-state open/pull path allocates nothing.
#[derive(Default)]
pub struct ExecScratch {
    /// Index-probe results (`IndexEq`/`IndexRange` access paths).
    rids: Vec<RowId>,
    /// Decode target when the projection is not the identity.
    row: Row,
}

impl ExecScratch {
    /// Fresh, empty scratch. Buffers grow on first use and are then
    /// recycled.
    pub fn new() -> ExecScratch {
        ExecScratch::default()
    }
}

/// A caller-owned, recycled chunk of `(RowId, Row)` pairs.
///
/// `clear` only resets the logical length: the pairs (and the per-value
/// heap capacity inside each [`Row`]) stay allocated, so refilling a
/// `RowBuf` with rows of similar shape copies payload bytes but
/// allocates nothing.
#[derive(Default)]
pub struct RowBuf {
    rows: Vec<(RowId, Row)>,
    len: usize,
}

impl RowBuf {
    /// Fresh, empty buffer.
    pub fn new() -> RowBuf {
        RowBuf::default()
    }

    /// Logical length (rows filled since the last `clear`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The filled rows.
    pub fn rows(&self) -> &[(RowId, Row)] {
        &self.rows[..self.len]
    }

    /// Reset the logical length, keeping every allocation for reuse.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// The next free slot, growing the pool if needed.
    fn slot(&mut self) -> &mut (RowId, Row) {
        if self.len == self.rows.len() {
            self.rows.push((RowId::from_raw(0), Row::new(Vec::new())));
        }
        &mut self.rows[self.len]
    }

    /// Commit the slot returned by the last `slot` call.
    fn commit(&mut self) {
        self.len += 1;
    }
}

/// Where the cursor's rows come from.
enum Src<'a> {
    /// Index probe: RowIds resolved at open into borrowed scratch.
    Rids { rids: &'a [RowId], pos: usize },
    /// Lazy full heap scan.
    Scan(delayguard_storage::heap::HeapScan<'a>),
    /// Sort output (the one pipeline breaker): owns its spill, already
    /// filtered and ordered.
    Sorted { rows: Vec<(RowId, Row)>, pos: usize },
}

/// An open SELECT pipeline: pull projected rows one at a time.
///
/// The pipeline is linear by construction (source → filter → [sort] →
/// limit → project), so instead of a tree of boxed operators the cursor
/// holds each stage inline: no allocation at open (for index paths) and
/// no virtual dispatch per row. `SortOp`'s role survives as the `Sorted`
/// source, the one stage allowed to own a spill buffer.
///
/// The cursor captures `table.len()` at open so the pricing layer can
/// read cardinality without re-acquiring the table lock mid-stream, and
/// counts yielded rows so the executor can charge `record_reads` for
/// exactly the rows a partially-consumed stream produced.
pub struct SelectCursor<'a> {
    table: &'a Table,
    src: Src<'a>,
    filter: Option<&'a BoundExpr>,
    /// `None` means the identity projection (all columns, schema order).
    projection: Option<&'a [usize]>,
    remaining: u64,
    /// Decode target when projecting (borrowed from [`ExecScratch`]).
    scratch: &'a mut Row,
    columns: &'a [String],
    table_rows: u64,
    yielded: u64,
}

impl SelectCursor<'_> {
    /// Pull the next projected row into `out` (reusing its allocations),
    /// returning its RowId, or `None` at end of stream.
    pub fn next_row_into(&mut self, out: &mut Row) -> Result<Option<RowId>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        // The sorted source is pre-filtered; rows are moved out of the
        // spill rather than copied.
        if let Src::Sorted { rows, pos } = &mut self.src {
            let Some((rid, row)) = rows.get_mut(*pos) else {
                self.remaining = 0;
                return Ok(None);
            };
            *pos += 1;
            match self.projection {
                None => std::mem::swap(out, row),
                Some(idx) => row.project_into(idx, out),
            }
            self.remaining -= 1;
            self.yielded += 1;
            return Ok(Some(*rid));
        }
        loop {
            // Identity projection decodes straight into the caller's row;
            // otherwise decode into scratch and project after the filter.
            let dst: &mut Row = match self.projection {
                None => &mut *out,
                Some(_) => &mut *self.scratch,
            };
            let rid = match &mut self.src {
                Src::Rids { rids, pos } => {
                    let Some(&rid) = rids.get(*pos) else {
                        return Ok(None);
                    };
                    *pos += 1;
                    self.table.peek_into(rid, dst)?;
                    rid
                }
                Src::Scan(scan) => {
                    let Some((rid, rec)) = scan.next() else {
                        return Ok(None);
                    };
                    delayguard_storage::codec::decode_row_into(rec, dst)?;
                    rid
                }
                Src::Sorted { .. } => unreachable!("handled above"),
            };
            if passes(self.filter, dst)? {
                if let Some(idx) = self.projection {
                    self.scratch.project_into(idx, out);
                }
                self.remaining -= 1;
                self.yielded += 1;
                return Ok(Some(rid));
            }
        }
    }

    /// Pull the next projected `(row id, row)` pair.
    pub fn next_row(&mut self) -> Result<Option<(RowId, Row)>> {
        let mut row = Row::new(Vec::new());
        Ok(self.next_row_into(&mut row)?.map(|rid| (rid, row)))
    }

    /// Pull up to `max_rows` rows into `buf` (cleared first), reusing its
    /// row slots. Returns the number of rows pulled.
    pub fn fill_chunk(&mut self, max_rows: usize, buf: &mut RowBuf) -> Result<usize> {
        buf.clear();
        while buf.len() < max_rows {
            let slot = buf.slot();
            match self.next_row_into(&mut slot.1)? {
                Some(rid) => {
                    slot.0 = rid;
                    buf.commit();
                }
                None => break,
            }
        }
        Ok(buf.len())
    }

    /// Output column names, in projection order.
    pub fn columns(&self) -> &[String] {
        self.columns
    }

    /// Table cardinality captured when the cursor was opened.
    pub fn table_rows(&self) -> u64 {
        self.table_rows
    }

    /// Rows yielded so far.
    pub fn rows_yielded(&self) -> u64 {
        self.yielded
    }
}

impl RowStream for SelectCursor<'_> {
    fn next_row(&mut self) -> Result<Option<(RowId, Row)>> {
        SelectCursor::next_row(self)
    }
}

/// Open a SELECT plan as a pull pipeline over `table`.
///
/// Index-path opens are allocation-free: probe results land in
/// `scratch.rids`, and per-row decoding reuses either the caller's row
/// (identity projection) or `scratch.row`. Only full scans (one lazy
/// iterator, still allocation-free here) and ORDER BY (spill) differ.
pub fn open_select<'a>(
    table: &'a Table,
    plan: &'a SelectPlan,
    scratch: &'a mut ExecScratch,
) -> Result<SelectCursor<'a>> {
    let ExecScratch { rids, row } = scratch;
    rids.clear();
    let mut src = match &plan.access {
        AccessPath::FullScan => Src::Scan(table.heap().scan()),
        AccessPath::IndexEq { columns, key } => {
            if !table.index_lookup_into(columns, key, rids) {
                return Err(QueryError::Semantic("planned index disappeared".into()));
            }
            Src::Rids { rids, pos: 0 }
        }
        AccessPath::IndexRange { columns, lo, hi } => {
            if !table.index_range_into(columns, as_ref_bound(lo), as_ref_bound(hi), rids) {
                return Err(QueryError::Semantic("planned index disappeared".into()));
            }
            Src::Rids { rids, pos: 0 }
        }
    };
    let mut filter = plan.filter.as_ref();
    if let Some((col, ascending)) = plan.order_by {
        // Pipeline breaker: drain source through the filter into an owned
        // spill, sort with the same stable comparator as always, and
        // serve rows from the spill. The filter is consumed here.
        let mut spill: Vec<(RowId, Row)> = Vec::new();
        match src {
            Src::Rids { rids, pos } => {
                for &rid in &rids[pos..] {
                    let row = table.peek(rid)?;
                    if passes(filter, &row)? {
                        spill.push((rid, row));
                    }
                }
            }
            Src::Scan(scan) => {
                for (rid, rec) in scan {
                    let row = delayguard_storage::codec::decode_row(rec)?;
                    if passes(filter, &row)? {
                        spill.push((rid, row));
                    }
                }
            }
            Src::Sorted { .. } => unreachable!("sort source cannot pre-exist"),
        }
        spill.sort_by(|(_, a), (_, b)| {
            let av = a.get(col).unwrap_or(&Value::Null);
            let bv = b.get(col).unwrap_or(&Value::Null);
            if ascending {
                av.cmp(bv)
            } else {
                bv.cmp(av)
            }
        });
        src = Src::Sorted {
            rows: spill,
            pos: 0,
        };
        filter = None;
    }
    let projection = if plan
        .projection
        .iter()
        .copied()
        .eq(0..table.schema().arity())
    {
        None
    } else {
        Some(plan.projection.as_slice())
    };
    Ok(SelectCursor {
        table,
        src,
        filter,
        projection,
        remaining: plan.limit.unwrap_or(u64::MAX),
        scratch: row,
        columns: &plan.output_names,
        table_rows: table.len() as u64,
        yielded: 0,
    })
}

/// Execute a SELECT plan by draining the pull pipeline.
pub fn run_select(table: &mut Table, plan: &SelectPlan) -> Result<SelectOutput> {
    let mut rows = Vec::new();
    let mut scratch = ExecScratch::new();
    let yielded = {
        let mut cursor = open_select(table, plan, &mut scratch)?;
        while let Some(pair) = cursor.next_row()? {
            rows.push(pair);
        }
        cursor.rows_yielded()
    };
    table.record_reads(yielded);
    Ok(SelectOutput {
        columns: plan.output_names.clone(),
        rows,
    })
}

/// Apply UPDATE assignments to located rows.
///
/// Assignment expressions are evaluated against the *old* row (SQL
/// semantics), so `SET a = a + 1, b = a` uses the original `a` for both.
pub fn run_update(
    table: &mut Table,
    access: &AccessPath,
    filter: Option<&BoundExpr>,
    assignments: &[(usize, BoundExpr)],
) -> Result<Vec<RowId>> {
    let rids = locate(table, access, filter)?;
    let mut out = Vec::with_capacity(rids.len());
    for rid in rids {
        let old = table.peek(rid)?;
        let mut new = old.clone();
        for (col, e) in assignments {
            new.set(*col, eval(e, &old)?);
        }
        let new_rid = table.update(rid, new)?;
        out.push(new_rid);
    }
    Ok(out)
}

/// Delete located rows, returning their RowIds.
pub fn run_delete(
    table: &mut Table,
    access: &AccessPath,
    filter: Option<&BoundExpr>,
) -> Result<Vec<RowId>> {
    let rids = locate(table, access, filter)?;
    for rid in &rids {
        table.delete(*rid)?;
    }
    Ok(rids)
}

/// Evaluate an INSERT value expression, which must be constant (no column
/// references).
pub fn const_eval(expr: &Expr) -> Result<Value> {
    let bound = to_const_bound(expr)?;
    let empty = Row::new(Vec::new());
    eval(&bound, &empty)
}

fn to_const_bound(expr: &Expr) -> Result<BoundExpr> {
    Ok(match expr {
        Expr::Literal(v) => BoundExpr::Literal(v.clone()),
        Expr::Column(name) => {
            return Err(QueryError::Semantic(format!(
                "column reference `{name}` not allowed in VALUES"
            )))
        }
        Expr::Unary { op, expr } => BoundExpr::Unary {
            op: match op {
                UnaryOp::Not => UnaryOp::Not,
                UnaryOp::Neg => UnaryOp::Neg,
            },
            expr: Box::new(to_const_bound(expr)?),
        },
        Expr::Binary { op, left, right } => BoundExpr::Binary {
            op: *op,
            left: Box::new(to_const_bound(left)?),
            right: Box::new(to_const_bound(right)?),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr};
    use crate::planner::{plan_locate, plan_select};
    use delayguard_storage::{Column, DataType, Schema};

    fn movies() -> Table {
        let schema = Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::not_null("title", DataType::Text),
            Column::new("gross", DataType::Float),
        ])
        .unwrap();
        let mut t = Table::new("movies", schema);
        t.create_index("pk", &["id"], true).unwrap();
        for i in 0..20i64 {
            t.insert(Row::new(vec![
                Value::Int(i),
                Value::Text(format!("movie-{i}")),
                Value::Float((i * 10) as f64),
            ]))
            .unwrap();
        }
        t
    }

    fn select(t: &mut Table, sql: &str) -> SelectOutput {
        let stmt = parse(sql).unwrap();
        match stmt {
            crate::ast::Statement::Select {
                projection,
                filter,
                order_by,
                limit,
                ..
            } => {
                let plan =
                    plan_select(t, &projection, filter.as_ref(), order_by.as_ref(), limit).unwrap();
                run_select(t, &plan).unwrap()
            }
            other => panic!("not a select: {other:?}"),
        }
    }

    #[test]
    fn point_lookup_via_index() {
        let mut t = movies();
        let out = select(&mut t, "SELECT title FROM movies WHERE id = 7");
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0].1.get(0), Some(&Value::Text("movie-7".into())));
    }

    #[test]
    fn range_scan_with_residual_filter() {
        let mut t = movies();
        let out = select(
            &mut t,
            "SELECT id FROM movies WHERE id >= 5 AND id < 10 AND gross > 60.0",
        );
        let ids: Vec<i64> = out
            .rows
            .iter()
            .map(|(_, r)| r.get(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(ids, vec![7, 8, 9]);
    }

    #[test]
    fn order_by_and_limit() {
        let mut t = movies();
        let out = select(&mut t, "SELECT id FROM movies ORDER BY id DESC LIMIT 3");
        let ids: Vec<i64> = out
            .rows
            .iter()
            .map(|(_, r)| r.get(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(ids, vec![19, 18, 17]);
    }

    #[test]
    fn select_star_projects_all() {
        let mut t = movies();
        let out = select(&mut t, "SELECT * FROM movies WHERE id = 0");
        assert_eq!(out.columns, vec!["id", "title", "gross"]);
        assert_eq!(out.rows[0].1.arity(), 3);
    }

    #[test]
    fn reads_recorded() {
        let mut t = movies();
        let before = t.stats().reads;
        select(&mut t, "SELECT * FROM movies WHERE id < 5");
        assert_eq!(t.stats().reads, before + 5);
    }

    #[test]
    fn update_uses_old_row_values() {
        let mut t = movies();
        let filter = parse_expr("id = 3").unwrap();
        let (access, bound) = plan_locate(&t, Some(&filter)).unwrap();
        let schema = t.schema().clone();
        let gross_col = schema.index_of("gross").unwrap();
        // SET gross = gross + 1, then id stays keyed correctly.
        let assign_expr = crate::expr::bind(&parse_expr("gross + 1.0").unwrap(), &schema).unwrap();
        let rids =
            run_update(&mut t, &access, bound.as_ref(), &[(gross_col, assign_expr)]).unwrap();
        assert_eq!(rids.len(), 1);
        assert_eq!(
            t.peek(rids[0]).unwrap().get(gross_col),
            Some(&Value::Float(31.0))
        );
    }

    #[test]
    fn delete_removes_rows() {
        let mut t = movies();
        let filter = parse_expr("id >= 15").unwrap();
        let (access, bound) = plan_locate(&t, Some(&filter)).unwrap();
        let rids = run_delete(&mut t, &access, bound.as_ref()).unwrap();
        assert_eq!(rids.len(), 5);
        assert_eq!(t.len(), 15);
    }

    #[test]
    fn const_eval_folds_and_rejects_columns() {
        assert_eq!(
            const_eval(&parse_expr("1 + 2 * 3").unwrap()).unwrap(),
            Value::Int(7)
        );
        assert_eq!(
            const_eval(&parse_expr("-1.5").unwrap()).unwrap(),
            Value::Float(-1.5)
        );
        assert!(const_eval(&parse_expr("id + 1").unwrap()).is_err());
    }
}
