//! End-to-end cluster campaigns: the §2.4 attacks against the sharded,
//! replicated front door, asserted against the closed forms of
//! [`delayguard_core::analysis`].
//!
//! The load-bearing claims:
//!
//! * **Replication restores the paper's economics.** With delta-sync
//!   on, every node prices from the merged global aggregates, so both
//!   the sequential crawl and the shard-grouped crawl pay the
//!   single-node Eq. 3 total, and the median user sees the single-node
//!   Eq. 1 delay — within 10% plus the replication-lag slack. This
//!   holds through a mid-campaign partition and heal.
//! * **Without replication the defense collapses.** Each shard prices
//!   from 1/N-th of the distribution, and the adversary total lands on
//!   `sharded_unreplicated_total` — a small fraction (≈ (N+1)/(2N²))
//!   of the closed form. That negative control is why the delta-sync
//!   protocol exists.
//! * **Determinism.** Same seed, same drive ⇒ bit-identical event
//!   digest, gossip, partitions and heals included.

use delayguard_cluster::{
    ClusterCampaign, ClusterCampaignParams, ClusterConfig, ClusterLink, ClusterWorld,
};
use delayguard_core::gatekeeper::{GatekeeperConfig, RegistrationPolicy};
use delayguard_core::shaping::DelayShaping;
use delayguard_server::gate::GateConfig;
use delayguard_sim::MetricValue;
use delayguard_testkit::net::{self, NetLink, QueryOutcome};
use delayguard_testkit::seed::{check_in, check_seeds_in};

const PKG: &str = "delayguard-cluster";

fn rel_err(measured: f64, expected: f64) -> f64 {
    (measured - expected).abs() / expected
}

fn params(n: u64, nodes: usize, sync_interval_secs: f64) -> ClusterCampaignParams {
    let mut p = ClusterCampaignParams::default();
    p.base.n = n;
    p.nodes = nodes;
    p.sync_interval_secs = sync_interval_secs;
    p
}

fn wide_open() -> GatekeeperConfig {
    GatekeeperConfig {
        per_user_rate: 1e9,
        per_user_burst: 1e9,
        per_subnet_rate: 1e9,
        per_subnet_burst: 1e9,
        registration: RegistrationPolicy::interval(0.0),
        storefront_query_threshold: 0,
    }
}

fn counter(world: &ClusterWorld, node: usize, name: &str) -> u64 {
    match world.node_registry(node).value(name) {
        Some(MetricValue::Counter(v)) => v,
        other => panic!("metric {name} on node {node}: {other:?}"),
    }
}

/// The router speaks the unchanged client protocol: one identity per
/// `REGISTER` (duplicate shard verdicts are swallowed), point queries
/// land on the owning shard, and gossip carries deltas both ways.
#[test]
fn router_hands_out_one_identity_and_routes_point_queries() {
    check_in(
        PKG,
        "router_hands_out_one_identity_and_routes_point_queries",
        11,
        |seed| {
            let mut world = ClusterWorld::new(
                seed,
                ClusterConfig {
                    nodes: 2,
                    gate: GateConfig {
                        gatekeeper: wide_open(),
                        ..GateConfig::default()
                    },
                    sync_interval_secs: 60.0,
                    ..ClusterConfig::default()
                },
            );
            let map = world.partition_map();
            for j in 0..2 {
                let db = world.node_db(j);
                db.execute_at(
                    "CREATE TABLE directory (id INT NOT NULL, entry TEXT NOT NULL)",
                    0.0,
                )
                .expect("create table");
                db.execute_at("CREATE UNIQUE INDEX directory_pk ON directory (id)", 0.0)
                    .expect("create index");
                for id in map.ids_of(j, 8) {
                    db.execute_at(
                        &format!("INSERT INTO directory VALUES ({id}, 'entry-{id}')"),
                        0.0,
                    )
                    .expect("insert");
                }
            }
            let mut link = world.connect_link([10, 0, 0, 1]);
            let (user, _) = net::register_until_admitted(&mut world, &mut link, [0; 4], 600.0)
                .expect("registration");
            assert_eq!(user, 1, "registrars assign ids deterministically");
            assert!(
                link.recv(0.0).expect("link alive").is_none(),
                "duplicate shard verdicts must be swallowed by the router"
            );
            // One point query per shard; both must come back with the
            // owner's row (start-up transient: each pays the 10 s cap).
            for id in [0u64, 1] {
                let sql = format!("SELECT * FROM directory WHERE id = {id}");
                match net::run_query(&mut link, 1 + id as u32, user, &sql, 3600.0)
                    .expect("link alive")
                {
                    QueryOutcome::Rows { rows, .. } => {
                        assert_eq!(rows.len(), 1, "id {id} is a point lookup");
                    }
                    other => panic!("id {id}: {other:?}"),
                }
            }
            // Each shard admitted exactly its own query.
            assert_eq!(counter(&world, 0, "server_queries_admitted"), 1);
            assert_eq!(counter(&world, 1, "server_queries_admitted"), 1);
            // Gossip: one round folds a delta into every node.
            world.sync_now();
            assert!(counter(&world, 0, "cluster_deltas_applied") >= 1);
            assert!(counter(&world, 1, "cluster_deltas_applied") >= 1);
            assert!(world.peer_frames_delivered() >= 2);
            // A second identity gets the next id, on every node.
            let mut link2 = world.connect_link([10, 0, 1, 1]);
            let (user2, _) = net::register_until_admitted(&mut world, &mut link2, [0; 4], 600.0)
                .expect("registration");
            assert_eq!(user2, 2);
        },
    );
}

/// The flagship: the §2.4 sequential crawl against a 4-node replicated
/// cluster pays the single-node Eq. 3 total, and the median user sees
/// the single-node Eq. 1 delay — the delay policy is restored to the
/// paper's economics even though no node owns more than a quarter of
/// the relation.
#[test]
fn replicated_sequential_crawl_matches_single_node_closed_form() {
    check_in(
        PKG,
        "replicated_sequential_crawl_matches_single_node_closed_form",
        7,
        |seed| {
            let mut campaign = ClusterCampaign::new(seed, ClusterCampaignParams::default());
            let ranks = campaign.all_ranks();
            let report = campaign.sequential_crawl([10, 0, 0, 1], &ranks);
            let tolerance = campaign.tolerance();
            let expected = campaign.analytic_total();
            assert_eq!(report.queries, ranks.len() as u64);
            assert_eq!(report.refused, 0, "gatekeeper is wide open");
            assert!(
                rel_err(report.total_delay_secs, expected) <= tolerance,
                "adversary total {} vs closed form {} (rel err {:.4}, tolerance {:.4})",
                report.total_delay_secs,
                expected,
                rel_err(report.total_delay_secs, expected),
                tolerance,
            );
            assert!(
                report.min_margin_secs >= -1e-6,
                "a tuple was released {}s early",
                -report.min_margin_secs
            );
            let median = campaign.median_user_delay([10, 9, 0, 1]);
            let expected_median = campaign.analytic_delay_at_rank(campaign.median_rank());
            assert!(
                rel_err(median, expected_median) <= tolerance,
                "median user delay {} vs closed form {} (tolerance {:.4})",
                median,
                expected_median,
                tolerance,
            );
        },
    );
}

/// The shard-aware crawl (one shard at a time) gains nothing against a
/// replicated cluster — and the result survives a mid-campaign
/// partition and heal: deltas held while a node is cut flood through
/// afterwards, and the totals still land on the closed form.
#[test]
fn shard_grouped_crawl_with_partition_and_heal_matches_closed_form() {
    check_in(
        PKG,
        "shard_grouped_crawl_with_partition_and_heal_matches_closed_form",
        23,
        |seed| {
            let mut campaign = ClusterCampaign::new(seed, ClusterCampaignParams::default());
            let ranks = campaign.shard_grouped_ranks();
            let (head, rest) = ranks.split_at(ranks.len() / 2);
            let (mid, tail) = rest.split_at(rest.len() / 2);
            let mut total = 0.0;
            let mut min_margin = f64::INFINITY;

            let r1 = campaign.sequential_crawl([10, 0, 0, 1], head);
            total += r1.total_delay_secs;
            min_margin = min_margin.min(r1.min_margin_secs);

            campaign.world().cut_node(1);
            let r2 = campaign.sequential_crawl([10, 0, 0, 2], mid);
            total += r2.total_delay_secs;
            min_margin = min_margin.min(r2.min_margin_secs);
            assert!(
                campaign.world().peer_frames_held() > 0,
                "the partition must actually hold gossip frames"
            );

            campaign.world().heal_node(1);
            let r3 = campaign.sequential_crawl([10, 0, 0, 3], tail);
            total += r3.total_delay_secs;
            min_margin = min_margin.min(r3.min_margin_secs);
            campaign.world().sync_now();
            assert_eq!(
                campaign.world().peer_frames_pending(),
                0,
                "heal must flood every held frame through"
            );

            let tolerance = campaign.tolerance();
            let expected = campaign.analytic_total();
            assert!(
                rel_err(total, expected) <= tolerance,
                "shard-aware total {} vs closed form {} (rel err {:.4}, tolerance {:.4})",
                total,
                expected,
                rel_err(total, expected),
                tolerance,
            );
            assert!(min_margin >= -1e-6);
            let median = campaign.median_user_delay([10, 9, 0, 1]);
            let expected_median = campaign.analytic_delay_at_rank(campaign.median_rank());
            assert!(
                rel_err(median, expected_median) <= tolerance,
                "median user delay {median} vs closed form {expected_median}",
            );
        },
    );
}

/// The negative control: with replication disabled, each shard prices
/// from its local 1/N-th of the distribution and the shard-aware crawl
/// pays only `sharded_unreplicated_total` — for 4 nodes under α=β=1,
/// about 14% of the single-node total. Eq. 4 is defeated.
#[test]
fn unreplicated_shards_collapse_the_adversary_total() {
    check_in(
        PKG,
        "unreplicated_shards_collapse_the_adversary_total",
        5,
        |seed| {
            let mut campaign = ClusterCampaign::new(seed, params(1100, 4, 0.0));
            let ranks = campaign.shard_grouped_ranks();
            let report = campaign.sequential_crawl([10, 0, 0, 1], &ranks);
            assert_eq!(
                campaign.world().peer_frames_delivered(),
                0,
                "replication is off: no gossip may flow"
            );
            let expected = campaign.analytic_unreplicated_total();
            assert!(
                rel_err(report.total_delay_secs, expected) <= campaign.tolerance(),
                "unreplicated total {} vs sharded closed form {} (rel err {:.4})",
                report.total_delay_secs,
                expected,
                rel_err(report.total_delay_secs, expected),
            );
            // The defeat: a small fraction of the single-node economics.
            let single_node = campaign.analytic_total();
            assert!(
                report.total_delay_secs < 0.2 * single_node,
                "sharding without replication must collapse the total: {} vs {}",
                report.total_delay_secs,
                single_node,
            );
            assert!(report.min_margin_secs >= -1e-6);
        },
    );
}

/// Same seed, same drive ⇒ bit-identical executions — gossip rounds,
/// a partition, a heal, and a Zipf workload included.
#[test]
fn same_seed_drives_bit_identical_executions() {
    check_seeds_in(
        PKG,
        "same_seed_drives_bit_identical_executions",
        &[3, 17],
        |seed| {
            let run = |seed: u64| {
                let mut campaign = ClusterCampaign::new(seed, params(120, 4, 60.0));
                let mut ranks = campaign.zipf_ranks(24);
                ranks.extend_from_slice(&campaign.all_ranks()[..16]);
                let (a, b) = ranks.split_at(ranks.len() / 2);
                campaign.sequential_crawl([10, 0, 0, 1], a);
                campaign.world().cut_node(2);
                campaign.sequential_crawl([10, 0, 0, 2], b);
                campaign.world().heal_node(2);
                campaign.world().sync_now();
                (
                    campaign.world().digest(),
                    campaign.world().frames_delivered(),
                )
            };
            let (d1, f1) = run(seed);
            let (d2, f2) = run(seed);
            assert_eq!(d1, d2, "digests diverged for seed {seed}");
            assert_eq!(f1, f2);
        },
    );
}

/// Delay shaping rides `ClusterConfig::guard` onto every node: a shaped
/// cluster replays bit-identically under the same seed (jitter is a pure
/// function of the folded seed, query nonce, and tuple key — on whichever
/// shard prices it), a *disabled* shaping knob is inert down to the wire
/// digest, and enabling it only raises the charged totals.
#[test]
fn shaped_cluster_replays_bit_identically() {
    check_in(PKG, "shaped_cluster_replays_bit_identically", 29, |seed| {
        let run = |shaping: DelayShaping| {
            let mut p = params(120, 4, 60.0);
            p.base.shaping = shaping;
            let mut campaign = ClusterCampaign::new(seed, p);
            let ranks: Vec<u64> = (1..=48).collect();
            let report = campaign.sequential_crawl([10, 0, 0, 1], &ranks);
            assert!(report.min_margin_secs >= -1e-6);
            (campaign.world().digest(), report.total_delay_secs)
        };

        let shaping = DelayShaping::new(3600.0, 8.0, 0.25, 0xFACE);
        let (d1, total1) = run(shaping);
        let (d2, total2) = run(shaping);
        assert_eq!(d1, d2, "shaped cluster diverged for seed {seed}");
        assert_eq!(total1.to_bits(), total2.to_bits());

        let (plain_digest, plain_total) = run(DelayShaping::off());
        let mut loud_but_off = shaping;
        loud_but_off.enabled = false;
        let (off_digest, off_total) = run(loud_but_off);
        assert_eq!(
            plain_digest, off_digest,
            "disabled shaping must not perturb the cluster"
        );
        assert_eq!(plain_total.to_bits(), off_total.to_bits());

        assert_ne!(d1, plain_digest, "shaping must change the wire trace");
        assert!(total1 > plain_total, "shaping only raises prices");
    });
}

/// Writes go through the same front door as reads: the router pins each
/// `INSERT`/`UPDATE`/`DELETE` to the shard owning its partition key, the
/// mutation feeds the owner's update-rate tracker, and the aggregate
/// rides the existing `DELTA` gossip — so after one sync round the
/// owner prices `d = c/(N·r)` from the *global* cardinality, exactly
/// like the read-side closed forms.
#[test]
fn writes_route_to_owners_and_ride_delta_sync() {
    check_in(
        PKG,
        "writes_route_to_owners_and_ride_delta_sync",
        37,
        |seed| {
            use delayguard_core::{GuardConfig, GuardPolicy, UpdateDelayPolicy};
            use delayguard_server::gate::MutationVerb;
            use delayguard_testkit::net::MutationOutcome;

            let mut world = ClusterWorld::new(
                seed,
                ClusterConfig {
                    nodes: 2,
                    guard: GuardConfig {
                        policy: GuardPolicy::UpdateRate(UpdateDelayPolicy::new(0.1).with_cap(10.0)),
                        ..GuardConfig::paper_default()
                    },
                    gate: GateConfig {
                        gatekeeper: wide_open(),
                        ..GateConfig::default()
                    },
                    sync_interval_secs: 60.0,
                    ..ClusterConfig::default()
                },
            );
            // Gossip only when the test says so: the before/after contrast
            // below is exactly the replication effect.
            world.set_sync_enabled(false);
            let map = world.partition_map();
            for j in 0..2 {
                let db = world.node_db(j);
                db.execute_at(
                    "CREATE TABLE directory (id INT NOT NULL, entry TEXT NOT NULL)",
                    0.0,
                )
                .expect("create table");
                for id in map.ids_of(j, 8) {
                    db.execute_at(
                        &format!("INSERT INTO directory VALUES ({id}, 'entry-{id}')"),
                        0.0,
                    )
                    .expect("insert");
                }
            }
            let mut link = world.connect_link([10, 0, 0, 1]);
            let (user, _) = net::register_until_admitted(&mut world, &mut link, [0; 4], 600.0)
                .expect("register");

            // INSERT id 8 → node 0 (8 mod 2): its data version moves, the
            // peer's does not.
            let out = net::run_mutation(
                &mut link,
                101,
                user,
                MutationVerb::Insert,
                "INSERT INTO directory VALUES (8, 'entry-8')",
                600.0,
            )
            .expect("link alive");
            let MutationOutcome::Mutated {
                rows, data_version, ..
            } = out
            else {
                panic!("insert: {out:?}");
            };
            assert_eq!(rows, 1);
            assert_eq!(
                data_version,
                world.node_db(0).table_data_version("directory").unwrap(),
                "MUTATED must report the owner's post-write data version"
            );
            assert_eq!(data_version, 5, "four seed inserts plus this one");
            assert_eq!(world.node_db(1).table_data_version("directory").unwrap(), 4);

            // UPDATE id 1 and DELETE id 3 → node 1; node 0 stays untouched.
            for (qid, verb, sql) in [
                (
                    102,
                    MutationVerb::Update,
                    "UPDATE directory SET entry = 'u1' WHERE id = 1",
                ),
                (
                    103,
                    MutationVerb::Delete,
                    "DELETE FROM directory WHERE id = 3",
                ),
            ] {
                let out =
                    net::run_mutation(&mut link, qid, user, verb, sql, 600.0).expect("link alive");
                assert_eq!(out.rows(), Some(1), "{sql}: {out:?}");
            }
            assert_eq!(world.node_db(0).table_data_version("directory").unwrap(), 5);
            assert_eq!(world.node_db(1).table_data_version("directory").unwrap(), 6);

            // The update aggregate that will gossip: the update and the
            // delete each count one update event (inserts only ensure the
            // row is tracked), and the physical row count reflects the
            // delete.
            let delta = world.node_gate(1).export_delta();
            let (_, dir) = delta
                .tables
                .iter()
                .find(|(name, _)| name == "directory")
                .expect("directory delta");
            let total_updates: f64 = dir.updates.iter().map(|(_, c)| c).sum();
            assert!(
                (total_updates - 2.0).abs() < 1e-9,
                "1 update + 1 delete, got {total_updates}"
            );
            assert_eq!(dir.rows, 3, "node 1 holds ids 1, 5, 7 after the delete");

            // Let the update window grow, then price the updated tuple on
            // its owner before and after one gossip round. Before: n is the
            // owner's local slice. After: the peer's delta raises n to the
            // global cardinality, so d = c/(N·r) drops by roughly the
            // local/global row ratio (3/8) — the write fed pricing, and the
            // aggregate rode the sync.
            world.run_for(150.0);
            // The snapshot path prices from the last-built snapshot; the
            // server's background refresher folds pending events in on a
            // cadence. Pin the refreshes here so both reads price from an
            // up-to-date view.
            world.node_db(1).refresh();
            let read = |world: &ClusterWorld, link: &mut ClusterLink, qid| match net::run_query(
                link,
                qid,
                user,
                "SELECT * FROM directory WHERE id = 1",
                3600.0,
            )
            .expect("link alive")
            {
                QueryOutcome::Rows {
                    rows, delay_secs, ..
                } => {
                    assert_eq!(rows.len(), 1, "point lookup at t={}", world.now_secs());
                    delay_secs
                }
                other => panic!("read id 1: {other:?}"),
            };
            let d_before = read(&world, &mut link, 201);
            assert!(
                d_before > 1.0 && d_before < 10.0,
                "pre-sync delay should be computed, not capped: {d_before}"
            );
            world.sync_now();
            world.node_db(1).refresh();
            let d_after = read(&world, &mut link, 202);
            let ratio = d_after / d_before;
            assert!(
                (0.2..0.6).contains(&ratio),
                "global n should cut the delay by ~3/8: before {d_before}, after {d_after}"
            );
        },
    );
}

/// The combined access+update policy is inert when the update term is
/// off: a read-only cluster run under `Hybrid(access, update)` with the
/// update term zeroed is bit-identical — digest and totals — to the
/// plain access-rate cluster, while a live update term changes the wire
/// trace and only raises prices (mirrors the shaping inertness proof).
#[test]
fn update_term_off_is_bit_identical_for_cluster_reads() {
    check_in(
        PKG,
        "update_term_off_is_bit_identical_for_cluster_reads",
        41,
        |seed| {
            use delayguard_core::{AccessDelayPolicy, GuardConfig, GuardPolicy, UpdateDelayPolicy};

            let run = |policy: GuardPolicy| {
                let mut world = ClusterWorld::new(
                    seed,
                    ClusterConfig {
                        nodes: 2,
                        guard: GuardConfig {
                            policy,
                            ..GuardConfig::paper_default()
                        },
                        gate: GateConfig {
                            gatekeeper: wide_open(),
                            ..GateConfig::default()
                        },
                        sync_interval_secs: 60.0,
                        ..ClusterConfig::default()
                    },
                );
                let map = world.partition_map();
                for j in 0..2 {
                    let db = world.node_db(j);
                    db.execute_at(
                        "CREATE TABLE directory (id INT NOT NULL, entry TEXT NOT NULL)",
                        0.0,
                    )
                    .expect("create table");
                    for id in map.ids_of(j, 8) {
                        db.execute_at(
                            &format!("INSERT INTO directory VALUES ({id}, 'entry-{id}')"),
                            0.0,
                        )
                        .expect("insert");
                    }
                }
                let mut link = world.connect_link([10, 0, 0, 1]);
                let (user, _) = net::register_until_admitted(&mut world, &mut link, [0; 4], 600.0)
                    .expect("register");
                // Age the update window (seed inserts count as update
                // events at t = 0) so a live update term has a real
                // price, then read every id across two gossip rounds.
                world.run_for(1000.0);
                let mut total = 0.0;
                for pass in 0..2u32 {
                    for id in 0..8u64 {
                        let sql = format!("SELECT * FROM directory WHERE id = {id}");
                        let qid = 100 * (pass + 1) + id as u32;
                        match net::run_query(&mut link, qid, user, &sql, 3600.0)
                            .expect("link alive")
                        {
                            QueryOutcome::Rows { delay_secs, .. } => total += delay_secs,
                            other => panic!("id {id}: {other:?}"),
                        }
                    }
                    world.run_for(120.0);
                }
                (world.digest(), total)
            };

            let access = AccessDelayPolicy::new(1.5, 1.0);
            let (d_plain, t_plain) = run(GuardPolicy::AccessRate(access));
            let (d_off, t_off) = run(GuardPolicy::Hybrid(
                access,
                UpdateDelayPolicy::new(0.3).with_cap(0.0),
            ));
            assert_eq!(
                d_plain, d_off,
                "a zeroed update term must not perturb the cluster (seed {seed})"
            );
            assert_eq!(t_plain.to_bits(), t_off.to_bits());

            let (d_on, t_on) = run(GuardPolicy::Hybrid(
                access,
                UpdateDelayPolicy::new(0.3).with_cap(30.0),
            ));
            assert_ne!(d_plain, d_on, "a live update term must change the trace");
            assert!(t_on > t_plain, "max-combine only raises prices");
        },
    );
}
