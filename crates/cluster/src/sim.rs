//! The simulated cluster: N real server stacks behind a router, on one
//! virtual clock.
//!
//! A [`ClusterWorld`] owns `N` complete nodes — each the exact object
//! graph the TCP server owns (a [`GuardedDatabase`] with the snapshot
//! read path, a manual-mode [`DelayScheduler`] with the real timer
//! wheel, a [`FrontDoor`]) — all sharing one [`ManualClock`]. Clients
//! connect to the *router*, which speaks the unchanged client protocol:
//!
//! * `REGISTER` is broadcast to every node in node order. Registrars
//!   assign identities deterministically, so all nodes hand out the
//!   same user id; the router forwards node 0's verdict and swallows
//!   the duplicates.
//! * `QUERY` is routed by the [`PartitionMap`]: a `WHERE id = k` point
//!   query goes to the owner node `k mod N`; anything else lands on
//!   node 0.
//!
//! Nodes gossip their popularity and gatekeeper aggregates on a sync
//! cadence: every `sync_interval_secs` each node exports a cumulative
//! [`Frame::Delta`] and sends it to every peer over the real wire codec
//! (what travels is bytes). Receivers fold it through
//! [`FrontDoor::apply_delta`], answer with `DELTA_ACK`, and republish
//! their policy snapshots — so `d(i)` converges to the global closed
//! form on every node. An unchanged delta (quiet node) is not re-sent.
//!
//! Determinism mirrors `delayguard-testkit`: single-threaded, one event
//! heap, connections and nodes iterate in id order, and
//! [`ClusterWorld::digest`] folds every delivered frame — client- and
//! peer-side — into an order-sensitive hash. [`ClusterWorld::cut_node`]
//! / [`ClusterWorld::heal_node`] partition a node away from gossip
//! (held frames flood through on heal), leaving client routing intact.

use crate::partition::PartitionMap;
use delayguard_core::clock::{nanos_to_secs, secs_to_nanos, Clock, ManualClock};
use delayguard_core::replica::ReplicaDelta;
use delayguard_core::{GuardConfig, GuardedDatabase};
use delayguard_query::Engine;
use delayguard_server::gate::{FrameSink, FrontDoor, GateConfig, SessionControl, SessionState};
use delayguard_server::metrics::ServerMetrics;
use delayguard_server::protocol::{read_frame, write_frame, Frame};
use delayguard_server::scheduler::DelayScheduler;
use delayguard_sim::Registry;
use delayguard_testkit::net::{Arrival, LinkError, NetLink, SimNet};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

/// Identifies one client connection to the router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(pub u64);

/// Configuration of a simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes (shards).
    pub nodes: usize,
    /// Guard (delay policy) configuration, applied to every node.
    pub guard: GuardConfig,
    /// Front-door configuration, applied to every node.
    pub gate: GateConfig,
    /// Timer-wheel granularity; delays round up to the next tick.
    pub tick: Duration,
    /// Per-connection cap on rows admitted but not yet delivered.
    pub send_queue_rows: usize,
    /// Gossip cadence in virtual seconds; `0.0` disables replication
    /// (the un-replicated negative control).
    pub sync_interval_secs: f64,
    /// One-way node-to-node latency for delta frames.
    pub peer_latency_secs: f64,
    /// One-way client-to-router latency (the "router hop").
    pub client_latency_secs: f64,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            nodes: 4,
            guard: GuardConfig::paper_default(),
            gate: GateConfig::default(),
            tick: Duration::from_millis(1),
            send_queue_rows: 4096,
            sync_interval_secs: 60.0,
            peer_latency_secs: 0.0,
            client_latency_secs: 0.0,
        }
    }
}

// ---- per-link frame sink (mirrors the testkit mesh sink) ----------------

struct ClusterSink {
    inner: Mutex<SinkInner>,
}

struct SinkInner {
    queue: Vec<Frame>,
    rows_cap: usize,
    rows_outstanding: usize,
}

impl ClusterSink {
    fn new(rows_cap: usize) -> ClusterSink {
        ClusterSink {
            inner: Mutex::new(SinkInner {
                queue: Vec::new(),
                rows_cap,
                rows_outstanding: 0,
            }),
        }
    }

    fn drain(&self) -> Vec<Frame> {
        let mut g = self.inner.lock();
        let out = std::mem::take(&mut g.queue);
        let rows = out
            .iter()
            .filter(|f| matches!(f, Frame::Row { .. } | Frame::Mutated { .. }))
            .count();
        g.rows_outstanding = g.rows_outstanding.saturating_sub(rows);
        out
    }
}

impl FrameSink for ClusterSink {
    fn push_control(&self, frame: Frame) {
        self.inner.lock().queue.push(frame);
    }

    fn push_row(&self, frame: Frame) {
        self.inner.lock().queue.push(frame);
    }

    fn try_reserve_rows(&self, n: usize) -> bool {
        let mut g = self.inner.lock();
        if g.rows_outstanding + n > g.rows_cap {
            return false;
        }
        g.rows_outstanding += n;
        true
    }

    fn release_rows(&self, n: usize) {
        let mut g = self.inner.lock();
        g.rows_outstanding = g.rows_outstanding.saturating_sub(n);
    }
}

// ---- events -------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    ToRouter,
    ToClient,
}

struct Ev {
    at: u64,
    seq: u64,
    kind: EvKind,
}

enum EvKind {
    /// A frame on a client↔router link.
    Deliver { conn: u64, dir: Dir, bytes: Vec<u8> },
    /// A frame on a node↔node peer link.
    PeerDeliver {
        from: usize,
        to: usize,
        bytes: Vec<u8>,
    },
    /// The gossip cadence fired.
    SyncTick,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Ev) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Ev) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Ev) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

// ---- nodes and connections ----------------------------------------------

struct Node {
    gate: Arc<FrontDoor>,
    scheduler: Arc<DelayScheduler>,
    registry: Registry,
    /// Inbound peer-link sink: `DELTA_ACK`s accumulate here.
    peer_sink: Arc<ClusterSink>,
    /// Last exported delta (tables + gate, seq ignored): an unchanged
    /// state is not re-gossiped.
    last_export: Option<ReplicaDelta>,
    /// Cut off from gossip (client routing still works).
    cut: bool,
}

struct Conn {
    peer_ip: [u8; 4],
    open: bool,
    /// `Some(j)`: a direct connection to node `j` that bypasses the
    /// router (registration is not broadcast, queries are not routed).
    /// The baseline a routed query's overhead is measured against.
    pinned: Option<usize>,
    /// One sink and session per node: the router fans a client out to
    /// whichever nodes its frames land on, and each node's scheduler
    /// pushes delayed rows into its own sink.
    sinks: Vec<Arc<ClusterSink>>,
    sessions: Vec<Arc<SessionState>>,
    inbox: VecDeque<Arrival>,
    fifo_to_router: u64,
    fifo_to_client: u64,
}

// ---- the world ----------------------------------------------------------

struct Core {
    seed: u64,
    clock: Arc<ManualClock>,
    partition: PartitionMap,
    nodes: Vec<Node>,
    heap: BinaryHeap<Reverse<Ev>>,
    next_seq: u64,
    conns: BTreeMap<u64, Conn>,
    next_conn: u64,
    send_queue_rows: usize,
    sync_interval_nanos: u64,
    sync_enabled: bool,
    /// A `SyncTick` is sitting in the heap.
    sync_armed: bool,
    peer_latency_nanos: u64,
    client_latency_nanos: u64,
    /// Peer frames held by a partition: `(from, to, would-be arrival)`.
    held_peer: Vec<(usize, usize, u64, Vec<u8>)>,
    peer_frames_held: u64,
    peer_frames_delivered: u64,
    frames_delivered: u64,
    digest: u64,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn encode(frame: &Frame) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_frame(&mut bytes, frame).expect("frame encodes");
    bytes
}

fn decode(mut bytes: &[u8]) -> Frame {
    read_frame(&mut bytes)
        .expect("frame decodes")
        .expect("non-empty frame")
}

impl Core {
    fn new(seed: u64, config: ClusterConfig) -> Core {
        assert!(config.nodes > 0, "a cluster needs at least one node");
        let clock = ManualClock::shared();
        let nodes = (0..config.nodes)
            .map(|j| {
                let dyn_clock: Arc<dyn Clock> = Arc::clone(&clock) as Arc<dyn Clock>;
                let db = Arc::new(GuardedDatabase::with_engine_and_clock(
                    Engine::new(),
                    config.guard,
                    Arc::clone(&dyn_clock),
                ));
                let registry = Registry::new();
                let metrics = ServerMetrics::new(&registry);
                let scheduler =
                    DelayScheduler::manual(config.tick, metrics.clone(), Arc::clone(&dyn_clock));
                let gate = Arc::new(FrontDoor::new(
                    config.gate.clone(),
                    db,
                    Arc::clone(&scheduler),
                    dyn_clock,
                    metrics,
                    registry.clone(),
                ));
                // Origins are 1-based: 0 is the single-node default and
                // must not collide with a real peer in the CRDT logs.
                gate.set_node_origin(j as u16 + 1);
                Node {
                    gate,
                    scheduler,
                    registry,
                    peer_sink: Arc::new(ClusterSink::new(usize::MAX)),
                    last_export: None,
                    cut: false,
                }
            })
            .collect();
        let mut core = Core {
            seed,
            clock,
            partition: PartitionMap::new(config.nodes),
            nodes,
            heap: BinaryHeap::new(),
            next_seq: 0,
            conns: BTreeMap::new(),
            next_conn: 1,
            send_queue_rows: config.send_queue_rows,
            sync_interval_nanos: secs_to_nanos(config.sync_interval_secs),
            sync_enabled: config.sync_interval_secs > 0.0,
            sync_armed: false,
            peer_latency_nanos: secs_to_nanos(config.peer_latency_secs),
            client_latency_nanos: secs_to_nanos(config.client_latency_secs),
            held_peer: Vec::new(),
            peer_frames_held: 0,
            peer_frames_delivered: 0,
            frames_delivered: 0,
            digest: FNV_OFFSET,
        };
        if core.sync_enabled {
            core.arm_sync();
        }
        core
    }

    fn now_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }

    fn arm_sync(&mut self) {
        if self.sync_armed || self.sync_interval_nanos == 0 {
            return;
        }
        let at = self.now_nanos().saturating_add(self.sync_interval_nanos);
        self.push_ev(at, EvKind::SyncTick);
        self.sync_armed = true;
    }

    fn connect(&mut self, peer_ip: [u8; 4], pinned: Option<usize>) -> u64 {
        let id = self.next_conn;
        self.next_conn += 1;
        let n = self.nodes.len();
        self.conns.insert(
            id,
            Conn {
                peer_ip,
                open: true,
                pinned,
                sinks: (0..n)
                    .map(|_| Arc::new(ClusterSink::new(self.send_queue_rows)))
                    .collect(),
                sessions: (0..n).map(|_| Arc::new(SessionState::new())).collect(),
                inbox: VecDeque::new(),
                fifo_to_router: 0,
                fifo_to_client: 0,
            },
        );
        id
    }

    fn push_ev(&mut self, at: u64, kind: EvKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Ev { at, seq, kind }));
    }

    /// Put one frame on a client link, FIFO per direction.
    fn transmit(&mut self, conn_id: u64, dir: Dir, frame: &Frame) -> Result<(), LinkError> {
        let now = self.now_nanos();
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return Err(LinkError::Closed);
        };
        if !conn.open {
            return match dir {
                Dir::ToRouter => Err(LinkError::Closed),
                Dir::ToClient => Ok(()), // frames to a dead client vanish
            };
        }
        let bytes = encode(frame);
        let mut at = now.saturating_add(self.client_latency_nanos);
        let fifo = match dir {
            Dir::ToRouter => &mut conn.fifo_to_router,
            Dir::ToClient => &mut conn.fifo_to_client,
        };
        at = at.max(*fifo);
        *fifo = at;
        self.push_ev(
            at,
            EvKind::Deliver {
                conn: conn_id,
                dir,
                bytes,
            },
        );
        Ok(())
    }

    /// Send one peer frame `from → to`, holding it if either end is cut.
    fn peer_send(&mut self, from: usize, to: usize, bytes: Vec<u8>) {
        let at = self.now_nanos().saturating_add(self.peer_latency_nanos);
        if self.nodes[from].cut || self.nodes[to].cut {
            self.held_peer.push((from, to, at, bytes));
            self.peer_frames_held += 1;
        } else {
            self.push_ev(at, EvKind::PeerDeliver { from, to, bytes });
        }
    }

    /// One gossip round: every node exports its cumulative delta and
    /// sends it to every peer, skipping states unchanged since the last
    /// export (the `DELTA_ACK`-driven quiescence of the real wire,
    /// collapsed to its observable effect).
    fn gossip_round(&mut self) {
        for j in 0..self.nodes.len() {
            let delta = self.nodes[j].gate.export_delta();
            if let Some(last) = &self.nodes[j].last_export {
                if last.tables == delta.tables && last.gate == delta.gate {
                    continue;
                }
            }
            let bytes = encode(&Frame::Delta {
                delta: delta.clone(),
            });
            self.nodes[j].last_export = Some(delta);
            for k in 0..self.nodes.len() {
                if k != j {
                    self.peer_send(j, k, bytes.clone());
                }
            }
        }
    }

    /// Drain every sink onto the wire: per-connection node sinks in
    /// `(conn, node)` order, then node peer sinks in node order.
    fn route_outboxes(&mut self) {
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            for node in 0..self.nodes.len() {
                let frames = {
                    let Some(conn) = self.conns.get(&id) else {
                        continue;
                    };
                    conn.sinks[node].drain()
                };
                for frame in frames {
                    let _ = self.transmit(id, Dir::ToClient, &frame);
                }
            }
        }
        for j in 0..self.nodes.len() {
            let frames = self.nodes[j].peer_sink.drain();
            for frame in frames {
                // Replies on a peer link go back to the delta's origin.
                if let Frame::DeltaAck { origin, .. } = frame {
                    let to = (origin as usize).wrapping_sub(1);
                    if to < self.nodes.len() && to != j {
                        self.peer_send(j, to, encode(&frame));
                    }
                }
            }
        }
    }

    /// Deliver one client frame straight to node `j` (pinned
    /// connections: no broadcast, no routing).
    fn deliver_direct(&mut self, conn_id: u64, j: usize, frame: Frame) {
        let (ip, sink, session) = match self.conns.get(&conn_id) {
            Some(c) => (
                c.peer_ip,
                Arc::clone(&c.sinks[j]),
                Arc::clone(&c.sessions[j]),
            ),
            None => return,
        };
        let control = self.nodes[j].gate.handle_frame(frame, ip, &session, &sink);
        if control == SessionControl::Terminate {
            if let Some(c) = self.conns.get_mut(&conn_id) {
                c.open = false;
            }
        }
    }

    /// The router: deliver one client frame to the node(s) it targets.
    fn route_to_nodes(&mut self, conn_id: u64, frame: Frame) {
        let (ip, sinks, sessions) = match self.conns.get(&conn_id) {
            Some(c) => (c.peer_ip, c.sinks.clone(), c.sessions.clone()),
            None => return,
        };
        match &frame {
            Frame::Register { .. } => {
                // Flush anything already queued so the verdict filter
                // below only ever sees registration frames.
                self.route_outboxes();
                let mut terminate = false;
                for j in 0..self.nodes.len() {
                    let control =
                        self.nodes[j]
                            .gate
                            .handle_frame(frame.clone(), ip, &sessions[j], &sinks[j]);
                    terminate |= control == SessionControl::Terminate;
                    if j > 0 {
                        // Registrars are deterministic: every node hands
                        // out the same id. Forward node 0's verdict only.
                        let dup = sinks[j].drain();
                        debug_assert!(
                            dup.iter().all(|f| matches!(
                                f,
                                Frame::Registered { .. } | Frame::Refused { .. }
                            )),
                            "unexpected frame in registration broadcast: {dup:?}"
                        );
                    }
                }
                if terminate {
                    if let Some(c) = self.conns.get_mut(&conn_id) {
                        c.open = false;
                    }
                }
            }
            Frame::Query { sql, .. } => {
                let j = self.partition.route(sql);
                let control = self.nodes[j]
                    .gate
                    .handle_frame(frame, ip, &sessions[j], &sinks[j]);
                if control == SessionControl::Terminate {
                    if let Some(c) = self.conns.get_mut(&conn_id) {
                        c.open = false;
                    }
                }
            }
            // Writes pin to the partition key's owner: the mutated row's
            // update-rate weight accrues on the shard that serves it, and
            // peers learn of it through the DELTA sync like any other
            // locally-originated popularity state.
            Frame::Insert { sql, .. } | Frame::Update { sql, .. } | Frame::Delete { sql, .. } => {
                let j = self.partition.route_write(sql);
                let control = self.nodes[j]
                    .gate
                    .handle_frame(frame, ip, &sessions[j], &sinks[j]);
                if control == SessionControl::Terminate {
                    if let Some(c) = self.conns.get_mut(&conn_id) {
                        c.open = false;
                    }
                }
            }
            _ => {
                let control = self.nodes[0]
                    .gate
                    .handle_frame(frame, ip, &sessions[0], &sinks[0]);
                if control == SessionControl::Terminate {
                    if let Some(c) = self.conns.get_mut(&conn_id) {
                        c.open = false;
                    }
                }
            }
        }
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev.kind {
            EvKind::Deliver { conn, dir, bytes } => {
                let open = match self.conns.get(&conn) {
                    Some(c) => c.open,
                    None => return,
                };
                if !open {
                    return;
                }
                let frame = decode(&bytes);
                self.digest = fnv(self.digest, &ev.at.to_le_bytes());
                self.digest = fnv(self.digest, &[dir as u8]);
                self.digest = fnv(self.digest, &conn.to_le_bytes());
                self.digest = fnv(self.digest, &bytes);
                self.frames_delivered += 1;
                match dir {
                    Dir::ToRouter => match self.conns.get(&conn).and_then(|c| c.pinned) {
                        Some(j) => self.deliver_direct(conn, j, frame),
                        None => self.route_to_nodes(conn, frame),
                    },
                    Dir::ToClient => {
                        if let Some(c) = self.conns.get_mut(&conn) {
                            c.inbox.push_back(Arrival {
                                at_secs: nanos_to_secs(ev.at),
                                frame,
                            });
                        }
                    }
                }
            }
            EvKind::PeerDeliver { from, to, bytes } => {
                let frame = decode(&bytes);
                self.digest = fnv(self.digest, &ev.at.to_le_bytes());
                self.digest = fnv(self.digest, b"peer");
                self.digest = fnv(self.digest, &(from as u64).to_le_bytes());
                self.digest = fnv(self.digest, &(to as u64).to_le_bytes());
                self.digest = fnv(self.digest, &bytes);
                self.frames_delivered += 1;
                self.peer_frames_delivered += 1;
                let sink = Arc::clone(&self.nodes[to].peer_sink);
                let _ = self.nodes[to].gate.handle_peer_frame(frame, &sink);
            }
            EvKind::SyncTick => {
                self.sync_armed = false;
                if self.sync_enabled {
                    self.gossip_round();
                    self.arm_sync();
                }
            }
        }
    }

    fn next_wake(&self) -> Option<u64> {
        let ev = self.heap.peek().map(|Reverse(e)| e.at);
        let dl = self
            .nodes
            .iter()
            .filter_map(|n| n.scheduler.next_deadline_nanos())
            .min();
        match (ev, dl) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn deliver_due(&mut self) {
        loop {
            let due = matches!(self.heap.peek(), Some(Reverse(e)) if e.at <= self.now_nanos());
            if !due {
                break;
            }
            let Reverse(ev) = self.heap.pop().expect("peeked");
            self.dispatch(ev);
        }
    }

    fn poll_schedulers(&mut self) {
        for node in &self.nodes {
            node.scheduler.poll();
        }
    }

    fn step(&mut self) -> bool {
        let Some(next) = self.next_wake() else {
            return false;
        };
        self.clock.advance_to_nanos(next);
        self.poll_schedulers();
        self.route_outboxes();
        self.deliver_due();
        self.route_outboxes();
        true
    }

    fn run_for(&mut self, secs: f64) {
        let nanos = match secs_to_nanos(secs) {
            0 if secs > 0.0 => 1,
            n => n,
        };
        let deadline = self.now_nanos().saturating_add(nanos);
        while matches!(self.next_wake(), Some(at) if at <= deadline) {
            self.step();
        }
        self.clock.advance_to_nanos(deadline);
        self.poll_schedulers();
        self.route_outboxes();
        self.deliver_due();
        self.route_outboxes();
        self.deliver_due();
    }

    fn run_until_idle(&mut self) {
        while self.step() {}
    }

    // ---- link operations --------------------------------------------------

    fn client_send(&mut self, conn: u64, frame: &Frame) -> Result<(), LinkError> {
        match self.conns.get(&conn) {
            Some(c) if c.open => {}
            _ => return Err(LinkError::Closed),
        }
        self.transmit(conn, Dir::ToRouter, frame)
    }

    fn link_recv(&mut self, conn: u64, max_wait_secs: f64) -> Result<Option<Arrival>, LinkError> {
        let deadline = self
            .now_nanos()
            .saturating_add(secs_to_nanos(max_wait_secs));
        loop {
            if let Some(c) = self.conns.get_mut(&conn) {
                if let Some(arrival) = c.inbox.pop_front() {
                    return Ok(Some(arrival));
                }
                if !c.open {
                    return Err(LinkError::Closed);
                }
            } else {
                return Err(LinkError::Closed);
            }
            match self.next_wake() {
                Some(at) if at <= deadline => {
                    self.step();
                }
                _ => {
                    self.clock.advance_to_nanos(deadline);
                    self.poll_schedulers();
                    self.route_outboxes();
                    self.deliver_due();
                    self.route_outboxes();
                    self.deliver_due();
                    let empty = self
                        .conns
                        .get_mut(&conn)
                        .map(|c| c.inbox.pop_front())
                        .unwrap_or(None);
                    return Ok(empty);
                }
            }
        }
    }
}

/// The simulated cluster deployment. See the module docs.
pub struct ClusterWorld {
    core: Rc<RefCell<Core>>,
    peer_latency_secs: f64,
}

impl ClusterWorld {
    /// A fresh cluster from a seed: `config.nodes` complete server
    /// stacks on one virtual clock, gossip armed if
    /// `sync_interval_secs > 0`.
    pub fn new(seed: u64, config: ClusterConfig) -> ClusterWorld {
        let peer_latency_secs = config.peer_latency_secs;
        ClusterWorld {
            core: Rc::new(RefCell::new(Core::new(seed, config))),
            peer_latency_secs,
        }
    }

    /// The seed this cluster was built from.
    pub fn seed(&self) -> u64 {
        self.core.borrow().seed
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.core.borrow().nodes.len()
    }

    /// The partition map (shared with the router).
    pub fn partition_map(&self) -> PartitionMap {
        self.core.borrow().partition
    }

    /// Virtual seconds since the cluster's epoch.
    pub fn now_secs(&self) -> f64 {
        self.core.borrow().clock.now_secs()
    }

    /// Node `j`'s guarded database (for DDL/seeding its shard).
    pub fn node_db(&self, j: usize) -> Arc<GuardedDatabase> {
        Arc::clone(self.core.borrow().nodes[j].gate.db())
    }

    /// Node `j`'s front door.
    pub fn node_gate(&self, j: usize) -> Arc<FrontDoor> {
        Arc::clone(&self.core.borrow().nodes[j].gate)
    }

    /// Node `j`'s metrics registry.
    pub fn node_registry(&self, j: usize) -> Registry {
        self.core.borrow().nodes[j].registry.clone()
    }

    /// Open a client connection to the router; `peer_ip` is the address
    /// every node sees for this client.
    pub fn connect_link(&self, peer_ip: [u8; 4]) -> ClusterLink {
        let conn = self.core.borrow_mut().connect(peer_ip, None);
        ClusterLink {
            core: Rc::clone(&self.core),
            conn,
        }
    }

    /// Open a client connection wired straight to node `node`, bypassing
    /// the router entirely: registration is not broadcast and queries
    /// are not routed. The baseline the router hop is benchmarked
    /// against (identities registered this way exist only on `node`).
    pub fn connect_node_link(&self, node: usize, peer_ip: [u8; 4]) -> ClusterLink {
        assert!(node < self.nodes(), "node {node} out of range");
        let conn = self.core.borrow_mut().connect(peer_ip, Some(node));
        ClusterLink {
            core: Rc::clone(&self.core),
            conn,
        }
    }

    /// Enable or disable the gossip cadence. Enabling arms the next
    /// tick one interval from now.
    pub fn set_sync_enabled(&self, enabled: bool) {
        let mut core = self.core.borrow_mut();
        core.sync_enabled = enabled;
        if enabled {
            core.arm_sync();
        }
    }

    /// Run one gossip round right now and deliver it (one round fully
    /// converges the cluster: deltas are cumulative).
    pub fn sync_now(&self) {
        self.core.borrow_mut().gossip_round();
        self.run_for(self.peer_latency_secs);
    }

    /// Cut node `j` off from gossip: peer frames to and from it are
    /// held. Client routing is unaffected.
    pub fn cut_node(&self, j: usize) {
        self.core.borrow_mut().nodes[j].cut = true;
    }

    /// Heal node `j`: held peer frames whose both endpoints are now
    /// reachable flood through, in order, no earlier than now.
    pub fn heal_node(&self, j: usize) {
        let mut core = self.core.borrow_mut();
        core.nodes[j].cut = false;
        let now = core.now_nanos();
        let held = std::mem::take(&mut core.held_peer);
        for (from, to, at, bytes) in held {
            if core.nodes[from].cut || core.nodes[to].cut {
                core.held_peer.push((from, to, at, bytes));
            } else {
                core.push_ev(at.max(now), EvKind::PeerDeliver { from, to, bytes });
            }
        }
    }

    /// Let `secs` of virtual time pass, processing everything due.
    pub fn run_for(&self, secs: f64) {
        self.core.borrow_mut().run_for(secs);
    }

    /// Run until nothing is scheduled. Call
    /// [`ClusterWorld::set_sync_enabled`]`(false)` first if gossip is
    /// on — a live cadence re-arms forever.
    pub fn run_until_idle(&self) {
        self.core.borrow_mut().run_until_idle();
    }

    /// Process exactly one scheduled instant; false if nothing is
    /// scheduled.
    pub fn step_once(&self) -> bool {
        self.core.borrow_mut().step()
    }

    /// Order-sensitive FNV-1a hash of every delivered frame (client and
    /// peer): equal digests mean bit-identical executions.
    pub fn digest(&self) -> u64 {
        self.core.borrow().digest
    }

    /// Frames delivered so far, both client- and peer-side.
    pub fn frames_delivered(&self) -> u64 {
        self.core.borrow().frames_delivered
    }

    /// Peer frames delivered so far.
    pub fn peer_frames_delivered(&self) -> u64 {
        self.core.borrow().peer_frames_delivered
    }

    /// Peer frames ever held by a partition.
    pub fn peer_frames_held(&self) -> u64 {
        self.core.borrow().peer_frames_held
    }

    /// Peer frames currently held (0 when fully healed and drained).
    pub fn peer_frames_pending(&self) -> usize {
        self.core.borrow().held_peer.len()
    }
}

impl SimNet for ClusterWorld {
    fn connect(&mut self, from_ip: [u8; 4]) -> Result<Box<dyn NetLink>, LinkError> {
        Ok(Box::new(self.connect_link(from_ip)))
    }

    fn wait(&mut self, secs: f64) {
        self.run_for(secs);
    }

    fn now_secs(&self) -> f64 {
        ClusterWorld::now_secs(self)
    }
}

/// A client's end of a router connection.
pub struct ClusterLink {
    core: Rc<RefCell<Core>>,
    conn: u64,
}

impl ClusterLink {
    /// This link's connection id.
    pub fn id(&self) -> ConnId {
        ConnId(self.conn)
    }
}

impl NetLink for ClusterLink {
    fn send(&mut self, frame: &Frame) -> Result<(), LinkError> {
        self.core.borrow_mut().client_send(self.conn, frame)
    }

    fn recv(&mut self, max_wait_secs: f64) -> Result<Option<Arrival>, LinkError> {
        self.core.borrow_mut().link_recv(self.conn, max_wait_secs)
    }

    fn now_secs(&self) -> f64 {
        self.core.borrow().clock.now_secs()
    }

    fn is_open(&self) -> bool {
        self.core
            .borrow()
            .conns
            .get(&self.conn)
            .is_some_and(|c| c.open)
    }
}
