//! §2.4 adversary campaigns against the cluster.
//!
//! A [`ClusterCampaign`] is the paper's running example sharded over N
//! nodes: the `n`-tuple directory is split round-robin by key, each
//! node's shard is warmed with its slice of the Zipf counts
//! (`c_i = seed_scale · i^(−α)`), and — when replication is on — one
//! gossip round converges every node to the global distribution before
//! any client connects.
//!
//! Closed-form expectations:
//!
//! * **Replicated** (`sync_interval_secs > 0`): every node prices from
//!   the merged global aggregates, so both the sequential crawl and the
//!   shard-aware crawl pay the single-node Eq. 3 total and the median
//!   user sees the single-node Eq. 1 delay — up to the replication-lag
//!   slack ([`analysis::replication_lag_slack`]).
//! * **Un-replicated** (`sync_interval_secs == 0`): each node prices
//!   from its local shard only, and the adversary total collapses to
//!   [`analysis::sharded_unreplicated_total`] ≈ 1/N of the closed form
//!   — the negative control that motivates the delta-sync protocol.
//!
//! Charged totals are a function of the warmed popularity state (the
//! crawl's own accesses are a `1/seed_scale` perturbation), so they are
//! invariant to crawl order; the drivers still offer both the paper's
//! sequential order and the shard-grouped order a partition-aware
//! adversary would use.

use crate::sim::{ClusterConfig, ClusterLink, ClusterWorld};
use delayguard_core::access::{AccessDelayPolicy, FmaxMode};
use delayguard_core::analysis;
use delayguard_core::policy::GuardPolicy;
use delayguard_core::GuardConfig;
use delayguard_query::StatementOutput;
use delayguard_server::gate::GateConfig;
use delayguard_storage::RowId;
use delayguard_testkit::campaign::{CampaignParams, CrawlReport};
use delayguard_testkit::net::{self, QueryOutcome};
use delayguard_workload::{generalized_harmonic, Rng, Zipf};

/// Per-attempt timeout for a registration exchange (virtual seconds).
const REGISTER_TIMEOUT_SECS: f64 = 600.0;

/// Timeout for a single query: must exceed the largest per-tuple delay.
const QUERY_TIMEOUT_SECS: f64 = 50.0 * 86_400.0;

/// The sharded running example, parameterized.
#[derive(Debug, Clone)]
pub struct ClusterCampaignParams {
    /// The single-node campaign parameters (database size, skew, policy
    /// exponents, gatekeeper, tick).
    pub base: CampaignParams,
    /// Number of nodes the directory is sharded over.
    pub nodes: usize,
    /// Gossip cadence in virtual seconds; `0.0` disables replication
    /// (the negative control).
    pub sync_interval_secs: f64,
}

impl Default for ClusterCampaignParams {
    fn default() -> ClusterCampaignParams {
        ClusterCampaignParams {
            base: CampaignParams::default(),
            nodes: 4,
            // One virtual hour: sparse enough that a 35-day campaign
            // costs hundreds of gossip rounds, tight enough that the
            // lag slack is far below the closed-form tolerance.
            sync_interval_secs: 3600.0,
        }
    }
}

/// A simulated cluster seeded as the sharded running example.
pub struct ClusterCampaign {
    world: ClusterWorld,
    params: ClusterCampaignParams,
    /// Row id of the rank-`i` tuple (index `i − 1`), on its owning node.
    rids: Vec<RowId>,
    rng: Rng,
    next_query_id: u32,
}

impl ClusterCampaign {
    /// Build the cluster, create each node's `directory` shard, warm
    /// each shard with its slice of the Zipf counts — all at virtual
    /// time zero — and, when replication is on, run one gossip round so
    /// the warm state converges before any client connects.
    pub fn new(seed: u64, params: ClusterCampaignParams) -> ClusterCampaign {
        let base = &params.base;
        let policy = AccessDelayPolicy::new(base.alpha, base.beta)
            .with_cap(base.cap_secs)
            .with_fmax_mode(FmaxMode::DecayedTotal);
        // Like `Campaign::new`: fold the world seed into the jitter seed
        // when shaping is on, so `TESTKIT_REPLAY` replays the exact
        // shaped schedule. Every node shares the folded seed — a query
        // must price identically wherever its shard lives.
        let mut shaping = base.shaping;
        if shaping.enabled {
            shaping.seed ^= seed;
        }
        let guard = GuardConfig::paper_default()
            .with_policy(GuardPolicy::AccessRate(policy))
            .with_shaping(shaping);
        let gate = GateConfig {
            gatekeeper: base.gatekeeper,
            ..GateConfig::default()
        };
        let world = ClusterWorld::new(
            seed,
            ClusterConfig {
                nodes: params.nodes,
                guard,
                gate,
                tick: base.tick,
                send_queue_rows: base.send_queue_rows,
                sync_interval_secs: params.sync_interval_secs,
                peer_latency_secs: 0.0,
                client_latency_secs: 0.0,
            },
        );
        let map = world.partition_map();
        let mut by_id: Vec<(u64, RowId)> = Vec::with_capacity(base.n as usize);
        for j in 0..params.nodes {
            let db = world.node_db(j);
            db.execute_at(
                "CREATE TABLE directory (id INT NOT NULL, entry TEXT NOT NULL)",
                0.0,
            )
            .expect("create table");
            db.execute_at("CREATE UNIQUE INDEX directory_pk ON directory (id)", 0.0)
                .expect("create index");
            let mut counts: Vec<(RowId, f64)> = Vec::new();
            for id in map.ids_of(j, base.n) {
                let resp = db
                    .execute_at(
                        &format!("INSERT INTO directory VALUES ({id}, 'entry-{id}')"),
                        0.0,
                    )
                    .expect("insert row");
                let rid = match resp.output {
                    StatementOutput::Inserted { rids: mut r } => {
                        r.pop().expect("one rid per insert")
                    }
                    other => panic!("unexpected insert output: {other:?}"),
                };
                let rank = (id + 1) as f64;
                by_id.push((id, rid));
                counts.push((rid, base.seed_scale * rank.powf(-base.alpha)));
            }
            db.warm_accesses("directory", &counts, 0.0);
        }
        if params.sync_interval_secs > 0.0 {
            world.sync_now();
        }
        by_id.sort_unstable_by_key(|&(id, _)| id);
        ClusterCampaign {
            world,
            rids: by_id.into_iter().map(|(_, rid)| rid).collect(),
            rng: Rng::new(seed ^ 0x9e37_79b9_7f4a_7c15),
            params,
            next_query_id: 1,
        }
    }

    /// The underlying cluster (digest, metrics, partition control).
    pub fn world(&self) -> &ClusterWorld {
        &self.world
    }

    /// The campaign parameters.
    pub fn params(&self) -> &ClusterCampaignParams {
        &self.params
    }

    // ---- closed-form expectations -----------------------------------------

    /// The global `fmax` of the warmed distribution: `1 / H(n, α)`.
    pub fn fmax(&self) -> f64 {
        1.0 / generalized_harmonic(self.params.base.n, self.params.base.alpha)
    }

    /// The replicated policy's delay for global rank `i` (cap applied).
    pub fn analytic_delay_at_rank(&self, rank: u64) -> f64 {
        let b = &self.params.base;
        analysis::delay_at_rank(b.n, b.alpha, b.beta, self.fmax(), rank).min(b.cap_secs)
    }

    /// Eq. 3: total delay a full-crawl adversary pays against the
    /// *replicated* cluster (= the single-node closed form).
    pub fn analytic_total(&self) -> f64 {
        let b = &self.params.base;
        if b.cap_secs.is_finite() {
            analysis::adversary_total_capped(b.n, b.alpha, b.beta, self.fmax(), b.cap_secs)
        } else {
            analysis::adversary_total(b.n, b.alpha, b.beta, self.fmax())
        }
    }

    /// The total the same crawl pays against the *un-replicated*
    /// cluster: each shard prices from its local slice only.
    pub fn analytic_unreplicated_total(&self) -> f64 {
        let b = &self.params.base;
        analysis::sharded_unreplicated_total(b.n, self.params.nodes as u64, b.alpha, b.beta)
    }

    /// The rank the median user query lands on.
    pub fn median_rank(&self) -> u64 {
        analysis::median_rank_exact(self.params.base.n, self.params.base.alpha)
    }

    /// Relative tolerance for closed-form assertions: the paper's 10%
    /// plus the replication-lag slack — between gossip rounds, up to
    /// `rate · sync_interval` crawl accesses are priced before they
    /// replicate, a perturbation relative to the weakest warm count.
    pub fn tolerance(&self) -> f64 {
        let b = &self.params.base;
        if self.params.sync_interval_secs <= 0.0 {
            return 0.10;
        }
        let weakest_warm = b.seed_scale * (b.n as f64).powf(-b.alpha);
        let crawl_rate = b.n as f64 / self.analytic_total();
        0.10 + analysis::replication_lag_slack(
            weakest_warm,
            crawl_rate,
            self.params.sync_interval_secs,
        )
    }

    /// The point query that touches exactly the rank-`i` tuple.
    pub fn sql_for_rank(&self, rank: u64) -> String {
        format!("SELECT * FROM directory WHERE id = {}", rank - 1)
    }

    /// Every rank in the paper's sequential crawl order `1..=n` — which
    /// already round-robins across shards (rank `i` lives on node
    /// `(i−1) mod N`).
    pub fn all_ranks(&self) -> Vec<u64> {
        (1..=self.params.base.n).collect()
    }

    /// Every rank grouped by owning shard (node 0's ranks ascending,
    /// then node 1's, ...): the order a partition-aware adversary uses
    /// to drain one shard at a time.
    pub fn shard_grouped_ranks(&self) -> Vec<u64> {
        let map = self.world.partition_map();
        (0..map.nodes())
            .flat_map(|j| map.ids_of(j, self.params.base.n))
            .map(|id| id + 1)
            .collect()
    }

    /// `count` ranks sampled from the user's Zipf(α) distribution,
    /// deterministic per campaign seed.
    pub fn zipf_ranks(&mut self, count: u64) -> Vec<u64> {
        let zipf = Zipf::new(self.params.base.n, self.params.base.alpha);
        (0..count).map(|_| zipf.sample(&mut self.rng)).collect()
    }

    // ---- drivers ----------------------------------------------------------

    fn register_link(&mut self, ip: [u8; 4]) -> (ClusterLink, u64) {
        let mut link = self.world.connect_link(ip);
        let (user, _) =
            net::register_until_admitted(&mut self.world, &mut link, [0; 4], REGISTER_TIMEOUT_SECS)
                .expect("registration");
        (link, user)
    }

    fn fresh_query_id(&mut self) -> u32 {
        let id = self.next_query_id;
        self.next_query_id += 1;
        id
    }

    /// One identity from `ip` crawls `ranks` in order through the
    /// router, honoring refusal hints, accumulating the owning node's
    /// own delay accounting.
    pub fn sequential_crawl(&mut self, ip: [u8; 4], ranks: &[u64]) -> CrawlReport {
        let (link, user) = self.register_link(ip);
        self.run_crawl(link, user, ranks)
    }

    /// [`ClusterCampaign::sequential_crawl`] over a connection pinned
    /// straight to `node`, bypassing the router — the direct-node
    /// baseline the router hop is benchmarked against. Every rank in
    /// `ranks` must be owned by `node` (the pinned node refuses nothing,
    /// but only its own shard's rows exist there).
    pub fn direct_crawl(&mut self, node: usize, ip: [u8; 4], ranks: &[u64]) -> CrawlReport {
        let mut link = self.world.connect_node_link(node, ip);
        let (user, _) =
            net::register_until_admitted(&mut self.world, &mut link, [0; 4], REGISTER_TIMEOUT_SECS)
                .expect("registration");
        self.run_crawl(link, user, ranks)
    }

    fn run_crawl(&mut self, mut link: ClusterLink, user: u64, ranks: &[u64]) -> CrawlReport {
        let started_secs = self.world.now_secs();
        let mut report = CrawlReport {
            queries: 0,
            refused: 0,
            tuples: 0,
            total_delay_secs: 0.0,
            started_secs,
            finished_secs: started_secs,
            min_margin_secs: f64::INFINITY,
        };
        for &rank in ranks {
            let sql = self.sql_for_rank(rank);
            loop {
                let qid = self.fresh_query_id();
                match net::run_query(&mut link, qid, user, &sql, QUERY_TIMEOUT_SECS)
                    .expect("link alive")
                {
                    QueryOutcome::Rows {
                        rows,
                        delay_secs,
                        tuples,
                        sent_at_secs,
                        done_at_secs,
                        ..
                    } => {
                        assert_eq!(rows.len(), 1, "rank {rank} must be a point lookup");
                        report.queries += 1;
                        report.tuples += tuples as u64;
                        report.total_delay_secs += delay_secs;
                        let margin = (done_at_secs - sent_at_secs) - delay_secs;
                        report.min_margin_secs = report.min_margin_secs.min(margin);
                        break;
                    }
                    QueryOutcome::Refused {
                        retry_after_secs, ..
                    } => {
                        report.refused += 1;
                        self.world.run_for(retry_after_secs + 1e-6);
                    }
                    QueryOutcome::Error { message } => panic!("rank {rank}: {message}"),
                    QueryOutcome::TimedOut => panic!("rank {rank}: query timed out"),
                }
            }
        }
        report.finished_secs = self.world.now_secs();
        report
    }

    /// One fresh identity queries the median rank once and returns the
    /// charged delay (the median legitimate user's experience).
    pub fn median_user_delay(&mut self, ip: [u8; 4]) -> f64 {
        let rank = self.median_rank();
        self.probe_delay(ip, rank)
    }

    /// One fresh identity queries `rank` once and returns the charged
    /// delay — the pricing currently in force on the owning node.
    pub fn probe_delay(&mut self, ip: [u8; 4], rank: u64) -> f64 {
        let (mut link, user) = self.register_link(ip);
        let sql = self.sql_for_rank(rank);
        let qid = self.fresh_query_id();
        match net::run_query(&mut link, qid, user, &sql, QUERY_TIMEOUT_SECS).expect("link alive") {
            QueryOutcome::Rows { delay_secs, .. } => delay_secs,
            other => panic!("probe did not stream rows: {other:?}"),
        }
    }

    /// Add `extra` decayed accesses to the rank-`rank` tuple on its
    /// owning node at the current virtual time — a traffic shift whose
    /// effect reaches every other node only through delta-sync.
    pub fn shift_traffic(&self, rank: u64, extra: f64) {
        let id = rank - 1;
        let node = self.world.partition_map().node_for_id(id);
        let rid = self.rids[id as usize];
        self.world
            .node_db(node)
            .warm_accesses("directory", &[(rid, extra)], self.world.now_secs());
    }
}
