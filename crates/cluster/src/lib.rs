//! # delayguard-cluster
//!
//! The sharded multi-node front door: N complete `delayguard-server`
//! stacks partitioned by table behind a router, with the popularity
//! aggregates that price `d(i)` replicated by a periodic delta-sync
//! protocol (`DELTA` / `DELTA_ACK`, protocol v2).
//!
//! * [`partition::PartitionMap`] — round-robin key ownership
//!   (`id mod N`) and point-query routing. Round-robin models hash
//!   partitioning: ownership is uncorrelated with popularity, so every
//!   shard sees a proportional slice of the Zipf head and tail.
//! * [`sim::ClusterWorld`] — the deterministic simulated cluster: one
//!   virtual clock, real wire codec on every hop (client↔router and
//!   node↔node), seeded digest, gossip cadence, partition/heal.
//! * [`campaign::ClusterCampaign`] — the paper's §2.4 campaigns against
//!   the cluster, with closed-form expectations: replicated nodes
//!   converge to the single-node Eq. 3/Eq. 4 economics; un-replicated
//!   shards collapse the adversary total to ≈ 1/N of the closed form
//!   ([`delayguard_core::analysis::sharded_unreplicated_total`]).
//!
//! Replication safety rests on the core seams this crate composes: the
//! origin-tagged remote key space
//! ([`delayguard_core::replica::tag_remote_key`]), replace-if-newer
//! delta application (order-independent, bit-exact under decay), and
//! the gatekeeper's mergeable charge-log CRDTs.

#![forbid(unsafe_code)]

pub mod campaign;
pub mod partition;
pub mod sim;

pub use campaign::{ClusterCampaign, ClusterCampaignParams};
pub use partition::PartitionMap;
pub use sim::{ClusterConfig, ClusterLink, ClusterWorld, ConnId};
