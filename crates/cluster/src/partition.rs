//! Table partitioning: which node owns which rows.
//!
//! The cluster shards the guarded relation round-robin by key: the row
//! with `id = k` lives on node `k mod N`. Round-robin is the honest
//! stand-in for hash partitioning — ownership is uncorrelated with
//! popularity rank, so every shard holds a proportional slice of the
//! head *and* the tail of the Zipf distribution. (A contiguous-by-rank
//! split would hand some node the entire tail, collapsing its local
//! `f_max` and inflating its delays far past the single-node policy —
//! the closed form in [`delayguard_core::analysis`] assumes the
//! round-robin layout.)
//!
//! The router also uses this map to route point queries: a
//! `WHERE id = k` predicate pins the query to the owner; everything
//! else is broadcast-free and lands on node 0 (the cluster serves the
//! paper's point-lookup workload; scatter-gather is out of scope).

/// The cluster's partition map: `nodes` shards, round-robin by key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionMap {
    nodes: usize,
}

impl PartitionMap {
    /// A map over `nodes` shards. Panics on zero.
    pub fn new(nodes: usize) -> PartitionMap {
        assert!(nodes > 0, "a cluster needs at least one node");
        PartitionMap { nodes }
    }

    /// Number of shards.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The node owning the row with key `id`.
    pub fn node_for_id(&self, id: u64) -> usize {
        (id % self.nodes as u64) as usize
    }

    /// The node owning popularity rank `rank` (1-based; rank `i` is the
    /// row with `id = i - 1`).
    pub fn node_for_rank(&self, rank: u64) -> usize {
        self.node_for_id(rank - 1)
    }

    /// Whether `id` lives on `node`.
    pub fn owns(&self, node: usize, id: u64) -> bool {
        self.node_for_id(id) == node
    }

    /// The ids owned by `node` among `0..n`, ascending.
    pub fn ids_of(&self, node: usize, n: u64) -> Vec<u64> {
        (0..n).filter(|&id| self.owns(node, id)).collect()
    }

    /// How many of the ids `0..n` node `node` owns.
    pub fn rows_of(&self, node: usize, n: u64) -> u64 {
        let node = node as u64;
        let nodes = self.nodes as u64;
        if node >= n {
            return 0;
        }
        (n - node).div_ceil(nodes)
    }

    /// Extract the routing key from a point query, if the statement is
    /// one. Recognizes the single-predicate form the campaigns and the
    /// paper's workload use: `... WHERE id = <k>` (case-insensitive
    /// keyword, optional whitespace). Returns `None` for anything else.
    pub fn point_query_id(sql: &str) -> Option<u64> {
        let lower = sql.to_ascii_lowercase();
        let pos = lower.find(" where ")?;
        let pred = sql[pos + " where ".len()..].trim();
        let pred_lower = pred.to_ascii_lowercase();
        let rest = pred_lower.strip_prefix("id")?.trim_start();
        let rest = rest.strip_prefix('=')?.trim_start();
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if digits.is_empty() {
            return None;
        }
        let tail = rest[digits.len()..].trim();
        if !tail.is_empty() {
            return None; // compound predicate: not a point query on id
        }
        digits.parse().ok()
    }

    /// Route a statement: the owner of its point key, node 0 otherwise.
    pub fn route(&self, sql: &str) -> usize {
        match Self::point_query_id(sql) {
            Some(id) => self.node_for_id(id),
            None => 0,
        }
    }

    /// Extract the partition key of an `INSERT ... VALUES (<k>, ...)`
    /// statement: the first literal of the first row, which is the `id`
    /// column under the cluster's schema convention. `None` for
    /// non-numeric first values or anything that isn't a `VALUES` insert.
    pub fn insert_id(sql: &str) -> Option<u64> {
        let lower = sql.to_ascii_lowercase();
        let pos = lower.find(" values")?;
        let rest = sql[pos + " values".len()..].trim_start();
        let rest = rest.strip_prefix('(')?.trim_start();
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if digits.is_empty() {
            return None;
        }
        digits.parse().ok()
    }

    /// Route a write statement by its partition key: `UPDATE`/`DELETE`
    /// pin to their point predicate's owner, `INSERT` to the owner of
    /// its first value (the new row's id). Writes without a recognizable
    /// key land on node 0, like un-routable reads.
    pub fn route_write(&self, sql: &str) -> usize {
        match Self::point_query_id(sql).or_else(|| Self::insert_id(sql)) {
            Some(id) => self.node_for_id(id),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_ownership() {
        let p = PartitionMap::new(4);
        assert_eq!(p.node_for_id(0), 0);
        assert_eq!(p.node_for_id(1), 1);
        assert_eq!(p.node_for_id(7), 3);
        assert_eq!(p.node_for_rank(1), 0);
        assert_eq!(p.node_for_rank(5), 0);
        assert_eq!(p.node_for_rank(6), 1);
    }

    #[test]
    fn shards_cover_everything_exactly_once() {
        let p = PartitionMap::new(4);
        let n = 11u64;
        let mut seen: Vec<u64> = (0..4).flat_map(|j| p.ids_of(j, n)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..n).collect::<Vec<_>>());
        for j in 0..4 {
            assert_eq!(p.rows_of(j, n), p.ids_of(j, n).len() as u64);
        }
    }

    #[test]
    fn rows_of_handles_degenerate_splits() {
        let p = PartitionMap::new(8);
        // 3 rows over 8 nodes: nodes 0..3 get one each, the rest none.
        assert_eq!(p.rows_of(0, 3), 1);
        assert_eq!(p.rows_of(2, 3), 1);
        assert_eq!(p.rows_of(3, 3), 0);
        assert_eq!(p.rows_of(7, 3), 0);
    }

    #[test]
    fn point_queries_parse() {
        assert_eq!(
            PartitionMap::point_query_id("SELECT * FROM directory WHERE id = 42"),
            Some(42)
        );
        assert_eq!(
            PartitionMap::point_query_id("select entry from directory where id=7"),
            Some(7)
        );
        assert_eq!(
            PartitionMap::point_query_id("SELECT * FROM directory"),
            None
        );
        assert_eq!(
            PartitionMap::point_query_id("SELECT * FROM t WHERE id = 1 AND x = 2"),
            None
        );
        assert_eq!(
            PartitionMap::point_query_id("SELECT * FROM t WHERE entry = 'a'"),
            None
        );
    }

    #[test]
    fn routing_pins_points_and_defaults_to_node_zero() {
        let p = PartitionMap::new(4);
        assert_eq!(p.route("SELECT * FROM directory WHERE id = 6"), 2);
        assert_eq!(p.route("CREATE TABLE t (x INT)"), 0);
    }

    #[test]
    fn insert_keys_parse() {
        assert_eq!(
            PartitionMap::insert_id("INSERT INTO directory VALUES (42, 'x')"),
            Some(42)
        );
        assert_eq!(
            PartitionMap::insert_id("insert into t values(7,'a')"),
            Some(7)
        );
        assert_eq!(
            PartitionMap::insert_id("INSERT INTO t VALUES ('a', 7)"),
            None
        );
        assert_eq!(PartitionMap::insert_id("DELETE FROM t WHERE id = 1"), None);
    }

    #[test]
    fn writes_route_by_partition_key() {
        let p = PartitionMap::new(4);
        assert_eq!(p.route_write("INSERT INTO directory VALUES (6, 'x')"), 2);
        assert_eq!(
            p.route_write("UPDATE directory SET entry = 'y' WHERE id = 7"),
            3
        );
        assert_eq!(p.route_write("DELETE FROM directory WHERE id = 5"), 1);
        // No recognizable key: lands on node 0 like un-routable reads.
        assert_eq!(p.route_write("DELETE FROM directory"), 0);
    }
}
