//! Repo-invariant lints for delayguard: `cargo run -p xtask -- lint`.
//!
//! Walks every `.rs` file in the repository (skipping `target/` and
//! `.git/`), runs the token-level rules in [`rules`], prints findings as
//! `file:line: message`, and exits non-zero if any fire. CI runs this as
//! the `lint-invariants` job; it is also fast enough (< 1 s) for a
//! pre-commit hook.

mod rules;
mod scan;

use std::path::{Path, PathBuf};

use rules::{Allowlist, Finding};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = repo_root();
            let (findings, scanned) = lint_repo(&root);
            if findings.is_empty() {
                println!("xtask lint: OK ({scanned} files scanned)");
            } else {
                for f in &findings {
                    println!("{f}");
                }
                eprintln!(
                    "xtask lint: {} finding(s) in {scanned} files",
                    findings.len()
                );
                std::process::exit(1);
            }
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            std::process::exit(2);
        }
    }
}

/// The repository root: two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the repo root")
        .to_path_buf()
}

/// Lint every Rust file under `root`; returns (findings, files scanned).
fn lint_repo(root: &Path) -> (Vec<Finding>, usize) {
    let allow = load_allowlist(root);
    let mut files = Vec::new();
    collect_rs_files(root, &mut files);
    files.sort();
    let scanned = files.len();
    let mut findings = Vec::new();
    for f in &files {
        findings.extend(rules::lint_path(root, f, &allow));
    }
    (findings, scanned)
}

fn load_allowlist(root: &Path) -> Allowlist {
    match std::fs::read_to_string(root.join("crates/xtask/lint-allow.txt")) {
        Ok(text) => Allowlist::parse(&text),
        Err(_) => Allowlist::empty(),
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The lint passes on the repository itself: every `unsafe` carries a
    /// SAFETY comment, deterministic layers take time as a parameter, the
    /// server paths' panics are vetted, and no pointer publish is
    /// Relaxed. If this fails, fix the code (or vet the site in
    /// lint-allow.txt) rather than weakening the rule.
    #[test]
    fn workspace_is_clean() {
        let root = repo_root();
        let (findings, scanned) = lint_repo(&root);
        assert!(
            scanned > 50,
            "walker found only {scanned} files — is the root ({}) right?",
            root.display()
        );
        let rendered: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
        assert!(
            findings.is_empty(),
            "lint findings:\n{}",
            rendered.join("\n")
        );
    }

    /// End-to-end negative check: an unsafe block without SAFETY in a
    /// scratch file is reported with its path and line.
    #[test]
    fn dirty_file_is_reported() {
        let dir = std::env::temp_dir().join("xtask-lint-fixture");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("dirty.rs");
        std::fs::write(&file, "fn f(p: *mut u8) {\n    unsafe { *p = 0 };\n}\n").unwrap();
        let (findings, scanned) = lint_repo(&dir);
        assert_eq!(scanned, 1);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);
        assert!(findings[0].to_string().starts_with("dirty.rs:2:"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
