//! Token-level source scanner: separates each line of a Rust file into
//! its *code* and *comment* parts so the lint rules can match tokens
//! without being fooled by string literals or commented-out code.
//!
//! The scanner is a small character state machine, not a full lexer: it
//! understands line comments, nested block comments, string / raw-string
//! / byte-string / char literals, and lifetimes. Everything it classifies
//! as literal content is blanked (replaced by spaces) in the code view,
//! preserving line and column structure so findings point at real
//! coordinates.

/// One file, split into per-line code and comment views.
pub struct Scanned {
    /// Source lines with comments and the *contents* of string/char
    /// literals blanked out. Token matching happens here.
    pub code: Vec<String>,
    /// The comment text found on each line (both `//` and `/* */`).
    pub comments: Vec<String>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nested depth of `/* */`.
    BlockComment(u32),
    /// Inside `"…"` (escape-aware).
    Str,
    /// Inside a raw string; the payload is the number of `#`s that close it.
    RawStr(u32),
}

pub fn scan(src: &str) -> Scanned {
    let mut code = Vec::new();
    let mut comments = Vec::new();
    let mut code_line = String::new();
    let mut comment_line = String::new();
    let mut state = State::Code;

    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // Line comments end at the newline; everything else carries over.
            if state == State::LineComment {
                state = State::Code;
            }
            code.push(std::mem::take(&mut code_line));
            comments.push(std::mem::take(&mut comment_line));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    code_line.push_str("  ");
                    comment_line.push_str("//");
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    code_line.push_str("  ");
                    comment_line.push_str("/*");
                    i += 2;
                } else if c == '"' {
                    // Keep the quotes so `"…"` stays visibly a string.
                    state = State::Str;
                    code_line.push('"');
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                    // r"…", r#"…"#, br#"…"#, b"…"
                    let (is_raw, hashes, len) = raw_string_intro(&chars, i);
                    if let Some(len) = len {
                        for _ in 0..len {
                            code_line.push(' ');
                        }
                        code_line.push('"');
                        state = if is_raw {
                            State::RawStr(hashes)
                        } else {
                            State::Str
                        };
                        i += len + 1;
                    } else {
                        code_line.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime.
                    if let Some(len) = char_literal_len(&chars, i) {
                        code_line.push('\'');
                        for _ in 0..len.saturating_sub(2) {
                            code_line.push(' ');
                        }
                        code_line.push('\'');
                        i += len;
                    } else {
                        code_line.push('\'');
                        i += 1;
                    }
                } else {
                    code_line.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                code_line.push(' ');
                comment_line.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    code_line.push_str("  ");
                    comment_line.push_str("*/");
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    code_line.push_str("  ");
                    comment_line.push_str("/*");
                    i += 2;
                } else {
                    code_line.push(' ');
                    comment_line.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code_line.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Code;
                    code_line.push('"');
                    i += 1;
                } else {
                    code_line.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    state = State::Code;
                    code_line.push('"');
                    for _ in 0..hashes {
                        code_line.push(' ');
                    }
                    i += 1 + hashes as usize;
                } else {
                    code_line.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !code_line.is_empty() || !comment_line.is_empty() {
        code.push(code_line);
        comments.push(comment_line);
    }
    Scanned { code, comments }
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// At `chars[i]` (an `r` or `b` not preceded by an identifier char),
/// detect a raw/byte string introducer. Returns (is_raw, closing hash
/// count, introducer length up to but not counting the opening quote's
/// replacement) — `None` if this is just an identifier.
fn raw_string_intro(chars: &[char], i: usize) -> (bool, u32, Option<usize>) {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    let is_raw = chars.get(j) == Some(&'r');
    if is_raw {
        j += 1;
    }
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') && (is_raw || hashes == 0) && (is_raw || j > i) {
        (is_raw, hashes, Some(j - i))
    } else {
        (false, 0, None)
    }
}

fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Length of a char literal starting at `chars[i] == '\''`, or `None` if
/// this is a lifetime / loop label.
fn char_literal_len(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escape: scan to the closing quote (bounded — escapes like
            // \u{1F600} are short).
            let mut j = i + 2;
            while j < chars.len() && j < i + 12 {
                if chars[j] == '\'' {
                    return Some(j - i + 1);
                }
                j += 1;
            }
            None
        }
        Some(_) if chars.get(i + 2) == Some(&'\'') => Some(3),
        _ => None,
    }
}

/// Per-line flag: is this line inside a `#[cfg(test)] mod …` block?
/// Detected by brace-counting from the `mod` item that follows the
/// attribute (test *functions* outside such a module are not skipped —
/// only the conventional unit-test module is).
pub fn test_mod_lines(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if code[i].contains("#[cfg(test)]") {
            // Find the mod declaration within the next few lines (other
            // attributes may sit between).
            let mut j = i + 1;
            while j < code.len() && j <= i + 4 && !code[j].trim_start().starts_with("mod ") {
                j += 1;
            }
            if j < code.len() && code[j].trim_start().starts_with("mod ") {
                let mut depth = 0i32;
                let mut opened = false;
                for (k, line) in code.iter().enumerate().skip(j) {
                    for c in line.chars() {
                        match c {
                            '{' => {
                                depth += 1;
                                opened = true;
                            }
                            '}' => depth -= 1,
                            _ => {}
                        }
                    }
                    in_test[k] = true;
                    if opened && depth <= 0 {
                        i = k;
                        break;
                    }
                }
            }
        }
        i += 1;
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let s = scan("let x = \"unsafe { }\"; // unsafe in comment\n");
        assert!(!s.code[0].contains("unsafe"), "code view: {:?}", s.code[0]);
        assert!(s.comments[0].contains("unsafe in comment"));
    }

    #[test]
    fn nested_block_comments() {
        let s = scan("a /* outer /* inner */ still comment */ b\n");
        assert!(s.code[0].contains('a') && s.code[0].contains('b'));
        assert!(!s.code[0].contains("still"));
        assert!(s.comments[0].contains("inner"));
    }

    #[test]
    fn raw_strings_and_chars() {
        let s = scan("let p = r#\"unsafe\"#; let c = '\\''; let l: &'static str = \"x\";\n");
        assert!(!s.code[0].contains("unsafe"));
        assert!(
            s.code[0].contains("'static"),
            "lifetime survives: {:?}",
            s.code[0]
        );
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let s = scan("let x = \"a\\\"unsafe\"; unsafe {}\n");
        let code = &s.code[0];
        assert_eq!(code.matches("unsafe").count(), 1, "{code:?}");
    }

    #[test]
    fn test_mod_span_detected() {
        let src =
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let s = scan(src);
        let spans = test_mod_lines(&s.code);
        assert_eq!(spans, vec![false, false, true, true, true, false]);
    }
}
