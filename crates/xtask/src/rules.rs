//! The repo-invariant lint rules. Each rule works on the scanner's
//! code/comment views of a file, so string literals and commented-out
//! code never trigger findings.
//!
//! * **R1 `unsafe` needs `// SAFETY:`** — every `unsafe` token (block,
//!   fn, impl) must carry a `SAFETY:` comment on the same line or in the
//!   contiguous comment block immediately above. Applies to every file.
//! * **R2 no wall-clock in pure logic** — `Instant::now()` /
//!   `SystemTime::now()` are banned in the delay-policy and snapshot
//!   layers (`crates/core/src/policy.rs`, `crates/core/src/snapshot.rs`,
//!   all of `crates/popularity`) and on the whole deterministic serving
//!   path (`crates/server/src`, `crates/core/src/guarded.rs`,
//!   `crates/core/src/clock.rs`, all of `crates/cluster/src` — the
//!   cluster world runs entirely under the shared `ManualClock`, and a
//!   single wall read would make its event loop unreplayable): those
//!   layers take time as a parameter or read it through the `Clock`
//!   facade, so the same code runs under the simulated clock and stays
//!   deterministic and model-checkable. The only vetted exceptions (in
//!   `crates/xtask/lint-allow.txt`) are inside the real-clock
//!   implementation itself. Unit-test modules are exempt.
//! * **R3 no `unwrap`/`expect` on server paths** — the long-running
//!   server loops (`server.rs`, `scheduler.rs`, `wheel.rs`) and the
//!   cluster front door's router/delta-sync path
//!   (`crates/cluster/src/sim.rs`, `crates/cluster/src/partition.rs`)
//!   must not panic on recoverable conditions; vetted exceptions live in
//!   `crates/xtask/lint-allow.txt`. Unit-test modules are exempt.
//! * **R4 no `Relaxed` pointer publishes** — a store/swap (or the
//!   success ordering of a compare-exchange) on an `AtomicPtr`-typed
//!   value must not be `Ordering::Relaxed`: readers on the other side
//!   would not be guaranteed to see the pointee's initialization. The
//!   rule tracks identifiers declared as `AtomicPtr` in the same file
//!   (field and `let` declarations), plus any store whose operand is
//!   visibly a raw pointer (`Box::into_raw`, `null_mut`, `as *mut`).
//! * **R5 no result-set materialization on the server hot path** —
//!   `.collect` is banned in the non-test code of the front door's query
//!   path (`crates/server/src/gate.rs`, `crates/server/src/server.rs`):
//!   the streaming executor exists so a result set is never buffered
//!   whole, and one stray `collect::<Vec<_>>()` silently reintroduces
//!   O(result) memory. Bounded, vetted collections (column-name lists,
//!   config tables) go through `crates/xtask/lint-allow.txt`. Unit-test
//!   modules are exempt.
//! * **R6 no per-row allocation on the wire path** — `Vec::new`,
//!   `format!` and `.to_vec()` are banned inside loop bodies in the
//!   files that touch every released tuple (`crates/server/src/gate.rs`,
//!   `crates/server/src/scheduler.rs`, `crates/server/src/protocol.rs`):
//!   the zero-copy pipeline's allocation budget (two allocations per
//!   query, measured by the bench counting allocator) only holds if the
//!   per-row loops reuse caller-owned buffers, and one `format!` in a
//!   row loop turns a budget into a hope. Allocations that run once per
//!   *chunk* or per *connection* (outside any loop) are fine; vetted
//!   per-iteration sites go through `crates/xtask/lint-allow.txt`.
//!   Unit-test modules are exempt.

use std::collections::HashSet;
use std::path::Path;

use crate::scan::{scan, test_mod_lines, Scanned};

pub struct Finding {
    /// Repo-relative path.
    pub file: String,
    /// 1-based.
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.message)
    }
}

/// Vetted `unwrap`/`expect` sites: `path: trimmed-source-line` entries.
pub struct Allowlist {
    entries: HashSet<(String, String)>,
}

impl Allowlist {
    pub fn parse(text: &str) -> Allowlist {
        let mut entries = HashSet::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some((path, code)) = line.split_once(':') {
                entries.insert((path.trim().to_string(), code.trim().to_string()));
            }
        }
        Allowlist { entries }
    }

    pub fn empty() -> Allowlist {
        Allowlist {
            entries: HashSet::new(),
        }
    }

    fn permits(&self, file: &str, source_line: &str) -> bool {
        self.entries
            .contains(&(file.to_string(), source_line.trim().to_string()))
    }
}

/// Run every rule over one file. `rel` is the repo-relative path with
/// forward slashes.
pub fn lint_file(rel: &str, src: &str, allow: &Allowlist) -> Vec<Finding> {
    let scanned = scan(src);
    let source_lines: Vec<&str> = src.lines().collect();
    let mut findings = Vec::new();
    rule_unsafe_needs_safety(rel, &scanned, &mut findings);
    rule_no_wall_clock(rel, &scanned, &source_lines, allow, &mut findings);
    rule_no_unwrap_on_server_paths(rel, &scanned, &source_lines, allow, &mut findings);
    rule_no_relaxed_pointer_publish(rel, &scanned, &mut findings);
    rule_no_collect_on_server_hot_path(rel, &scanned, &source_lines, allow, &mut findings);
    rule_no_alloc_in_row_loops(rel, &scanned, &source_lines, allow, &mut findings);
    findings
}

/// Word-boundary occurrences of `needle` in `haystack`.
fn has_token(haystack: &str, needle: &str) -> bool {
    let bytes = haystack.as_bytes();
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + needle.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn rule_unsafe_needs_safety(rel: &str, s: &Scanned, findings: &mut Vec<Finding>) {
    for (i, code) in s.code.iter().enumerate() {
        if !has_token(code, "unsafe") {
            continue;
        }
        // Same-line comment, or the contiguous pure-comment block
        // directly above (long SAFETY comments span many lines).
        let mut justified = s.comments[i].contains("SAFETY:");
        let mut j = i;
        while !justified && j > 0 {
            j -= 1;
            let above_is_pure_comment =
                s.code[j].trim().is_empty() && !s.comments[j].trim().is_empty();
            if !above_is_pure_comment {
                break;
            }
            justified = s.comments[j].contains("SAFETY:");
        }
        if !justified {
            findings.push(Finding {
                file: rel.to_string(),
                line: i + 1,
                message: "`unsafe` without an adjacent `// SAFETY:` comment \
                          (document the invariant that makes this sound)"
                    .to_string(),
            });
        }
    }
}

/// Files where wall-clock reads are banned: the pure policy/snapshot
/// layers (time is a parameter), the whole serving path (time comes
/// from the injected `Clock`, so the deterministic simulation harness
/// controls it), and the cluster front door (router, delta sync and
/// campaign drivers all run on the shared `ManualClock`; one wall read
/// would break seeded replay of a multi-node run).
fn wall_clock_banned(rel: &str) -> bool {
    rel == "crates/core/src/policy.rs"
        || rel == "crates/core/src/snapshot.rs"
        || rel == "crates/core/src/guarded.rs"
        || rel == "crates/core/src/clock.rs"
        || rel.starts_with("crates/popularity/")
        || rel.starts_with("crates/server/src/")
        || rel.starts_with("crates/cluster/src/")
}

fn rule_no_wall_clock(
    rel: &str,
    s: &Scanned,
    source_lines: &[&str],
    allow: &Allowlist,
    findings: &mut Vec<Finding>,
) {
    if !wall_clock_banned(rel) {
        return;
    }
    let in_test = test_mod_lines(&s.code);
    for (i, code) in s.code.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        for call in ["Instant::now", "SystemTime::now"] {
            if !code.contains(call) {
                continue;
            }
            let source = source_lines.get(i).copied().unwrap_or("");
            if allow.permits(rel, source) {
                continue;
            }
            findings.push(Finding {
                file: rel.to_string(),
                line: i + 1,
                message: format!(
                    "`{call}()` in a deterministic layer — take the \
                     timestamp as a parameter or read the injected `Clock` \
                     instead"
                ),
            });
        }
    }
}

/// Server-loop files where panicking calls are banned: the real server's
/// long-running loops, plus the cluster router/delta-sync path — one
/// malformed frame or sync message must not take the whole front door
/// down with it.
fn panic_free_path(rel: &str) -> bool {
    matches!(
        rel,
        "crates/server/src/server.rs"
            | "crates/server/src/gate.rs"
            | "crates/server/src/scheduler.rs"
            | "crates/server/src/wheel.rs"
            | "crates/cluster/src/sim.rs"
            | "crates/cluster/src/partition.rs"
    )
}

fn rule_no_unwrap_on_server_paths(
    rel: &str,
    s: &Scanned,
    source_lines: &[&str],
    allow: &Allowlist,
    findings: &mut Vec<Finding>,
) {
    if !panic_free_path(rel) {
        return;
    }
    let in_test = test_mod_lines(&s.code);
    for (i, code) in s.code.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        if !code.contains(".unwrap()") && !code.contains(".expect(") {
            continue;
        }
        let source = source_lines.get(i).copied().unwrap_or("");
        if allow.permits(rel, source) {
            continue;
        }
        findings.push(Finding {
            file: rel.to_string(),
            line: i + 1,
            message: "`unwrap`/`expect` on a server path — handle the error \
                      or add a vetted entry to crates/xtask/lint-allow.txt"
                .to_string(),
        });
    }
}

/// Files on the server's per-query hot path, where buffering a whole
/// result set would defeat the streaming pipeline's memory bound.
fn streaming_hot_path(rel: &str) -> bool {
    matches!(
        rel,
        "crates/server/src/gate.rs" | "crates/server/src/server.rs"
    )
}

fn rule_no_collect_on_server_hot_path(
    rel: &str,
    s: &Scanned,
    source_lines: &[&str],
    allow: &Allowlist,
    findings: &mut Vec<Finding>,
) {
    if !streaming_hot_path(rel) {
        return;
    }
    let in_test = test_mod_lines(&s.code);
    for (i, code) in s.code.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        if !code.contains(".collect") {
            continue;
        }
        let source = source_lines.get(i).copied().unwrap_or("");
        if allow.permits(rel, source) {
            continue;
        }
        findings.push(Finding {
            file: rel.to_string(),
            line: i + 1,
            message: "`.collect` on the server hot path — results must stream \
                      in bounded chunks, never materialize whole; for a \
                      provably bounded collection add a vetted entry to \
                      crates/xtask/lint-allow.txt"
                .to_string(),
        });
    }
}

/// Files whose loops run once per released tuple, where a stray
/// allocation multiplies by the row count and blows the measured
/// two-allocations-per-query budget. `gate.rs` covers the mutation path
/// too (`handle_mutation` and its reply scheduling); the cluster router
/// is included because reads *and* writes now flow through its
/// per-frame routing and sink-drain loops.
fn row_loop_alloc_path(rel: &str) -> bool {
    matches!(
        rel,
        "crates/server/src/gate.rs"
            | "crates/server/src/scheduler.rs"
            | "crates/server/src/protocol.rs"
            | "crates/cluster/src/sim.rs"
    )
}

/// Per-byte map of "inside a loop body": a brace frame is a loop frame
/// when the code between the previous `{`/`}`/`;` and its opening brace
/// contains a `for`, `while` or `loop` token. Works on the scanner's
/// code view, so braces in strings and comments never confuse the
/// nesting.
fn loop_mask(code: &[String]) -> Vec<Vec<bool>> {
    let mut stack: Vec<bool> = Vec::new();
    let mut pending = String::new();
    let mut masks = Vec::with_capacity(code.len());
    for line in code {
        let mut mask = vec![false; line.len()];
        for (at, c) in line.char_indices() {
            match c {
                '{' => {
                    let is_loop = has_token(&pending, "for")
                        || has_token(&pending, "while")
                        || has_token(&pending, "loop");
                    stack.push(is_loop);
                    pending.clear();
                }
                '}' => {
                    stack.pop();
                    pending.clear();
                }
                ';' => pending.clear(),
                _ => pending.push(c),
            }
            let in_loop = stack.iter().any(|&l| l);
            for m in mask.iter_mut().skip(at).take(c.len_utf8()) {
                *m = in_loop;
            }
        }
        masks.push(mask);
    }
    masks
}

fn rule_no_alloc_in_row_loops(
    rel: &str,
    s: &Scanned,
    source_lines: &[&str],
    allow: &Allowlist,
    findings: &mut Vec<Finding>,
) {
    if !row_loop_alloc_path(rel) {
        return;
    }
    let in_test = test_mod_lines(&s.code);
    let masks = loop_mask(&s.code);
    for (i, code) in s.code.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        for needle in ["Vec::new", "format!", ".to_vec()"] {
            let mut start = 0;
            while let Some(pos) = code[start..].find(needle) {
                let at = start + pos;
                start = at + needle.len();
                if !masks[i].get(at).copied().unwrap_or(false) {
                    continue;
                }
                let source = source_lines.get(i).copied().unwrap_or("");
                if allow.permits(rel, source) {
                    continue;
                }
                findings.push(Finding {
                    file: rel.to_string(),
                    line: i + 1,
                    message: format!(
                        "`{needle}` inside a loop on the wire path — this \
                         runs once per row and breaks the allocation \
                         budget; reuse a caller-owned buffer, hoist the \
                         allocation out of the loop, or add a vetted entry \
                         to crates/xtask/lint-allow.txt"
                    ),
                });
                break;
            }
        }
    }
}

/// Identifiers declared as `AtomicPtr` in this file: `name: AtomicPtr<…>`
/// fields/params and `let name = AtomicPtr::new(…)` bindings.
fn atomic_ptr_idents(s: &Scanned) -> HashSet<String> {
    let mut names = HashSet::new();
    for code in &s.code {
        let mut start = 0;
        while let Some(pos) = code[start..].find("AtomicPtr") {
            let at = start + pos;
            let before = code[..at].trim_end();
            // `name: AtomicPtr<…>` fields or `let name = AtomicPtr::new(…)`.
            let lead = before
                .strip_suffix(':')
                .or_else(|| before.strip_suffix('='));
            if let Some(lead) = lead {
                if let Some(name) = lead
                    .trim_end()
                    .rsplit(|c: char| !c.is_alphanumeric() && c != '_')
                    .next()
                {
                    if !name.is_empty() {
                        names.insert(name.to_string());
                    }
                }
            }
            start = at + "AtomicPtr".len();
        }
    }
    names
}

/// Split the text of a call's arguments (starting just past the opening
/// parenthesis) on top-level commas, stopping at the matching close.
fn call_args(text: &str) -> Vec<String> {
    let mut args = Vec::new();
    let mut depth = 0i32;
    let mut current = String::new();
    for c in text.chars() {
        match c {
            '(' | '[' | '{' => {
                depth += 1;
                current.push(c);
            }
            ')' | ']' | '}' => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
                current.push(c);
            }
            ',' if depth == 0 => {
                args.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        args.push(current);
    }
    args
}

fn rule_no_relaxed_pointer_publish(rel: &str, s: &Scanned, findings: &mut Vec<Finding>) {
    let ptr_idents = atomic_ptr_idents(s);
    for (i, code) in s.code.iter().enumerate() {
        for (method, success_arg_from_end) in
            [(".store(", 1), (".swap(", 1), (".compare_exchange", 2)]
        {
            let Some(pos) = code.find(method) else {
                continue;
            };
            // Whose method is it? Raw-pointer operands make any receiver
            // suspect; otherwise require a known AtomicPtr identifier.
            let receiver = code[..pos]
                .rsplit(|c: char| !c.is_alphanumeric() && c != '_')
                .next()
                .unwrap_or("");
            // The call may wrap; give the argument splitter this line and
            // the next few.
            let open = code[pos..]
                .find('(')
                .map(|o| pos + o + 1)
                .unwrap_or(code.len());
            let mut text = code[open..].to_string();
            for extra in s.code.iter().skip(i + 1).take(4) {
                text.push(' ');
                text.push_str(extra);
            }
            let args = call_args(&text);
            let publishes_ptr = ptr_idents.contains(receiver)
                || args.iter().any(|a| {
                    a.contains("Box::into_raw") || a.contains("null_mut") || a.contains("as *mut")
                });
            if !publishes_ptr || args.len() < success_arg_from_end {
                continue;
            }
            // For store/swap the ordering is the last argument; for
            // compare_exchange it is the *success* ordering (second from
            // last) — a Relaxed *failure* ordering is fine.
            let ordering = &args[args.len() - success_arg_from_end];
            if ordering.contains("Relaxed") {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: i + 1,
                    message: "`Ordering::Relaxed` on a pointer-publishing \
                              store — readers may see uninitialized pointee; \
                              use `Release` (or stronger)"
                        .to_string(),
                });
            }
        }
    }
}

/// Convenience for `main` and tests: lint one on-disk file.
pub fn lint_path(root: &Path, abs: &Path, allow: &Allowlist) -> Vec<Finding> {
    let rel = abs
        .strip_prefix(root)
        .unwrap_or(abs)
        .to_string_lossy()
        .replace('\\', "/");
    match std::fs::read_to_string(abs) {
        Ok(src) => lint_file(&rel, &src, allow),
        Err(e) => vec![Finding {
            file: rel,
            line: 0,
            message: format!("unreadable: {e}"),
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(rel: &str, src: &str) -> Vec<Finding> {
        lint_file(rel, src, &Allowlist::empty())
    }

    #[test]
    fn unsafe_without_safety_fires() {
        let f = lint(
            "crates/x/src/lib.rs",
            "fn f(p: *mut u8) { unsafe { *p = 0 }; }\n",
        );
        assert_eq!(
            f.len(),
            1,
            "{:?}",
            f.iter().map(|x| x.to_string()).collect::<Vec<_>>()
        );
        assert!(f[0].message.contains("SAFETY"));
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn unsafe_with_adjacent_safety_passes() {
        let src = "// SAFETY: p is valid for writes, caller contract.\n\
                   fn f(p: *mut u8) { unsafe { *p = 0 } }\n";
        assert!(lint("a.rs", src).is_empty());
        // A long comment block still counts — SAFETY: may be several
        // lines above as long as the comment is contiguous.
        let long = "// SAFETY: this pointer came from Box::into_raw and\n\
                    // ownership is transferred here, so dereferencing\n\
                    // is sound for the lifetime of the call.\n\
                    fn f(p: *mut u8) { unsafe { *p = 0 } }\n";
        assert!(lint("a.rs", long).is_empty());
    }

    #[test]
    fn unsafe_in_string_or_comment_is_ignored() {
        let src = "let s = \"unsafe { }\"; // unsafe is discussed here\n";
        assert!(lint("a.rs", src).is_empty());
        // `unsafe_code` (the lint name) is not the `unsafe` token.
        assert!(lint("a.rs", "#![deny(unsafe_code)]\n").is_empty());
    }

    #[test]
    fn wall_clock_banned_in_popularity_and_policy() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(lint("crates/popularity/src/decay.rs", src).len(), 1);
        assert_eq!(lint("crates/core/src/policy.rs", src).len(), 1);
        assert_eq!(lint("crates/core/src/snapshot.rs", src).len(), 1);
        // …but fine elsewhere.
        assert!(lint("crates/bench/src/throughput.rs", src).is_empty());
        let sys = "fn f() { let t = SystemTime::now(); }\n";
        assert_eq!(lint("crates/popularity/src/lib.rs", sys).len(), 1);
    }

    #[test]
    fn wall_clock_banned_on_the_whole_serving_path() {
        let src = "fn f() { let t = Instant::now(); }\n";
        for rel in [
            "crates/server/src/client.rs",
            "crates/server/src/server.rs",
            "crates/server/src/gate.rs",
            "crates/server/src/scheduler.rs",
            "crates/core/src/guarded.rs",
            "crates/core/src/clock.rs",
        ] {
            assert_eq!(lint(rel, src).len(), 1, "{rel} must be in R2 scope");
        }
    }

    #[test]
    fn wall_clock_banned_across_the_cluster_crate() {
        let src = "fn f() { let t = Instant::now(); }\n";
        for rel in [
            "crates/cluster/src/sim.rs",
            "crates/cluster/src/partition.rs",
            "crates/cluster/src/campaign.rs",
            "crates/cluster/src/lib.rs",
        ] {
            assert_eq!(lint(rel, src).len(), 1, "{rel} must be in R2 scope");
        }
        // Cluster integration tests may time things for real.
        assert!(lint("crates/cluster/tests/cluster_campaigns.rs", src).is_empty());
    }

    #[test]
    fn unwrap_on_cluster_router_path_fires() {
        let src = "fn f() { x.lock().unwrap(); }\n";
        for rel in [
            "crates/cluster/src/sim.rs",
            "crates/cluster/src/partition.rs",
        ] {
            assert_eq!(lint(rel, src).len(), 1, "{rel} must be in R3 scope");
        }
        // The campaign driver is a test harness, not the router loop.
        assert!(lint("crates/cluster/src/campaign.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_allowlist_and_test_modules_exempt() {
        // The vetted real-clock impl reads the wall via an allow entry
        // (entries match the exact trimmed source line).
        let src = "fn new() -> RealClock {\n\
                       RealClock {\n\
                           epoch: Instant::now(),\n\
                       }\n\
                   }\n";
        let allow = Allowlist::parse("crates/core/src/clock.rs: epoch: Instant::now(),\n");
        assert!(lint_file("crates/core/src/clock.rs", src, &allow).is_empty());
        assert_eq!(lint("crates/core/src/clock.rs", src).len(), 1);
        // Unit tests may time things for real.
        let test_src = "fn f() {}\n\
                        #[cfg(test)]\n\
                        mod tests {\n\
                            #[test]\n\
                            fn t() { let t = Instant::now(); }\n\
                        }\n";
        assert!(lint("crates/server/src/scheduler.rs", test_src).is_empty());
    }

    #[test]
    fn unwrap_on_server_path_fires_and_allowlist_clears_it() {
        let src = "fn f() { x.lock().unwrap(); }\n";
        let f = lint("crates/server/src/server.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
        let allow =
            Allowlist::parse("crates/server/src/server.rs: fn f() { x.lock().unwrap(); }\n");
        assert!(lint_file("crates/server/src/server.rs", src, &allow).is_empty());
        // Not a watched file → no finding.
        assert!(lint("crates/server/src/client.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_test_module_is_exempt() {
        let src = "fn f() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { x.unwrap(); }\n\
                   }\n";
        assert!(lint("crates/server/src/scheduler.rs", src).is_empty());
    }

    #[test]
    fn relaxed_pointer_store_fires() {
        let src = "struct S { head: AtomicPtr<u8> }\n\
                   fn f(s: &S, p: *mut u8) { s.head.store(p, Ordering::Relaxed); }\n";
        let f = lint("a.rs", src);
        assert_eq!(
            f.len(),
            1,
            "{:?}",
            f.iter().map(|x| x.to_string()).collect::<Vec<_>>()
        );
        assert_eq!(f[0].line, 2);
        // Release is fine.
        let ok = "struct S { head: AtomicPtr<u8> }\n\
                  fn f(s: &S, p: *mut u8) { s.head.store(p, Ordering::Release); }\n";
        assert!(lint("a.rs", ok).is_empty());
    }

    #[test]
    fn relaxed_failure_ordering_on_cas_is_fine() {
        let src = "struct S { head: AtomicPtr<u8> }\n\
                   fn f(s: &S, n: *mut u8, c: *mut u8) {\n\
                       s.head.compare_exchange(c, n, Ordering::Release, Ordering::Relaxed);\n\
                   }\n";
        assert!(
            lint("a.rs", src).is_empty(),
            "Relaxed failure ordering is idiomatic"
        );
        let bad = "struct S { head: AtomicPtr<u8> }\n\
                   fn f(s: &S, n: *mut u8, c: *mut u8) {\n\
                       s.head.compare_exchange(c, n, Ordering::Relaxed, Ordering::Relaxed);\n\
                   }\n";
        assert_eq!(
            lint("a.rs", bad).len(),
            1,
            "Relaxed success ordering must fire"
        );
    }

    #[test]
    fn relaxed_raw_pointer_store_without_decl_fires() {
        let src = "fn f(a: &SomeAtomic) { a.store(Box::into_raw(b), Ordering::Relaxed); }\n";
        assert_eq!(lint("a.rs", src).len(), 1);
    }

    #[test]
    fn relaxed_integer_store_is_fine() {
        let src = "struct S { n: AtomicU64 }\n\
                   fn f(s: &S) { s.n.store(1, Ordering::Relaxed); }\n";
        assert!(lint("a.rs", src).is_empty());
    }

    #[test]
    fn collect_on_server_hot_path_fires() {
        let src = "fn f(rows: Vec<Row>) { let v = rows.iter().collect::<Vec<_>>(); }\n";
        for rel in ["crates/server/src/gate.rs", "crates/server/src/server.rs"] {
            let f = lint(rel, src);
            assert_eq!(f.len(), 1, "{rel} must be in R5 scope");
            assert!(f[0].message.contains("stream"));
        }
        // Fine off the hot path (clients and tests materialize freely).
        assert!(lint("crates/server/src/client.rs", src).is_empty());
        assert!(lint("crates/core/src/guarded.rs", src).is_empty());
    }

    #[test]
    fn collect_allowlist_and_test_modules_exempt() {
        let src = "fn f(c: &[String]) { let v = c.iter().cloned().collect::<Vec<_>>(); }\n";
        let allow = Allowlist::parse(
            "crates/server/src/gate.rs: fn f(c: &[String]) { let v = c.iter().cloned().collect::<Vec<_>>(); }\n",
        );
        assert!(lint_file("crates/server/src/gate.rs", src, &allow).is_empty());
        assert_eq!(lint("crates/server/src/gate.rs", src).len(), 1);
        let test_src = "fn f() {}\n\
                        #[cfg(test)]\n\
                        mod tests {\n\
                            #[test]\n\
                            fn t() { let v: Vec<u8> = (0..9).collect(); }\n\
                        }\n";
        assert!(lint("crates/server/src/gate.rs", test_src).is_empty());
    }

    #[test]
    fn collect_in_string_or_comment_is_ignored() {
        let src = "// results .collect() whole is discussed here\n\
                   fn f() { let s = \"never .collect()\"; }\n";
        assert!(lint("crates/server/src/gate.rs", src).is_empty());
    }

    #[test]
    fn per_row_alloc_in_loop_fires_on_every_wire_file() {
        for bad in [
            "fn f(rows: &[Row]) { for r in rows { let v = Vec::new(); } }\n",
            "fn f(rows: &[Row]) { for r in rows { let s = format!(\"{r:?}\"); } }\n",
            "fn f(rows: &[Row]) { for r in rows { let b = r.bytes.to_vec(); } }\n",
            "fn f(n: u64) { while n > 0 { let v = Vec::new(); } }\n",
            "fn f() { loop { let v = Vec::new(); } }\n",
        ] {
            for rel in [
                "crates/server/src/gate.rs",
                "crates/server/src/scheduler.rs",
                "crates/server/src/protocol.rs",
                "crates/cluster/src/sim.rs",
            ] {
                let f = lint(rel, bad);
                assert_eq!(f.len(), 1, "{rel} must flag {bad:?}");
                assert!(f[0].message.contains("once per row"));
            }
        }
    }

    #[test]
    fn mutation_path_allocs_only_outside_loops() {
        // The write path's once-per-statement allocations (error-message
        // `format!`, the owned table name) sit outside any loop, so the
        // rule stays quiet; the same tokens inside the reply-drain loop
        // fire. This pins R6 coverage of `handle_mutation` in gate.rs.
        let once_per_stmt = "fn handle_mutation(&self, sql: &str) {\n\
                                 let table = t.clone();\n\
                                 let msg = format!(\"statement does not match {v} frame\");\n\
                                 for job in jobs.drain(..) {\n\
                                     sink.push_row(job);\n\
                                 }\n\
                             }\n";
        assert!(lint("crates/server/src/gate.rs", once_per_stmt).is_empty());
        let per_row = "fn handle_mutation(&self) {\n\
                           for job in jobs.drain(..) {\n\
                               let msg = format!(\"row {job:?}\");\n\
                           }\n\
                       }\n";
        let f = lint("crates/server/src/gate.rs", per_row);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn alloc_outside_loops_is_fine() {
        // Per-chunk and per-connection allocations sit outside any loop.
        let src = "fn f(rows: &[Row]) {\n\
                       let mut jobs = Vec::new();\n\
                       for r in rows {\n\
                           jobs.push(r.id);\n\
                       }\n\
                       let tail = Vec::new();\n\
                   }\n";
        assert!(lint("crates/server/src/gate.rs", src).is_empty());
        // Same tokens in an unwatched file never fire.
        let loopy = "fn f(rows: &[Row]) { for r in rows { let v = Vec::new(); } }\n";
        assert!(lint("crates/server/src/server.rs", loopy).is_empty());
        assert!(lint("crates/core/src/guarded.rs", loopy).is_empty());
    }

    #[test]
    fn alloc_in_nested_block_of_loop_still_fires() {
        let src = "fn f(rows: &[Row]) {\n\
                       for r in rows {\n\
                           if r.big() {\n\
                               let v = Vec::new();\n\
                           }\n\
                       }\n\
                   }\n";
        assert_eq!(lint("crates/server/src/protocol.rs", src).len(), 1);
    }

    #[test]
    fn loop_keyword_in_identifier_or_format_is_not_a_loop() {
        // `format!` must not read as a `for` loop header, and a call
        // after a closed loop body is back outside it.
        let src = "fn f(rows: &[Row]) {\n\
                       for r in rows { touch(r); }\n\
                       let label = format!(\"n={}\", rows.len());\n\
                   }\n";
        assert!(lint("crates/server/src/gate.rs", src).is_empty());
    }

    #[test]
    fn row_loop_alloc_allowlist_and_test_modules_exempt() {
        let src = "fn f(rows: &[Row]) { for r in rows { let v = r.b.to_vec(); } }\n";
        let allow = Allowlist::parse(
            "crates/server/src/gate.rs: fn f(rows: &[Row]) { for r in rows { let v = r.b.to_vec(); } }\n",
        );
        assert!(lint_file("crates/server/src/gate.rs", src, &allow).is_empty());
        assert_eq!(lint("crates/server/src/gate.rs", src).len(), 1);
        let test_src = "fn f() {}\n\
                        #[cfg(test)]\n\
                        mod tests {\n\
                            #[test]\n\
                            fn t() { for i in 0..4 { let v = Vec::new(); } }\n\
                        }\n";
        assert!(lint("crates/server/src/scheduler.rs", test_src).is_empty());
    }
}
