//! Concurrency tests for the gatekeeper: the §2.4 policies must hold
//! under arbitrary thread interleavings, not just in single-threaded
//! unit tests. The gatekeeper itself is `&mut`-based; these tests drive
//! it the way the server does — behind a mutex, hammered from many
//! threads — and check the *admitted* schedule, which must satisfy the
//! policy no matter how lock acquisition interleaves.

use delayguard_core::gatekeeper::{
    Admission, Gatekeeper, GatekeeperConfig, Ipv4, RegistrationOutcome, RegistrationPolicy,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

/// One identity per `t` seconds, globally: with 8 threads racing to
/// register (each reading the shared clock *before* taking the lock, so
/// the `now` values they present interleave and even regress), the
/// admitted registration times must still be at least `t` apart.
#[test]
fn registration_interval_holds_under_interleaving() {
    const THREADS: usize = 8;
    const ATTEMPTS: usize = 400;
    const INTERVAL: f64 = 5.0;

    let keeper = Arc::new(Mutex::new(Gatekeeper::new(GatekeeperConfig {
        registration: RegistrationPolicy::interval(INTERVAL),
        ..GatekeeperConfig::default()
    })));
    // Virtual clock in milliseconds; threads advance it racily.
    let clock_ms = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(THREADS));

    let handles: Vec<_> = (0..THREADS)
        .map(|thread| {
            let keeper = Arc::clone(&keeper);
            let clock_ms = Arc::clone(&clock_ms);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut admitted = Vec::new();
                for attempt in 0..ATTEMPTS {
                    // Read time, *then* lock: by the time the lock is
                    // held the clock may have moved or another thread
                    // may have registered with a later timestamp.
                    let now = clock_ms.fetch_add(7, Ordering::SeqCst) as f64 / 1000.0;
                    let ip = Ipv4([10, thread as u8, (attempt >> 8) as u8, attempt as u8]);
                    let outcome = keeper.lock().unwrap().register(ip, now);
                    if let RegistrationOutcome::Admitted { user, .. } = outcome {
                        admitted.push((now, user));
                    }
                }
                admitted
            })
        })
        .collect();

    let mut admitted: Vec<(f64, _)> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    admitted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

    assert!(
        !admitted.is_empty(),
        "some registrations must succeed (first is always admitted)"
    );
    // The policy invariant: admitted timestamps pairwise >= INTERVAL apart.
    for pair in admitted.windows(2) {
        let gap = pair[1].0 - pair[0].0;
        assert!(
            gap >= INTERVAL - 1e-9,
            "two identities {:.3}s apart despite a {INTERVAL}s interval",
            gap
        );
    }
    // Sanity bound: total elapsed virtual time caps how many can fit.
    let elapsed = (THREADS * ATTEMPTS * 7) as f64 / 1000.0;
    let max_admissible = (elapsed / INTERVAL).floor() as usize + 1;
    assert!(
        admitted.len() <= max_admissible,
        "{} admitted, at most {max_admissible} fit in {elapsed}s",
        admitted.len()
    );
    // Identities are unique and all recorded by the registrar.
    let keeper = keeper.lock().unwrap();
    let mut users: Vec<_> = admitted.iter().map(|&(_, u)| u).collect();
    users.sort();
    users.dedup();
    assert_eq!(users.len(), admitted.len(), "duplicate identity issued");
    assert_eq!(keeper.registrar().count(), admitted.len());
}

/// Token buckets under contention: with virtual time frozen, 8 threads
/// racing `admit` for one identity can win at most `burst` grants —
/// the race must never mint extra tokens.
#[test]
fn user_burst_not_exceeded_under_contention() {
    const THREADS: usize = 8;
    const ATTEMPTS: usize = 100;
    const BURST: f64 = 10.0;

    let mut keeper = Gatekeeper::new(GatekeeperConfig {
        per_user_rate: 1.0,
        per_user_burst: BURST,
        per_subnet_rate: 1000.0,
        per_subnet_burst: 1000.0,
        registration: RegistrationPolicy::interval(0.0),
        storefront_query_threshold: 0,
    });
    let user = match keeper.register(Ipv4([10, 0, 0, 1]), 0.0) {
        RegistrationOutcome::Admitted { user, .. } => user,
        other => panic!("{other:?}"),
    };
    let keeper = Arc::new(Mutex::new(keeper));
    let barrier = Arc::new(Barrier::new(THREADS));

    // Everyone queries at the same frozen instant: only the burst can win.
    let now = 100.0;
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let keeper = Arc::clone(&keeper);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut granted = 0usize;
                for _ in 0..ATTEMPTS {
                    if keeper.lock().unwrap().admit(user, now) == Admission::Granted {
                        granted += 1;
                    }
                }
                granted
            })
        })
        .collect();

    let granted: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(
        granted, BURST as usize,
        "exactly the burst may pass at one instant"
    );
    assert_eq!(
        keeper.lock().unwrap().query_count(user),
        BURST as u64,
        "accounting must match grants"
    );
}
