//! Property tests for the delay-shaping function (the timing
//! side-channel defense): across 128 random geometries and workloads per
//! property, the quantized+jittered delay must never undercut the raw
//! policy delay, must stay monotone non-decreasing across bucket
//! boundaries for any jitter draw, must re-price the same
//! `(seed, query, tuple)` bit-identically, and with shaping disabled
//! must be the bit-exact identity.
//!
//! Deterministic harness (no external property-testing crate in this
//! offline build): a splitmix64 generator drives 128 cases per property
//! from fixed seeds, so failures reproduce exactly.

use delayguard_core::shaping::DelayShaping;
use delayguard_core::{GuardConfig, GuardedDatabase};

const CASES: u64 = 128;

/// splitmix64: tiny, full-period, good enough to drive test shapes.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn cases(seed: u64, mut body: impl FnMut(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = Rng(seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ case);
        body(&mut rng);
    }
}

/// A random valid shaping geometry: anchor across 6 decades, γ ∈ (1, 64],
/// jitter anywhere in the legal `[0, γ − 1]` band (clamped so extreme γ
/// doesn't explode the multiplier), random seed.
fn arb_shaping(rng: &mut Rng) -> DelayShaping {
    let anchor = 10f64.powf(rng.unit_f64() * 6.0 - 3.0);
    let gamma = 1.0 + rng.unit_f64() * 63.0;
    let jitter = (rng.unit_f64() * (gamma - 1.0)).min(4.0);
    let s = DelayShaping::new(anchor, gamma, jitter, rng.next());
    s.validate().expect("arb geometry must be valid");
    s
}

/// A raw delay spanning the magnitudes the policy actually emits
/// (sub-millisecond hot tuples through multi-day cold caps).
fn arb_raw(rng: &mut Rng) -> f64 {
    10f64.powf(rng.unit_f64() * 9.0 - 4.0)
}

#[test]
fn shaped_delay_never_undercuts_raw() {
    cases(0xA11CE, |rng| {
        let s = arb_shaping(rng);
        for _ in 0..16 {
            let raw = arb_raw(rng);
            let d = s.shape(raw, rng.next(), rng.next());
            assert!(
                d >= raw,
                "shape({raw}) = {d} < raw under {s:?} — shaping must only raise prices"
            );
        }
    });
}

#[test]
fn quantize_picks_the_minimal_covering_edge() {
    cases(0xED6E, |rng| {
        let s = arb_shaping(rng);
        let raw = arb_raw(rng);
        let edge = s.quantize(raw);
        assert!(edge >= raw, "edge {edge} below raw {raw}");
        assert!(
            edge / s.gamma < raw * (1.0 + 1e-12),
            "edge {edge} not minimal for raw {raw} (gamma {})",
            s.gamma
        );
    });
}

#[test]
fn monotone_non_decreasing_across_bucket_boundaries() {
    cases(0x5EED, |rng| {
        let s = arb_shaping(rng);
        // Adversarial pairs: distinct raws, arbitrary nonces and keys on
        // each side (jitter may not conspire to reorder buckets).
        for _ in 0..16 {
            let (a, b) = (arb_raw(rng), arb_raw(rng));
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            if s.quantize(lo) < s.quantize(hi) {
                let d_lo = s.shape(lo, rng.next(), rng.next());
                let d_hi = s.shape(hi, rng.next(), rng.next());
                assert!(
                    d_lo <= d_hi,
                    "cross-bucket inversion: shape({lo})={d_lo} > shape({hi})={d_hi} under {s:?}"
                );
            }
        }
    });
}

#[test]
fn repricing_the_same_query_tuple_is_bit_stable() {
    cases(0x57AB1E, |rng| {
        let s = arb_shaping(rng);
        let raw = arb_raw(rng);
        let (nonce, key) = (rng.next(), rng.next());
        let first = s.shape(raw, nonce, key);
        for _ in 0..4 {
            assert_eq!(
                s.shape(raw, nonce, key).to_bits(),
                first.to_bits(),
                "same (seed, query, tuple) must re-price bit-identically"
            );
        }
        // A different query (nonce) is allowed — and with real jitter,
        // overwhelmingly likely — to draw a different delay.
        if s.jitter_frac > 0.0 {
            let other = s.shape(raw, nonce.wrapping_add(1), key);
            assert!(other >= s.quantize(raw));
        }
    });
}

#[test]
fn disabled_shaping_is_the_bit_exact_identity() {
    cases(0x0FF, |rng| {
        let mut s = arb_shaping(rng);
        s.enabled = false;
        for _ in 0..8 {
            let raw = arb_raw(rng);
            assert_eq!(
                s.shape(raw, rng.next(), rng.next()).to_bits(),
                raw.to_bits()
            );
            assert_eq!(s.quantize(raw).to_bits(), raw.to_bits());
        }
    });
}

/// End-to-end flavor of the re-pricing property: two identically
/// configured guarded databases replaying the same statements at the
/// same virtual times charge bit-identical shaped delays, and a repeat
/// of the same query within one database draws a fresh jitter (a new
/// per-query nonce) while staying within its bucket's band.
#[test]
fn guarded_database_repricing_is_deterministic() {
    let shaping = DelayShaping::new(10.0, 4.0, 0.5, 0xC0FFEE);
    let config = GuardConfig::paper_default().with_shaping(shaping);
    let build = || {
        let db = GuardedDatabase::new(config);
        db.execute_at("CREATE TABLE d (id INT NOT NULL, v TEXT)", 0.0)
            .unwrap();
        db.execute_at("INSERT INTO d VALUES (1, 'a'), (2, 'b')", 0.0)
            .unwrap();
        db
    };
    let (a, b) = (build(), build());
    for t in 1..=8 {
        let now = t as f64;
        // Raw price *before* the access (delays reflect prior popularity).
        let raw = a
            .tuple_delay("d", delayguard_storage::RowId::new(0, 0), now)
            .unwrap();
        let da = a.execute_at("SELECT * FROM d WHERE id = 1", now).unwrap();
        let db_ = b.execute_at("SELECT * FROM d WHERE id = 1", now).unwrap();
        assert_eq!(
            da.delay_secs.to_bits(),
            db_.delay_secs.to_bits(),
            "same build + same statement sequence must price bit-identically"
        );
        // Always at least the bucket edge of the raw price, never more
        // than the jitter band above it.
        let edge = shaping.quantize(raw);
        assert!(
            da.delay_secs >= edge && da.delay_secs <= edge * 1.5 + 1e-12,
            "delay {} outside [{edge}, {}] at t {t}",
            da.delay_secs,
            edge * 1.5
        );
    }
}
