//! Concurrency correctness for the snapshot read path.
//!
//! Three guarantees from the concurrency model (see `guarded.rs` module
//! docs and DESIGN.md §"Concurrency model"):
//!
//! 1. **No lost events**: accesses recorded by concurrent query threads
//!    racing a snapshot refresher all land in the master trackers.
//! 2. **Decay fidelity**: with decay enabled, the drained-in-order event
//!    stream produces the same total decayed mass as a sequential
//!    tracker fed the same number of records.
//! 3. **Bounded staleness / convergence** (the acceptance criterion): a
//!    tuple's snapshot-path delay equals the exact single-threaded value
//!    after at most one refresh epoch.

use delayguard_core::{
    AccessDelayPolicy, GuardConfig, GuardPolicy, GuardedDatabase, SnapshotPolicy,
};
use delayguard_popularity::{DecaySchedule, FrequencyTracker};
use delayguard_query::{parse, StatementOutput};
use delayguard_storage::RowId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

fn guarded(config: GuardConfig, rows: u64) -> GuardedDatabase {
    let db = GuardedDatabase::new(config);
    db.execute_at("CREATE TABLE t (id INT NOT NULL, body TEXT)", 0.0)
        .unwrap();
    db.execute_at("CREATE UNIQUE INDEX t_pk ON t (id)", 0.0)
        .unwrap();
    for i in 0..rows {
        db.execute_at(&format!("INSERT INTO t VALUES ({i}, 'row-{i}')"), 0.0)
            .unwrap();
    }
    db
}

/// RowId of `id = <id>` without touching the guard (engine-direct read).
fn rid_of(db: &GuardedDatabase, id: u64) -> RowId {
    let stmt = parse(&format!("SELECT * FROM t WHERE id = {id}")).unwrap();
    match db.engine().execute_stmt(&stmt).unwrap() {
        StatementOutput::Rows(rows) => rows.rows[0].0,
        other => panic!("unexpected output {other:?}"),
    }
}

fn access_policy() -> GuardPolicy {
    GuardPolicy::AccessRate(AccessDelayPolicy::new(1.5, 1.0).with_cap(10.0))
}

#[test]
fn concurrent_snapshot_traffic_loses_no_events() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 500;
    let config = GuardConfig::paper_default()
        .with_policy(access_policy())
        // Small pending bound so query threads themselves trip inline
        // refreshes while the dedicated refresher races them.
        .with_snapshot_policy(SnapshotPolicy::new(64, 1e9));
    let db = Arc::new(guarded(config, 64));

    let stop = Arc::new(AtomicBool::new(false));
    let refresher = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                db.refresh();
                thread::yield_now();
            }
        })
    };

    let workers: Vec<_> = (0..THREADS)
        .map(|tid| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                // Each thread hammers its own tuple: per-key counts are
                // then exact regardless of interleaving.
                let sql = format!("SELECT * FROM t WHERE id = {tid}");
                for q in 0..PER_THREAD {
                    let r = db.execute_snapshot_at(&sql, 1.0 + q as f64).unwrap();
                    assert_eq!(r.tuples_charged, 1);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    refresher.join().unwrap();

    // One final epoch folds in anything still queued.
    db.refresh();
    assert_eq!(db.access_events("t"), THREADS * PER_THREAD);
    let stats = db.snapshot_stats();
    assert_eq!(stats.pending_events, 0);
    assert_eq!(stats.events_applied, THREADS * PER_THREAD);

    // No decay: every thread's tuple holds exactly its own record count.
    let snap = db.snapshot();
    let table = snap.table("t").expect("table observed");
    for tid in 0..THREADS {
        let rid = rid_of(&db, tid);
        assert_eq!(
            table.access.count(rid.raw()),
            PER_THREAD as f64,
            "tuple {tid} lost events"
        );
    }
}

#[test]
fn concurrent_decayed_mass_matches_sequential_tracker() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 250;
    const DECAY: f64 = 1.001;
    let config = GuardConfig::paper_default()
        .with_policy(access_policy())
        .with_access_decay(DECAY)
        .with_snapshot_policy(SnapshotPolicy::new(32, 1e9));
    let db = Arc::new(guarded(config, 16));

    let workers: Vec<_> = (0..THREADS)
        .map(|tid| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                let sql = format!("SELECT * FROM t WHERE id = {tid}");
                for q in 0..PER_THREAD {
                    db.execute_snapshot_at(&sql, 1.0 + q as f64).unwrap();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    db.refresh();

    // Sequential reference: same pre-registered keys, same number of
    // records. The decayed total is order-independent (every record adds
    // the current inflated weight, whatever its key), so the concurrent
    // tracker must agree to float tolerance.
    let mut reference = FrequencyTracker::new(DecaySchedule::new(DECAY));
    for i in 0..16 {
        reference.ensure_tracked(rid_of(&db, i).raw());
    }
    for i in 0..THREADS * PER_THREAD {
        reference.record(rid_of(&db, i % THREADS).raw());
    }

    let snap = db.snapshot();
    let table = snap.table("t").expect("table observed");
    assert_eq!(table.access.events(), reference.events());
    let (got, want) = (table.access.total(), reference.total());
    assert!(
        (got - want).abs() <= want.abs() * 1e-6,
        "decayed mass diverged: got {got}, want {want}"
    );
    // Note: per-key counts (and hence fmax) legitimately depend on the
    // interleaving — later records carry more decay weight — so only the
    // order-independent aggregates are compared.
}

#[test]
fn snapshot_delay_converges_within_one_refresh_epoch() {
    // The acceptance criterion: run an identical single-threaded query
    // sequence through (a) the exact virtual-time path and (b) the
    // snapshot path with refreshes disabled, then perform ONE refresh.
    // Every tuple's snapshot-priced delay must equal the sequential
    // value exactly — the master record sequences are identical, so the
    // floats are bit-identical, not merely close.
    let exact_cfg = GuardConfig::paper_default().with_policy(access_policy());
    let snap_cfg = exact_cfg.with_snapshot_policy(SnapshotPolicy::new(usize::MAX, 1e9));
    let db_exact = guarded(exact_cfg, 50);
    let db_snap = guarded(snap_cfg, 50);

    // A skewed deterministic workload over 10 tuples.
    for q in 0..400u64 {
        let id = if q % 3 == 0 { 1 } else { q % 10 };
        let now = 1.0 + q as f64;
        let sql = format!("SELECT * FROM t WHERE id = {id}");
        db_exact.execute_at(&sql, now).unwrap();
        db_snap.execute_snapshot_at(&sql, now).unwrap();
    }

    // Before the refresh the snapshot path still prices from the boot
    // snapshot: everything at the cap.
    let hot = rid_of(&db_snap, 1);
    assert_eq!(db_snap.snapshot_tuple_delay("t", hot, 500.0).unwrap(), 10.0);

    // One refresh epoch.
    db_snap.refresh();

    for id in 0..50 {
        let rid_s = rid_of(&db_snap, id);
        let rid_e = rid_of(&db_exact, id);
        let got = db_snap.snapshot_tuple_delay("t", rid_s, 500.0).unwrap();
        let want = db_exact.tuple_delay("t", rid_e, 500.0).unwrap();
        assert_eq!(got, want, "tuple {id} diverged after one epoch");
    }
    // And the hot tuple actually got cheap — the assertion above is not
    // vacuous cap-vs-cap.
    assert!(
        db_snap.snapshot_tuple_delay("t", hot, 500.0).unwrap() < 0.5,
        "hot tuple should be far below the cap"
    );
}
