//! Token-bucket rate limiter with virtual-time semantics.
//!
//! Used per-identity ("a simple imposition of a limit on queries from a
//! single user") and per-subnet (aggregated limits, §2.4). Time is passed
//! in explicitly so the limiter works identically under the simulator's
//! virtual clock and under wall clocks.

/// Tolerance for floating-point refill accumulation: without it, a bucket
/// refilled in many small steps systematically lands just below whole
/// tokens and grants drift late.
const EPS: f64 = 1e-9;

/// A classic token bucket: capacity `burst`, refilled at `rate` tokens/sec.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: f64,
}

impl TokenBucket {
    /// A bucket that starts full.
    ///
    /// # Panics
    /// If `rate` or `burst` is not positive and finite.
    pub fn new(rate: f64, burst: f64) -> TokenBucket {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        assert!(burst > 0.0 && burst.is_finite(), "burst must be positive");
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last: 0.0,
        }
    }

    fn refill(&mut self, now: f64) {
        if now > self.last {
            self.tokens = (self.tokens + (now - self.last) * self.rate).min(self.burst);
            self.last = now;
        }
    }

    /// Try to take one token at time `now`. Returns true on success.
    pub fn try_take(&mut self, now: f64) -> bool {
        self.take_n(now, 1.0)
    }

    /// Try to take `n` tokens at time `now`.
    pub fn take_n(&mut self, now: f64, n: f64) -> bool {
        self.refill(now);
        if self.tokens + EPS >= n {
            self.tokens = (self.tokens - n).max(0.0);
            true
        } else {
            false
        }
    }

    /// Tokens currently available at time `now` (refills as a side effect).
    pub fn available(&mut self, now: f64) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// Earliest time at which `n` tokens will be available (≥ `now`).
    pub fn next_available(&mut self, now: f64, n: f64) -> f64 {
        self.refill(now);
        if self.tokens + EPS >= n {
            now
        } else {
            now + (n - self.tokens) / self.rate
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_throttle() {
        let mut b = TokenBucket::new(1.0, 5.0);
        for _ in 0..5 {
            assert!(b.try_take(0.0));
        }
        assert!(!b.try_take(0.0), "burst exhausted");
        assert!(!b.try_take(0.5), "half a token is not enough");
        assert!(b.try_take(1.0), "refilled after 1s");
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut b = TokenBucket::new(100.0, 3.0);
        assert!((b.available(1_000.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn steady_state_rate_enforced() {
        let mut b = TokenBucket::new(2.0, 1.0);
        let mut granted = 0;
        let mut t = 0.0;
        while t < 100.0 {
            if b.try_take(t) {
                granted += 1;
            }
            t += 0.1;
        }
        // ~2/sec over 100s, plus the initial burst.
        assert!((granted as f64 - 201.0).abs() <= 2.0, "granted {granted}");
    }

    #[test]
    fn take_n_and_next_available() {
        let mut b = TokenBucket::new(4.0, 8.0);
        assert!(b.take_n(0.0, 8.0));
        assert!(!b.take_n(0.0, 0.1));
        let t = b.next_available(0.0, 4.0);
        assert!((t - 1.0).abs() < 1e-12);
        assert!(b.take_n(t, 4.0));
    }

    #[test]
    fn time_going_backwards_is_ignored() {
        let mut b = TokenBucket::new(1.0, 1.0);
        assert!(b.try_take(10.0));
        assert!(!b.try_take(5.0), "no refill from the past");
        assert!(b.try_take(11.0));
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        TokenBucket::new(0.0, 1.0);
    }
}
