//! Account-registration throttling (paper §2.4).
//!
//! "If only one new user every `t` seconds is given an account to access
//! the database, we can place a lower bound on the time it would take an
//! adversary to accumulate enough identities for the parallel attack to
//! become feasible." Alternatively a registration *fee* can price the
//! attack out; both are modeled here.

use super::identity::{Ipv4, UserId};
use std::collections::HashMap;

/// Policy for admitting new identities.
#[derive(Debug, Clone, Copy)]
pub struct RegistrationPolicy {
    /// Minimum seconds between successive registrations (global).
    pub min_interval_secs: f64,
    /// Fee charged per registration (arbitrary currency units; 0 = free).
    pub fee: f64,
}

impl RegistrationPolicy {
    /// Rate-limit-only policy.
    pub fn interval(secs: f64) -> RegistrationPolicy {
        assert!(secs >= 0.0);
        RegistrationPolicy {
            min_interval_secs: secs,
            fee: 0.0,
        }
    }

    /// Fee-only policy.
    pub fn fee(fee: f64) -> RegistrationPolicy {
        assert!(fee >= 0.0);
        RegistrationPolicy {
            min_interval_secs: 0.0,
            fee,
        }
    }
}

/// Outcome of a registration attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistrationOutcome {
    /// Admitted with a new identity; the fee charged is echoed back.
    Admitted { user: UserId, fee_charged: f64 },
    /// Rejected: must wait until the embedded time.
    TooSoon { retry_at: f64 },
}

/// The registrar: hands out identities subject to the policy.
#[derive(Debug)]
pub struct Registrar {
    policy: RegistrationPolicy,
    next_id: u64,
    last_registration: Option<f64>,
    /// Registered users and the IP they registered from.
    users: HashMap<UserId, Ipv4>,
    fees_collected: f64,
}

impl Registrar {
    /// A registrar with the given policy.
    pub fn new(policy: RegistrationPolicy) -> Registrar {
        Registrar {
            policy,
            next_id: 1,
            last_registration: None,
            users: HashMap::new(),
            fees_collected: 0.0,
        }
    }

    /// Attempt to register a new identity from `ip` at time `now`.
    pub fn register(&mut self, ip: Ipv4, now: f64) -> RegistrationOutcome {
        if let Some(last) = self.last_registration {
            let earliest = last + self.policy.min_interval_secs;
            if now < earliest {
                return RegistrationOutcome::TooSoon { retry_at: earliest };
            }
        }
        let user = UserId(self.next_id);
        self.next_id += 1;
        self.last_registration = Some(now);
        self.users.insert(user, ip);
        self.fees_collected += self.policy.fee;
        RegistrationOutcome::Admitted {
            user,
            fee_charged: self.policy.fee,
        }
    }

    /// Whether a user id is registered.
    pub fn is_registered(&self, user: UserId) -> bool {
        self.users.contains_key(&user)
    }

    /// The IP a user registered from.
    pub fn ip_of(&self, user: UserId) -> Option<Ipv4> {
        self.users.get(&user).copied()
    }

    /// Number of registered users.
    pub fn count(&self) -> usize {
        self.users.len()
    }

    /// Total fees collected.
    pub fn fees_collected(&self) -> f64 {
        self.fees_collected
    }

    /// Lower bound on the time for an adversary starting at `now = 0` to
    /// accumulate `k` identities (the §2.4 bound: `(k-1) · t`).
    pub fn time_to_accumulate(&self, k: u64) -> f64 {
        if k <= 1 {
            0.0
        } else {
            (k - 1) as f64 * self.policy.min_interval_secs
        }
    }

    /// Cost for an adversary to accumulate `k` identities in fees.
    pub fn cost_to_accumulate(&self, k: u64) -> f64 {
        k as f64 * self.policy.fee
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip() -> Ipv4 {
        Ipv4::parse("203.0.113.9").unwrap()
    }

    #[test]
    fn admits_at_interval() {
        let mut r = Registrar::new(RegistrationPolicy::interval(60.0));
        let a = r.register(ip(), 0.0);
        assert!(matches!(a, RegistrationOutcome::Admitted { .. }));
        match r.register(ip(), 30.0) {
            RegistrationOutcome::TooSoon { retry_at } => assert_eq!(retry_at, 60.0),
            other => panic!("expected TooSoon, got {other:?}"),
        }
        assert!(matches!(
            r.register(ip(), 60.0),
            RegistrationOutcome::Admitted { .. }
        ));
        assert_eq!(r.count(), 2);
    }

    #[test]
    fn distinct_ids_handed_out() {
        let mut r = Registrar::new(RegistrationPolicy::interval(0.0));
        let mut ids = Vec::new();
        for i in 0..10 {
            match r.register(ip(), i as f64) {
                RegistrationOutcome::Admitted { user, .. } => ids.push(user),
                other => panic!("{other:?}"),
            }
        }
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 10);
        assert!(r.is_registered(ids[0]));
        assert_eq!(r.ip_of(ids[0]), Some(ip()));
    }

    #[test]
    fn fees_accumulate() {
        let mut r = Registrar::new(RegistrationPolicy::fee(25.0));
        r.register(ip(), 0.0);
        r.register(ip(), 0.0);
        assert_eq!(r.fees_collected(), 50.0);
        assert_eq!(r.cost_to_accumulate(100), 2500.0);
    }

    #[test]
    fn accumulation_bound() {
        let r = Registrar::new(RegistrationPolicy::interval(3600.0));
        assert_eq!(r.time_to_accumulate(0), 0.0);
        assert_eq!(r.time_to_accumulate(1), 0.0);
        assert_eq!(r.time_to_accumulate(11), 36_000.0);
    }

    #[test]
    fn unknown_user_not_registered() {
        let r = Registrar::new(RegistrationPolicy::interval(1.0));
        assert!(!r.is_registered(UserId(99)));
        assert_eq!(r.ip_of(UserId(99)), None);
    }
}
