//! Identities and subnet aggregation (paper §2.4).
//!
//! "An adversary may be able to control many addresses within a single
//! subnet, but any given subnet can be treated as an aggregate, with
//! responses rate-limited across all users in that subnet."

use std::fmt;

/// A registered user identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(pub u64);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "user#{}", self.0)
    }
}

/// An IPv4 address (the paper's identity substrate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv4(pub [u8; 4]);

impl Ipv4 {
    /// Parse dotted-quad notation.
    pub fn parse(s: &str) -> Option<Ipv4> {
        let mut parts = [0u8; 4];
        let mut n = 0;
        for piece in s.split('.') {
            if n == 4 {
                return None;
            }
            parts[n] = piece.parse().ok()?;
            n += 1;
        }
        (n == 4).then_some(Ipv4(parts))
    }

    /// The /24 subnet containing this address.
    pub fn subnet24(self) -> Subnet {
        Subnet {
            base: [self.0[0], self.0[1], self.0[2], 0],
            prefix: 24,
        }
    }

    /// The /16 subnet containing this address.
    pub fn subnet16(self) -> Subnet {
        Subnet {
            base: [self.0[0], self.0[1], 0, 0],
            prefix: 16,
        }
    }

    /// The subnet with an arbitrary prefix length.
    pub fn subnet(self, prefix: u8) -> Subnet {
        assert!(prefix <= 32);
        let raw = u32::from_be_bytes(self.0);
        let mask = if prefix == 0 {
            0
        } else {
            u32::MAX << (32 - prefix)
        };
        Subnet {
            base: (raw & mask).to_be_bytes(),
            prefix,
        }
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

/// A subnet: the aggregation unit for rate limiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Subnet {
    base: [u8; 4],
    prefix: u8,
}

impl Subnet {
    /// Whether `ip` belongs to this subnet.
    pub fn contains(&self, ip: Ipv4) -> bool {
        ip.subnet(self.prefix).base == self.base
    }

    /// Prefix length.
    pub fn prefix(&self) -> u8 {
        self.prefix
    }

    /// Base address (for wire encoding; round-trips through
    /// [`Ipv4::subnet`]).
    pub fn base(&self) -> [u8; 4] {
        self.base
    }
}

impl fmt::Display for Subnet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{}.{}.{}/{}",
            self.base[0], self.base[1], self.base[2], self.base[3], self.prefix
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let ip = Ipv4::parse("192.168.7.33").unwrap();
        assert_eq!(ip.to_string(), "192.168.7.33");
        assert!(Ipv4::parse("1.2.3").is_none());
        assert!(Ipv4::parse("1.2.3.4.5").is_none());
        assert!(Ipv4::parse("1.2.3.999").is_none());
        assert!(Ipv4::parse("a.b.c.d").is_none());
    }

    #[test]
    fn subnet24_groups_neighbors() {
        let a = Ipv4::parse("10.0.1.5").unwrap();
        let b = Ipv4::parse("10.0.1.200").unwrap();
        let c = Ipv4::parse("10.0.2.5").unwrap();
        assert_eq!(a.subnet24(), b.subnet24());
        assert_ne!(a.subnet24(), c.subnet24());
        assert_eq!(a.subnet24().to_string(), "10.0.1.0/24");
    }

    #[test]
    fn subnet16_wider_than_24() {
        let a = Ipv4::parse("10.0.1.5").unwrap();
        let c = Ipv4::parse("10.0.2.5").unwrap();
        assert_eq!(a.subnet16(), c.subnet16());
    }

    #[test]
    fn contains() {
        let net = Ipv4::parse("172.16.4.0").unwrap().subnet24();
        assert!(net.contains(Ipv4::parse("172.16.4.77").unwrap()));
        assert!(!net.contains(Ipv4::parse("172.16.5.77").unwrap()));
    }

    #[test]
    fn arbitrary_prefixes() {
        let ip = Ipv4::parse("255.255.255.255").unwrap();
        assert_eq!(ip.subnet(0).to_string(), "0.0.0.0/0");
        assert_eq!(ip.subnet(32).to_string(), "255.255.255.255/32");
        assert!(ip.subnet(0).contains(Ipv4::parse("1.2.3.4").unwrap()));
    }
}
