//! Mergeable admission buckets: token buckets as charge-log CRDTs.
//!
//! A cluster node admits queries against its *local* view of a budget
//! that is logically global (one bucket per identity, one per /24). To
//! make that view convergent, a bucket is represented not by its mutable
//! `(tokens, last)` state but by the **per-origin append-only logs of
//! charges** levied against it. Each node appends to its own log;
//! replication ships full logs; merging takes, per origin, the longer
//! log (a grow-only register keyed by the per-origin sequence number).
//! That merge is commutative, associative and idempotent — the classic
//! state-based CRDT shape — and tolerates loss, duplication, reordering
//! and partitions: cumulative logs resent after a heal converge in one
//! exchange.
//!
//! The admission *level* is a pure function of the merged logs: replay
//! every charge in global `(time, origin, seq)` order through the exact
//! [`TokenBucket`](super::token_bucket::TokenBucket) arithmetic
//! (refill-then-subtract, floored at zero). Because clamped subtraction
//! of positive amounts is order-independent at equal times and refill
//! composes path-independently, the replayed level equals what a single
//! centralized bucket would hold after processing the union stream —
//! which is exactly the property the per-/24 Sybil defense needs to
//! survive sharding (a crawler splitting its swarm across N nodes still
//! drains one global budget). With a single origin the replay performs
//! the same operations in the same order as a plain `TokenBucket`, so a
//! one-node deployment is bit-for-bit unchanged.
//!
//! Replay is incremental: a cached `(tokens, last)` frontier advances as
//! charges are folded in order, so steady-state local admission is O(1).
//! Only a merge that introduces charges *behind* the frontier (a delta
//! from a lagging peer) rewinds to genesis and replays the merged log —
//! rare, bounded by log length, and what keeps the result independent of
//! delta arrival order.

use std::collections::BTreeMap;

/// Same refill tolerance as the plain token bucket.
const EPS: f64 = 1e-9;

/// One admission charge, as recorded by its origin node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Charge {
    /// 1-based position in the origin's log (the merge key).
    pub seq: u64,
    /// Origin-node clock time the charge was levied.
    pub at_secs: f64,
    /// Tokens taken (1.0 per admitted query).
    pub amount: f64,
}

/// A token bucket whose state is a mergeable set of per-origin charge
/// logs. See the module docs for the convergence argument.
#[derive(Debug, Clone)]
pub struct MergeableBucket {
    rate: f64,
    burst: f64,
    origin: u16,
    /// Per-origin append-only charge logs (own origin included).
    logs: BTreeMap<u16, Vec<Charge>>,
    /// How many entries of each origin's log the cache has replayed.
    replayed: BTreeMap<u16, usize>,
    /// Cached replay state: the exact `TokenBucket` fields after folding
    /// every replayed charge in `(at, origin, seq)` order.
    tokens: f64,
    last: f64,
    /// Replay key of the last folded charge; a merge behind it forces a
    /// rewind-and-replay so arrival order cannot affect the result.
    frontier: Option<(f64, u16, u64)>,
}

fn key_cmp(a: (f64, u16, u64), b: (f64, u16, u64)) -> std::cmp::Ordering {
    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
}

impl MergeableBucket {
    /// A bucket that starts full, owned by node `origin`.
    ///
    /// # Panics
    /// If `rate` or `burst` is not positive and finite.
    pub fn new(rate: f64, burst: f64, origin: u16) -> MergeableBucket {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        assert!(burst > 0.0 && burst.is_finite(), "burst must be positive");
        MergeableBucket {
            rate,
            burst,
            origin,
            logs: BTreeMap::new(),
            replayed: BTreeMap::new(),
            tokens: burst,
            last: 0.0,
            frontier: None,
        }
    }

    /// This node's origin id.
    pub fn origin(&self) -> u16 {
        self.origin
    }

    /// This node's own charge log (what replication ships to peers).
    pub fn own_log(&self) -> &[Charge] {
        self.logs
            .get(&self.origin)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total charges known across all origins.
    pub fn charges_known(&self) -> usize {
        self.logs.values().map(Vec::len).sum()
    }

    /// Record a local charge at `now` (appended to the own-origin log;
    /// folded into the cached level on the next read).
    pub fn charge(&mut self, now: f64, amount: f64) {
        let log = self.logs.entry(self.origin).or_default();
        let seq = log.len() as u64 + 1;
        log.push(Charge {
            seq,
            at_secs: now,
            amount,
        });
    }

    /// Fold another origin's log in. Entries already known (by `seq`) are
    /// skipped, so merging is idempotent; since each origin's log is
    /// cumulative and append-only, merge order cannot matter.
    pub fn merge(&mut self, origin: u16, entries: &[Charge]) {
        let log = self.logs.entry(origin).or_default();
        for c in entries {
            if c.seq == log.len() as u64 + 1 {
                log.push(*c);
            }
        }
    }

    /// Tokens available at `now` under the merged charge history.
    pub fn available(&mut self, now: f64) -> f64 {
        self.sync();
        self.peek(now)
    }

    /// Earliest time at which `n` tokens will be available (≥ `now`).
    pub fn next_available(&mut self, now: f64, n: f64) -> f64 {
        self.sync();
        let t = self.peek(now);
        if t + EPS >= n {
            now
        } else {
            now + (n - t) / self.rate
        }
    }

    /// Refill-to-`now` without disturbing the replay frontier: the cache
    /// must stay pinned at the last *charge* time so a late remote charge
    /// between `last` and `now` still folds in at its own instant.
    fn peek(&self, now: f64) -> f64 {
        if now > self.last {
            (self.tokens + (now - self.last) * self.rate).min(self.burst)
        } else {
            self.tokens
        }
    }

    /// Advance the cached replay over every un-folded charge, rewinding
    /// to genesis first if any of them lands behind the frontier.
    fn sync(&mut self) {
        let mut pending = self.pending();
        if pending.is_empty() {
            return;
        }
        if let Some(f) = self.frontier {
            let first = (pending[0].0, pending[0].1, pending[0].2);
            if key_cmp(first, f) == std::cmp::Ordering::Less {
                // A merge introduced history behind the frontier: replay
                // the whole merged log so arrival order cannot matter.
                self.tokens = self.burst;
                self.last = 0.0;
                self.frontier = None;
                self.replayed.clear();
                pending = self.pending();
            }
        }
        for &(at, origin, seq, amount) in &pending {
            if at > self.last {
                self.tokens = (self.tokens + (at - self.last) * self.rate).min(self.burst);
                self.last = at;
            }
            self.tokens = (self.tokens - amount).max(0.0);
            self.frontier = Some((at, origin, seq));
            *self.replayed.entry(origin).or_insert(0) += 1;
        }
    }

    /// Un-replayed charges in `(at, origin, seq)` replay order.
    fn pending(&self) -> Vec<(f64, u16, u64, f64)> {
        let mut out = Vec::new();
        for (&origin, log) in &self.logs {
            let done = self.replayed.get(&origin).copied().unwrap_or(0);
            for c in &log[done..] {
                out.push((c.at_secs, origin, c.seq, c.amount));
            }
        }
        out.sort_by(|a, b| key_cmp((a.0, a.1, a.2), (b.0, b.1, b.2)));
        out
    }
}

/// One gatekeeper's locally-originated charges, for replication: the
/// full own-origin log of every bucket it has charged. Cumulative, so a
/// delta lost to the network is subsumed by the next one.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GateDelta {
    /// The exporting node.
    pub origin: u16,
    /// `(user id, own-origin charge log)`, sorted by user id.
    pub users: Vec<(u64, Vec<Charge>)>,
    /// Per-subnet own-origin charge logs, sorted by subnet key.
    pub subnets: Vec<SubnetCharges>,
}

/// Charges against one subnet's aggregate bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct SubnetCharges {
    /// Subnet base address.
    pub base: [u8; 4],
    /// Prefix length.
    pub prefix: u8,
    /// The exporting node's own charge log for this subnet.
    pub log: Vec<Charge>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gatekeeper::token_bucket::TokenBucket;

    /// Tiny deterministic xorshift for property-style tests.
    struct X(u64);
    impl X {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
        fn f64(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// A random per-origin log with strictly increasing times.
    fn random_log(rng: &mut X, len: usize, t0: f64) -> Vec<Charge> {
        let mut t = t0;
        (0..len)
            .map(|i| {
                t += rng.f64() * 3.0;
                Charge {
                    seq: i as u64 + 1,
                    at_secs: t,
                    amount: 0.5 + rng.f64() * 2.0,
                }
            })
            .collect()
    }

    /// Observable state: merged log shape plus the level probed at a few
    /// times after every known charge.
    fn observe(b: &mut MergeableBucket) -> Vec<(u16, usize)> {
        let shape: Vec<(u16, usize)> = b.logs.iter().map(|(&o, l)| (o, l.len())).collect();
        shape
    }

    fn levels(b: &mut MergeableBucket, probes: &[f64]) -> Vec<f64> {
        probes.iter().map(|&t| b.available(t)).collect()
    }

    #[test]
    fn single_origin_matches_token_bucket_exactly() {
        let mut rng = X(0x5eed);
        let mut plain = TokenBucket::new(1.5, 7.0);
        let mut crdt = MergeableBucket::new(1.5, 7.0, 0);
        let mut t = 0.0;
        for _ in 0..500 {
            t += rng.f64() * 2.0;
            // Same decision procedure the gatekeeper uses: check, then
            // charge on success.
            let p_avail = plain.available(t);
            let c_avail = crdt.available(t);
            assert_eq!(p_avail.to_bits(), c_avail.to_bits(), "at t={t}");
            if c_avail >= 1.0 - 1e-9 {
                plain.try_take(t);
                crdt.charge(t, 1.0);
            }
            let hint_p = plain.next_available(t, 1.0);
            let hint_c = crdt.next_available(t, 1.0);
            assert!((hint_p - hint_c).abs() < 1e-9, "{hint_p} vs {hint_c}");
        }
    }

    #[test]
    fn merge_is_idempotent() {
        let mut rng = X(7);
        let log = random_log(&mut rng, 40, 0.0);
        let mut b = MergeableBucket::new(1.0, 5.0, 0);
        b.merge(3, &log);
        let before_shape = observe(&mut b);
        let before = levels(&mut b, &[10.0, 50.0, 200.0]);
        b.merge(3, &log);
        b.merge(3, &log[..20]);
        assert_eq!(observe(&mut b), before_shape);
        assert_eq!(levels(&mut b, &[10.0, 50.0, 200.0]), before);
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let mut rng = X(99);
        let a = random_log(&mut rng, 30, 0.0);
        let b = random_log(&mut rng, 25, 0.5);
        let c = random_log(&mut rng, 35, 1.0);
        let probes = [5.0, 40.0, 120.0];
        let orders: [[(u16, &[Charge]); 3]; 3] = [
            [(1, &a), (2, &b), (3, &c)],
            [(3, &c), (1, &a), (2, &b)],
            [(2, &b), (3, &c), (1, &a)],
        ];
        let mut results = Vec::new();
        for order in orders {
            let mut bkt = MergeableBucket::new(2.0, 6.0, 0);
            for (origin, log) in order {
                bkt.merge(origin, log);
                // Interleave reads so the cache is exercised mid-merge:
                // arrival order must still not matter.
                let _ = bkt.available(60.0);
            }
            results.push((observe(&mut bkt), levels(&mut bkt, &probes)));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn partial_then_full_log_converges() {
        // Loss tolerance: a peer that missed intermediate deltas catches
        // up entirely from the latest cumulative log.
        let mut rng = X(11);
        let log = random_log(&mut rng, 50, 0.0);
        let mut lossy = MergeableBucket::new(1.0, 4.0, 0);
        lossy.merge(9, &log[..10]); // first delta arrives
        let _ = lossy.available(30.0); // ...and is read
        lossy.merge(9, &log); // later cumulative delta heals the gap
        let mut direct = MergeableBucket::new(1.0, 4.0, 0);
        direct.merge(9, &log);
        assert_eq!(
            levels(&mut lossy, &[100.0, 300.0]),
            levels(&mut direct, &[100.0, 300.0])
        );
    }

    #[test]
    fn merged_level_equals_union_stream_on_one_bucket() {
        // Two origins charge independently; the merged level must equal a
        // single bucket that saw the interleaved union stream.
        let mut rng = X(1234);
        let a = random_log(&mut rng, 60, 0.0);
        let b = random_log(&mut rng, 60, 0.1);
        let mut merged = MergeableBucket::new(1.0, 10.0, 0);
        merged.merge(1, &a);
        merged.merge(2, &b);
        // The union stream, in replay order.
        let mut union: Vec<(f64, f64)> = a
            .iter()
            .map(|c| (c.at_secs, c.amount))
            .chain(b.iter().map(|c| (c.at_secs, c.amount)))
            .collect();
        union.sort_by(|x, y| x.0.total_cmp(&y.0));
        let mut single = TokenBucket::new(1.0, 10.0);
        let mut last_at = 0.0;
        for (at, amount) in union {
            let have = single.available(at); // refill
            single.take_n(at, amount.min(have));
            last_at = at;
        }
        // Bit-exact agreement at the final charge instant (identical
        // refill-subtract sequences), and after a full refill.
        assert_eq!(
            merged.available(last_at).to_bits(),
            single.available(last_at).to_bits()
        );
        let t = last_at + 500.0;
        assert_eq!(merged.available(t), single.available(t));
    }

    #[test]
    fn rewind_preserves_convergence_under_late_history() {
        // A charge far in the past arrives after the cache advanced: the
        // bucket must rewind and end bit-identical to the in-order fold.
        let mut late = MergeableBucket::new(1.0, 3.0, 0);
        late.charge(100.0, 1.0);
        let _ = late.available(100.0);
        late.merge(
            5,
            &[Charge {
                seq: 1,
                at_secs: 1.0,
                amount: 2.0,
            }],
        );
        let mut ordered = MergeableBucket::new(1.0, 3.0, 0);
        ordered.merge(
            5,
            &[Charge {
                seq: 1,
                at_secs: 1.0,
                amount: 2.0,
            }],
        );
        ordered.charge(100.0, 1.0);
        assert_eq!(
            late.available(101.0).to_bits(),
            ordered.available(101.0).to_bits()
        );
    }
}
