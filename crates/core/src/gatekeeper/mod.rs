//! The gatekeeper: identity admission and rate limiting (paper §2.4).
//!
//! Delay protects against a *single* patient adversary; the gatekeeper
//! closes the parallelism loopholes the paper analyzes:
//!
//! * **Sybil attacks** — registration of new identities is rate-limited
//!   (or fee-gated) by [`Registrar`], bounding how fast an adversary can
//!   amass the `k` identities a parallel extraction needs.
//! * **Subnet farms** — per-/24 aggregate token buckets mean many
//!   identities behind one subnet share one budget.
//! * **Storefronts** — per-identity query budgets plus a volume anomaly
//!   detector flag identities whose traffic dwarfs a normal user's.

pub mod crdt;
pub mod identity;
pub mod registration;
pub mod token_bucket;

pub use crdt::{Charge, GateDelta, MergeableBucket, SubnetCharges};
pub use identity::{Ipv4, Subnet, UserId};
pub use registration::{Registrar, RegistrationOutcome, RegistrationPolicy};
pub use token_bucket::TokenBucket;

use std::collections::HashMap;

/// Gatekeeper configuration.
#[derive(Debug, Clone, Copy)]
pub struct GatekeeperConfig {
    /// Per-identity sustained query rate (queries/sec).
    pub per_user_rate: f64,
    /// Per-identity burst size.
    pub per_user_burst: f64,
    /// Per-/24-subnet sustained rate (aggregate over all identities).
    pub per_subnet_rate: f64,
    /// Per-subnet burst size.
    pub per_subnet_burst: f64,
    /// Registration policy for new identities.
    pub registration: RegistrationPolicy,
    /// Queries per identity above which it is flagged as a possible
    /// storefront (0 disables flagging).
    pub storefront_query_threshold: u64,
}

impl Default for GatekeeperConfig {
    fn default() -> Self {
        GatekeeperConfig {
            per_user_rate: 1.0,
            per_user_burst: 10.0,
            per_subnet_rate: 5.0,
            per_subnet_burst: 50.0,
            registration: RegistrationPolicy::interval(60.0),
            storefront_query_threshold: 100_000,
        }
    }
}

/// Why a query was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefusalReason {
    /// The identity is not registered.
    Unregistered,
    /// The identity exceeded its own rate budget.
    UserRateExceeded,
    /// The identity's subnet exceeded its aggregate budget.
    SubnetRateExceeded,
}

/// Decision on one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The query may proceed.
    Granted,
    /// The query is refused.
    Refused(RefusalReason),
}

/// Per-identity accounting.
#[derive(Debug)]
struct UserState {
    bucket: MergeableBucket,
    queries: u64,
}

/// The gatekeeper itself.
///
/// Budgets are [`MergeableBucket`] charge-log CRDTs: a standalone
/// deployment never notices (single-origin replay is the plain token
/// bucket), while cluster nodes exchange [`GateDelta`]s so per-identity
/// and per-/24 throttling holds against the *global* traffic an identity
/// spreads across shards.
#[derive(Debug)]
pub struct Gatekeeper {
    config: GatekeeperConfig,
    registrar: Registrar,
    users: HashMap<UserId, UserState>,
    subnets: HashMap<Subnet, MergeableBucket>,
    /// This node's origin id for charge logs (0 for standalone).
    origin: u16,
}

impl Gatekeeper {
    /// A gatekeeper with the given configuration.
    pub fn new(config: GatekeeperConfig) -> Gatekeeper {
        Gatekeeper {
            config,
            registrar: Registrar::new(config.registration),
            users: HashMap::new(),
            subnets: HashMap::new(),
            origin: 0,
        }
    }

    /// Set this node's origin id for charge logs. Call before any
    /// traffic: buckets tag their own charges with the origin current at
    /// creation time.
    pub fn set_origin(&mut self, origin: u16) {
        self.origin = origin;
    }

    /// This node's origin id.
    pub fn origin(&self) -> u16 {
        self.origin
    }

    /// Register a new identity from `ip` at `now`.
    pub fn register(&mut self, ip: Ipv4, now: f64) -> RegistrationOutcome {
        let outcome = self.registrar.register(ip, now);
        if let RegistrationOutcome::Admitted { user, .. } = outcome {
            let bucket = MergeableBucket::new(
                self.config.per_user_rate,
                self.config.per_user_burst,
                self.origin,
            );
            self.users.insert(user, UserState { bucket, queries: 0 });
        }
        outcome
    }

    /// Decide whether `user`'s query at `now` may proceed, charging the
    /// relevant budgets on success.
    pub fn admit(&mut self, user: UserId, now: f64) -> Admission {
        let Some(ip) = self.registrar.ip_of(user) else {
            return Admission::Refused(RefusalReason::Unregistered);
        };
        let subnet = ip.subnet24();
        // Check both budgets before charging either, so a refusal leaves
        // no residue.
        let user_ok = {
            let state = self
                .users
                .get_mut(&user)
                .expect("registered user has state");
            state.bucket.available(now) >= 1.0 - 1e-9
        };
        if !user_ok {
            return Admission::Refused(RefusalReason::UserRateExceeded);
        }
        let origin = self.origin;
        let subnet_bucket = self.subnets.entry(subnet).or_insert_with(|| {
            MergeableBucket::new(
                self.config.per_subnet_rate,
                self.config.per_subnet_burst,
                origin,
            )
        });
        if subnet_bucket.available(now) < 1.0 - 1e-9 {
            return Admission::Refused(RefusalReason::SubnetRateExceeded);
        }
        subnet_bucket.charge(now, 1.0);
        let state = self
            .users
            .get_mut(&user)
            .expect("registered user has state");
        state.bucket.charge(now, 1.0);
        state.queries += 1;
        Admission::Granted
    }

    /// Earliest time at which a query from `user` could be admitted —
    /// the exact retry hint for a [`RefusalReason::UserRateExceeded`] or
    /// [`RefusalReason::SubnetRateExceeded`] refusal. Returns `None` for
    /// unregistered identities (no amount of waiting helps).
    ///
    /// Both the per-user and per-subnet buckets refill monotonically, so
    /// the earliest instant both hold a token is the max of their
    /// individual refill times; a client that retries at exactly this
    /// time is admitted (absent interleaved traffic draining the subnet
    /// budget), and one that retries any earlier is refused again.
    pub fn retry_at(&mut self, user: UserId, now: f64) -> Option<f64> {
        let ip = self.registrar.ip_of(user)?;
        let subnet = ip.subnet24();
        let user_at = self
            .users
            .get_mut(&user)
            .expect("registered user has state")
            .bucket
            .next_available(now, 1.0);
        let origin = self.origin;
        let subnet_at = self
            .subnets
            .entry(subnet)
            .or_insert_with(|| {
                MergeableBucket::new(
                    self.config.per_subnet_rate,
                    self.config.per_subnet_burst,
                    origin,
                )
            })
            .next_available(now, 1.0);
        Some(user_at.max(subnet_at))
    }

    /// Number of queries an identity has issued.
    pub fn query_count(&self, user: UserId) -> u64 {
        self.users.get(&user).map(|s| s.queries).unwrap_or(0)
    }

    /// Identities whose query volume exceeds the storefront threshold —
    /// candidates for the §2.4 storefront defense (manual review, per-user
    /// limits, or termination).
    pub fn storefront_suspects(&self) -> Vec<UserId> {
        let threshold = self.config.storefront_query_threshold;
        if threshold == 0 {
            return Vec::new();
        }
        let mut v: Vec<UserId> = self
            .users
            .iter()
            .filter(|(_, s)| s.queries > threshold)
            .map(|(&u, _)| u)
            .collect();
        v.sort();
        v
    }

    /// The registrar (for attack-economics queries).
    pub fn registrar(&self) -> &Registrar {
        &self.registrar
    }

    /// Export this node's locally-originated charges — the full
    /// own-origin log of every bucket — for replication to peers.
    /// Cumulative and deterministic (sorted), so a lost delta is subsumed
    /// by the next one.
    pub fn export_gate_delta(&self) -> GateDelta {
        let mut users: Vec<(u64, Vec<Charge>)> = self
            .users
            .iter()
            .filter(|(_, s)| !s.bucket.own_log().is_empty())
            .map(|(u, s)| (u.0, s.bucket.own_log().to_vec()))
            .collect();
        users.sort_by_key(|(u, _)| *u);
        let mut subnets: Vec<SubnetCharges> = self
            .subnets
            .iter()
            .filter(|(_, b)| !b.own_log().is_empty())
            .map(|(s, b)| SubnetCharges {
                base: s.base(),
                prefix: s.prefix(),
                log: b.own_log().to_vec(),
            })
            .collect();
        subnets.sort_by_key(|s| (s.base, s.prefix));
        GateDelta {
            origin: self.origin,
            users,
            subnets,
        }
    }

    /// Fold a peer's charges into the local buckets. Idempotent and
    /// order-insensitive (CRDT merge per bucket). Buckets for identities
    /// or subnets this node has not seen locally are created on the spot:
    /// the budget must bind even before any local traffic.
    pub fn merge_gate_delta(&mut self, delta: &GateDelta) {
        if delta.origin == self.origin {
            return; // own charges echoed back: already in the logs
        }
        for (user, log) in &delta.users {
            let origin = self.origin;
            let state = self
                .users
                .entry(UserId(*user))
                .or_insert_with(|| UserState {
                    bucket: MergeableBucket::new(
                        self.config.per_user_rate,
                        self.config.per_user_burst,
                        origin,
                    ),
                    queries: 0,
                });
            state.bucket.merge(delta.origin, log);
        }
        for sc in &delta.subnets {
            let subnet = Ipv4(sc.base).subnet(sc.prefix);
            let origin = self.origin;
            let bucket = self.subnets.entry(subnet).or_insert_with(|| {
                MergeableBucket::new(
                    self.config.per_subnet_rate,
                    self.config.per_subnet_burst,
                    origin,
                )
            });
            bucket.merge(delta.origin, &sc.log);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keeper() -> Gatekeeper {
        Gatekeeper::new(GatekeeperConfig {
            per_user_rate: 1.0,
            per_user_burst: 2.0,
            per_subnet_rate: 2.0,
            per_subnet_burst: 3.0,
            registration: RegistrationPolicy::interval(10.0),
            storefront_query_threshold: 5,
        })
    }

    fn register(k: &mut Gatekeeper, ip: &str, now: f64) -> UserId {
        match k.register(Ipv4::parse(ip).unwrap(), now) {
            RegistrationOutcome::Admitted { user, .. } => user,
            other => panic!("registration failed: {other:?}"),
        }
    }

    #[test]
    fn unregistered_refused() {
        let mut k = keeper();
        assert_eq!(
            k.admit(UserId(42), 0.0),
            Admission::Refused(RefusalReason::Unregistered)
        );
    }

    #[test]
    fn per_user_budget_enforced() {
        let mut k = keeper();
        let u = register(&mut k, "10.0.0.1", 0.0);
        assert_eq!(k.admit(u, 0.0), Admission::Granted);
        assert_eq!(k.admit(u, 0.0), Admission::Granted);
        assert_eq!(
            k.admit(u, 0.0),
            Admission::Refused(RefusalReason::UserRateExceeded)
        );
        // Refills over time.
        assert_eq!(k.admit(u, 1.0), Admission::Granted);
        assert_eq!(k.query_count(u), 3);
    }

    #[test]
    fn subnet_budget_shared_across_sybils() {
        let mut k = keeper();
        // Three identities in the same /24 (registered 10s apart).
        let a = register(&mut k, "10.0.0.1", 0.0);
        let b = register(&mut k, "10.0.0.2", 10.0);
        let c = register(&mut k, "10.0.0.3", 20.0);
        // At t=100 everyone is full, but the subnet bucket holds only 3.
        assert_eq!(k.admit(a, 100.0), Admission::Granted);
        assert_eq!(k.admit(b, 100.0), Admission::Granted);
        assert_eq!(k.admit(c, 100.0), Admission::Granted);
        let d = k.admit(a, 100.0);
        assert_eq!(d, Admission::Refused(RefusalReason::SubnetRateExceeded));
        // A user in a different subnet is unaffected.
        let z = register(&mut k, "10.9.0.1", 30.0);
        assert_eq!(k.admit(z, 100.0), Admission::Granted);
    }

    #[test]
    fn refusal_charges_no_budget() {
        let mut k = keeper();
        let a = register(&mut k, "10.0.0.1", 0.0);
        let b = register(&mut k, "10.0.0.2", 10.0);
        // Exhaust a's personal budget.
        assert_eq!(k.admit(a, 20.0), Admission::Granted);
        assert_eq!(k.admit(a, 20.0), Admission::Granted);
        assert_eq!(
            k.admit(a, 20.0),
            Admission::Refused(RefusalReason::UserRateExceeded)
        );
        // b still has subnet tokens available: a's refusals cost nothing.
        assert_eq!(k.admit(b, 20.0), Admission::Granted);
    }

    #[test]
    fn retry_hint_is_exact() {
        let mut k = keeper();
        let u = register(&mut k, "10.0.0.1", 0.0);
        // Drain the personal burst (2 tokens at rate 1/s).
        assert_eq!(k.admit(u, 0.0), Admission::Granted);
        assert_eq!(k.admit(u, 0.0), Admission::Granted);
        assert_eq!(
            k.admit(u, 0.0),
            Admission::Refused(RefusalReason::UserRateExceeded)
        );
        let hint = k.retry_at(u, 0.0).unwrap();
        assert!((hint - 1.0).abs() < 1e-9, "hint {hint}");
        // Slightly early: refused. Exactly on the hint: admitted.
        assert_eq!(
            k.admit(u, hint - 1e-3),
            Admission::Refused(RefusalReason::UserRateExceeded)
        );
        assert_eq!(k.admit(u, hint), Admission::Granted);
    }

    #[test]
    fn retry_hint_covers_subnet_budget() {
        let mut k = keeper();
        let a = register(&mut k, "10.0.0.1", 0.0);
        let b = register(&mut k, "10.0.0.2", 10.0);
        let c = register(&mut k, "10.0.0.3", 20.0);
        // Drain the subnet burst (3 tokens at rate 2/s) at t=100.
        assert_eq!(k.admit(a, 100.0), Admission::Granted);
        assert_eq!(k.admit(b, 100.0), Admission::Granted);
        assert_eq!(k.admit(c, 100.0), Admission::Granted);
        assert_eq!(
            k.admit(b, 100.0),
            Admission::Refused(RefusalReason::SubnetRateExceeded)
        );
        // b still has personal tokens; the binding constraint is the
        // subnet bucket's 0.5 s refill.
        let hint = k.retry_at(b, 100.0).unwrap();
        assert!((hint - 100.5).abs() < 1e-9, "hint {hint}");
        assert_eq!(k.admit(b, hint), Admission::Granted);
        // Unregistered identities get no hint.
        assert_eq!(k.retry_at(UserId(999), 0.0), None);
    }

    #[test]
    fn registration_throttled() {
        let mut k = keeper();
        register(&mut k, "10.0.0.1", 0.0);
        assert!(matches!(
            k.register(Ipv4::parse("10.0.0.2").unwrap(), 5.0),
            RegistrationOutcome::TooSoon { .. }
        ));
    }

    /// Replicated throttling: two nodes each see part of a subnet's
    /// traffic; after exchanging gate deltas, each node's admission state
    /// must equal a single gatekeeper that saw the union stream.
    #[test]
    fn merged_subnet_throttling_equals_single_node_on_union_stream() {
        let config = GatekeeperConfig {
            per_user_rate: 100.0, // user budget never binds here
            per_user_burst: 100.0,
            per_subnet_rate: 1.0,
            per_subnet_burst: 4.0,
            registration: RegistrationPolicy::interval(0.0),
            storefront_query_threshold: 0,
        };
        let mut node_a = Gatekeeper::new(config);
        node_a.set_origin(1);
        let mut node_b = Gatekeeper::new(config);
        node_b.set_origin(2);
        let mut single = Gatekeeper::new(config);
        // Same registration stream everywhere (the router broadcasts
        // registrations), so user ids agree.
        let sybils: Vec<UserId> = (1..=4)
            .map(|i| {
                let ip = Ipv4::parse(&format!("10.0.0.{i}")).unwrap();
                let u = match node_a.register(ip, 0.0) {
                    RegistrationOutcome::Admitted { user, .. } => user,
                    other => panic!("{other:?}"),
                };
                assert!(matches!(
                    node_b.register(ip, 0.0),
                    RegistrationOutcome::Admitted { .. }
                ));
                assert!(matches!(
                    single.register(ip, 0.0),
                    RegistrationOutcome::Admitted { .. }
                ));
                u
            })
            .collect();
        // The swarm splits across the two nodes: sybil i queries node
        // (i % 2) at time i. Every query also goes to the single-node
        // reference. Nodes sync after each admission.
        let mut granted_split = 0;
        let mut granted_single = 0;
        for q in 0..12usize {
            let u = sybils[q % sybils.len()];
            let t = 10.0 + q as f64 * 0.01; // bursty: budget must bind
            let node = if q % 2 == 0 { &mut node_a } else { &mut node_b };
            let split = node.admit(u, t);
            let unified = single.admit(u, t);
            assert_eq!(split, unified, "query {q} at t={t}");
            if split == Admission::Granted {
                granted_split += 1;
            }
            if unified == Admission::Granted {
                granted_single += 1;
            }
            // Delta sync both ways after every query (tightest lag).
            let da = node_a.export_gate_delta();
            let db = node_b.export_gate_delta();
            node_b.merge_gate_delta(&da);
            node_a.merge_gate_delta(&db);
        }
        assert_eq!(granted_split, granted_single);
        // The subnet burst (4) bounds the grants; without replication the
        // split swarm would have gotten ~2x.
        assert!(
            granted_split <= 5,
            "subnet budget leaked: {granted_split} grants"
        );
        // Retry hints agree with the union view too.
        let ha = node_a.retry_at(sybils[0], 11.0).unwrap();
        let hs = single.retry_at(sybils[0], 11.0).unwrap();
        assert!((ha - hs).abs() < 1e-9, "{ha} vs {hs}");
    }

    /// Merging the same delta repeatedly, or in either order, leaves the
    /// gatekeeper in the same observable state.
    #[test]
    fn gate_delta_merge_idempotent_and_commutative() {
        let config = GatekeeperConfig {
            registration: RegistrationPolicy::interval(0.0),
            ..GatekeeperConfig::default()
        };
        let mut src_a = Gatekeeper::new(config);
        src_a.set_origin(1);
        let mut src_b = Gatekeeper::new(config);
        src_b.set_origin(2);
        let ua = register(&mut src_a, "10.0.0.1", 0.0);
        assert_eq!(register(&mut src_b, "10.0.0.1", 0.0), ua);
        for t in 0..5 {
            src_a.admit(ua, t as f64);
            src_b.admit(ua, 0.5 + t as f64);
        }
        let da = src_a.export_gate_delta();
        let db = src_b.export_gate_delta();
        let probe = |k: &mut Gatekeeper| {
            let r = k.retry_at(ua, 10.0).unwrap();
            let q = k.query_count(ua);
            (r, q)
        };
        let mut ab = Gatekeeper::new(config);
        ab.set_origin(9);
        assert_eq!(register(&mut ab, "10.0.0.1", 0.0), ua);
        ab.merge_gate_delta(&da);
        ab.merge_gate_delta(&db);
        let mut ba = Gatekeeper::new(config);
        ba.set_origin(9);
        assert_eq!(register(&mut ba, "10.0.0.1", 0.0), ua);
        ba.merge_gate_delta(&db);
        ba.merge_gate_delta(&da);
        ba.merge_gate_delta(&da); // idempotent re-merge
        ba.merge_gate_delta(&db);
        assert_eq!(probe(&mut ab), probe(&mut ba));
    }

    #[test]
    fn merge_creates_buckets_for_unseen_identities() {
        // A node that never saw a user locally still enforces the global
        // budget once a peer's charges arrive.
        let config = GatekeeperConfig {
            per_user_rate: 1.0,
            per_user_burst: 2.0,
            per_subnet_rate: 100.0,
            per_subnet_burst: 100.0,
            registration: RegistrationPolicy::interval(0.0),
            storefront_query_threshold: 0,
        };
        let mut remote = Gatekeeper::new(config);
        remote.set_origin(1);
        let u = register(&mut remote, "10.0.0.1", 0.0);
        assert_eq!(remote.admit(u, 100.0), Admission::Granted);
        assert_eq!(remote.admit(u, 100.0), Admission::Granted);
        let mut local = Gatekeeper::new(config);
        local.set_origin(2);
        assert_eq!(register(&mut local, "10.0.0.1", 0.0), u);
        local.merge_gate_delta(&remote.export_gate_delta());
        // The user's burst is spent cluster-wide.
        assert_eq!(
            local.admit(u, 100.0),
            Admission::Refused(RefusalReason::UserRateExceeded)
        );
        assert_eq!(local.admit(u, 101.0), Admission::Granted);
    }

    #[test]
    fn storefront_suspects_flagged() {
        let mut k = keeper();
        let u = register(&mut k, "10.0.0.1", 0.0);
        let mut t = 0.0;
        for _ in 0..10 {
            assert_eq!(k.admit(u, t), Admission::Granted);
            t += 2.0; // slow enough to never hit rate limits
        }
        assert_eq!(k.storefront_suspects(), vec![u]);
        let quiet = register(&mut k, "10.1.0.1", 10.0);
        k.admit(quiet, 1000.0);
        assert_eq!(k.storefront_suspects(), vec![u]);
    }
}
