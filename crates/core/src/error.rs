//! Errors for the guard layer.

use delayguard_query::QueryError;
use delayguard_storage::StorageError;
use std::fmt;

/// Errors produced by the guarded database and gatekeeper.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardError {
    /// The underlying query engine failed.
    Query(QueryError),
    /// The gatekeeper refused the request (rate limit, unregistered user).
    Refused(String),
    /// Invalid guard configuration.
    Config(String),
}

impl fmt::Display for GuardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardError::Query(e) => write!(f, "query error: {e}"),
            GuardError::Refused(m) => write!(f, "request refused: {m}"),
            GuardError::Config(m) => write!(f, "configuration error: {m}"),
        }
    }
}

impl std::error::Error for GuardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GuardError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for GuardError {
    fn from(e: QueryError) -> Self {
        GuardError::Query(e)
    }
}

impl From<StorageError> for GuardError {
    fn from(e: StorageError) -> Self {
        GuardError::Query(QueryError::Storage(e))
    }
}

/// Result alias for guard operations.
pub type Result<T> = std::result::Result<T, GuardError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: GuardError = StorageError::TableNotFound("t".into()).into();
        assert!(e.to_string().contains("query error"));
        let e = GuardError::Refused("too fast".into());
        assert!(e.to_string().contains("refused"));
        assert!(GuardError::Config("bad".into())
            .to_string()
            .contains("config"));
    }
}
