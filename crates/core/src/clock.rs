//! The clock facade: one time source for the whole enforcement path.
//!
//! The paper's delays are *durations*; nothing on the deterministic path
//! needs to know what absolute instant it is, only how many nanoseconds
//! have elapsed since some epoch. Every component that enforces delay —
//! [`crate::GuardedDatabase`]'s deadline arithmetic, the server's timer
//! wheel and scheduler, the gatekeeper's registration clock — reads time
//! through a [`Clock`] so the same code runs against the wall
//! ([`RealClock`]) in deployments and against a test-controlled
//! [`ManualClock`] in the deterministic simulation harness
//! (`delayguard-testkit`). The repo lint (`cargo run -p xtask -- lint`)
//! bans raw `Instant::now()` on the deterministic path; the two vetted
//! exceptions live in this file, inside [`RealClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Nanoseconds per second, as f64 (for second↔nano conversions).
const NANOS_PER_SEC: f64 = 1e9;

/// Convert clock nanoseconds to seconds.
pub fn nanos_to_secs(nanos: u64) -> f64 {
    nanos as f64 / NANOS_PER_SEC
}

/// Convert non-negative seconds to clock nanoseconds (saturating).
pub fn secs_to_nanos(secs: f64) -> u64 {
    if secs <= 0.0 {
        return 0;
    }
    let n = secs * NANOS_PER_SEC;
    if n >= u64::MAX as f64 {
        u64::MAX
    } else {
        n as u64
    }
}

/// A monotone time source measured in nanoseconds since the clock's own
/// epoch (its moment of construction, for the real clock; tick zero, for
/// a manual clock).
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds elapsed since the clock's epoch.
    fn now_nanos(&self) -> u64;

    /// Block the calling thread until `deadline` nanos have elapsed.
    ///
    /// The real clock sleeps; a [`ManualClock`] jumps forward instead
    /// (there is no other thread to advance it while this one blocks).
    fn sleep_until_nanos(&self, deadline: u64);

    /// Convenience: seconds elapsed since the clock's epoch.
    fn now_secs(&self) -> f64 {
        nanos_to_secs(self.now_nanos())
    }
}

/// The wall clock: nanoseconds since construction, backed by
/// [`std::time::Instant`].
#[derive(Debug)]
pub struct RealClock {
    epoch: Instant,
}

impl RealClock {
    /// A real clock whose epoch is "now".
    pub fn new() -> RealClock {
        RealClock {
            epoch: Instant::now(),
        }
    }

    /// A shared handle to a fresh real clock.
    pub fn shared() -> Arc<dyn Clock> {
        Arc::new(RealClock::new())
    }
}

impl Default for RealClock {
    fn default() -> Self {
        RealClock::new()
    }
}

impl Clock for RealClock {
    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn sleep_until_nanos(&self, deadline: u64) {
        let now = self.now_nanos();
        if deadline > now {
            std::thread::sleep(Duration::from_nanos(deadline - now));
        }
    }
}

/// A test-controlled clock: time moves only when the owner advances it.
///
/// Shared by handle (`Arc<ManualClock>`): the simulation driver advances
/// it, and every component threaded with the [`Clock`] trait observes the
/// jump at its next read. Monotonicity is enforced with a CAS loop so
/// concurrent advances can never move time backwards.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A manual clock at time zero.
    pub fn new() -> ManualClock {
        ManualClock {
            nanos: AtomicU64::new(0),
        }
    }

    /// A shared handle to a fresh manual clock.
    pub fn shared() -> Arc<ManualClock> {
        Arc::new(ManualClock::new())
    }

    /// Jump to an absolute time. Earlier times are ignored (time never
    /// moves backwards).
    pub fn advance_to_nanos(&self, nanos: u64) {
        self.nanos.fetch_max(nanos, Ordering::SeqCst);
    }

    /// Advance by a relative number of nanoseconds.
    pub fn advance_nanos(&self, dt: u64) {
        self.nanos.fetch_add(dt, Ordering::SeqCst);
    }

    /// Jump to an absolute time given in seconds.
    pub fn advance_to_secs(&self, secs: f64) {
        self.advance_to_nanos(secs_to_nanos(secs));
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }

    fn sleep_until_nanos(&self, deadline: u64) {
        // No one else will move time while this thread blocks: jump.
        self.advance_to_nanos(deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(secs_to_nanos(1.5), 1_500_000_000);
        assert_eq!(secs_to_nanos(-3.0), 0);
        assert_eq!(secs_to_nanos(f64::MAX), u64::MAX);
        assert!((nanos_to_secs(2_500_000_000) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn real_clock_is_monotone() {
        let c = RealClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
        let before = c.now_nanos();
        c.sleep_until_nanos(before + 2_000_000); // 2 ms
        assert!(c.now_nanos() >= before + 2_000_000);
    }

    #[test]
    fn manual_clock_only_moves_when_advanced() {
        let c = ManualClock::new();
        assert_eq!(c.now_nanos(), 0);
        c.advance_to_nanos(500);
        assert_eq!(c.now_nanos(), 500);
        c.advance_to_nanos(100); // backwards: ignored
        assert_eq!(c.now_nanos(), 500);
        c.advance_nanos(250);
        assert_eq!(c.now_nanos(), 750);
        c.sleep_until_nanos(10_000);
        assert_eq!(c.now_nanos(), 10_000);
        assert!((c.now_secs() - 1e-5).abs() < 1e-18);
    }
}
