//! # delayguard-core
//!
//! The contribution of *Using Delay to Defend Against Database Extraction*
//! (Jayapandian, Noble, Mickens, Jagadish — SDM/VLDB 2004), implemented
//! over the `delayguard` substrate crates:
//!
//! * [`access`] — the §2 access-rate delay policy (Eq. 1 with the Eq. 5
//!   cap): popular tuples return instantly, obscure tuples slowly, so an
//!   extraction robot pays orders of magnitude more than real users.
//! * [`update`] — the §3 update-rate delay policy (Eq. 9) and its
//!   staleness guarantee (Eq. 12): whatever the adversary extracts is
//!   largely stale by the time extraction completes.
//! * [`policy`] — policy composition (hybrid max-combine) and the
//!   per-query charging model (§2.1's aggregate-of-simple-queries rule).
//! * [`analysis`] — the paper's closed forms (Eq. 2–7, 11–12) plus the
//!   §2.4 Sybil economics, for theory-vs-simulation cross-checks.
//! * [`gatekeeper`] — §2.4 defenses: registration throttling, per-user
//!   and per-subnet token buckets, storefront flagging.
//! * [`guarded`] — [`GuardedDatabase`]: the engine wrapper that learns
//!   popularity, charges delays per returned tuple, and (optionally)
//!   sleeps.
//! * [`snapshot`] — the immutable [`snapshot::PolicySnapshot`] read view
//!   and bounded-staleness knobs behind the guard's lock-free query path.
//!
//! ```
//! use delayguard_core::{GuardConfig, GuardedDatabase};
//!
//! let db = GuardedDatabase::new(GuardConfig::paper_default());
//! db.execute_at("CREATE TABLE d (id INT NOT NULL, v TEXT)", 0.0).unwrap();
//! db.execute_at("INSERT INTO d VALUES (1, 'hot'), (2, 'cold')", 0.0).unwrap();
//! // Nothing learned yet: the first read pays the 10-second cap.
//! let r = db.execute_at("SELECT * FROM d WHERE id = 1", 1.0).unwrap();
//! assert_eq!(r.delay_secs, 10.0);
//! ```

#![forbid(unsafe_code)]

pub mod access;
pub mod analysis;
pub mod clock;
pub mod config;
pub mod error;
pub mod gatekeeper;
pub mod guarded;
pub mod policy;
pub mod replica;
pub mod shaping;
pub mod snapshot;
pub mod update;

pub use access::{AccessDelayPolicy, PackedAccessDelays, PackedScalars};
pub use clock::{Clock, ManualClock, RealClock};
pub use config::GuardConfig;
pub use error::{GuardError, Result};
pub use gatekeeper::{Gatekeeper, GatekeeperConfig};
pub use guarded::{
    ChargedChunk, DeadlineResponse, DeadlineStream, GuardedDatabase, GuardedResponse,
    PreparedQuery, StreamedQuery,
};
pub use policy::{ChargingModel, GuardPolicy};
pub use replica::{tag_remote_key, ReplicaDelta, TableDelta};
pub use shaping::DelayShaping;
pub use snapshot::{PolicySnapshot, ReadPath, SnapshotPolicy, SnapshotStats, TableSnapshot};
pub use update::UpdateDelayPolicy;
