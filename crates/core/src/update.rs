//! Update-rate delay policy (paper §3).
//!
//! When access patterns are uniform the access-rate scheme assigns every
//! tuple the same delay, which either hurts users or spares the adversary.
//! §3 instead charges delays inversely proportional to *update* rates
//! (Eq. 8/9):
//!
//! ```text
//! d(i) = (c/N) · i^α / r_max      ⟺      d = c / (N · r)
//! ```
//!
//! so frequently-updated tuples return quickly while stale-prone tuples
//! are slow. The point is not the delay itself but the *staleness
//! guarantee* (Eq. 11–12): by the time an adversary finishes extracting,
//! a fraction `S_max ≈ (c_max/(1+α))^(1/α)` of its copy is already
//! obsolete.

use delayguard_popularity::FrequencyTracker;

/// Parameters of the update-rate delay policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateDelayPolicy {
    /// Scale constant `c` of Eq. 9.
    pub c: f64,
    /// Maximum delay per tuple, seconds.
    pub cap_secs: f64,
}

impl UpdateDelayPolicy {
    /// Policy with scale `c` and the paper's 10-second cap.
    pub fn new(c: f64) -> UpdateDelayPolicy {
        assert!(c > 0.0 && c.is_finite());
        UpdateDelayPolicy { c, cap_secs: 10.0 }
    }

    /// Override the cap.
    pub fn with_cap(mut self, cap_secs: f64) -> UpdateDelayPolicy {
        assert!(cap_secs >= 0.0);
        self.cap_secs = cap_secs;
        self
    }

    /// Choose `c` so that at least a fraction `s` of an extracted copy of a
    /// Zipf(α)-updated dataset is stale (inverts Eq. 12:
    /// `c = s^α · (1+α)`).
    pub fn for_staleness(s: f64, alpha: f64) -> UpdateDelayPolicy {
        assert!((0.0..=1.0).contains(&s) && s > 0.0);
        assert!(alpha > 0.0);
        UpdateDelayPolicy::new(s.powf(alpha) * (1.0 + alpha))
    }

    /// Delay for a tuple with update rate `rate` (updates/sec) in a
    /// relation of `n` tuples: `min(cap, c / (N·rate))`. Never-updated
    /// tuples (`rate = 0`) pay the cap.
    pub fn delay_from_rate(&self, n: u64, rate: f64) -> f64 {
        if n == 0 {
            return self.cap_secs;
        }
        if rate <= 0.0 {
            return self.cap_secs;
        }
        (self.c / (n as f64 * rate)).min(self.cap_secs)
    }

    /// Analytic Eq. 9 form: delay for the tuple at update-rank `i` when
    /// rates are Zipf(α) with maximum rate `rmax`.
    pub fn delay_for_rank(&self, n: u64, rank: u64, alpha: f64, rmax: f64) -> f64 {
        if n == 0 || rmax <= 0.0 {
            return self.cap_secs;
        }
        ((self.c / n as f64) * (rank as f64).powf(alpha) / rmax).min(self.cap_secs)
    }

    /// Delay using *learned* update statistics: rate is estimated as the
    /// tuple's decayed update count over the observation window.
    pub fn delay(&self, updates: &FrequencyTracker, n: u64, key: u64, window_secs: f64) -> f64 {
        if window_secs <= 0.0 {
            return self.cap_secs;
        }
        let rate = updates.count(key) / window_secs;
        self.delay_from_rate(n, rate)
    }

    /// Maximum staleness fraction guaranteed against a full extraction of a
    /// Zipf(α)-updated dataset (Eq. 12).
    pub fn smax(&self, alpha: f64) -> f64 {
        assert!(alpha > 0.0);
        (self.c / (1.0 + alpha)).powf(1.0 / alpha).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_tuples_fast_cold_tuples_capped() {
        let p = UpdateDelayPolicy::new(1.0).with_cap(10.0);
        let n = 1000;
        let hot = p.delay_from_rate(n, 100.0);
        let warm = p.delay_from_rate(n, 0.01);
        let cold = p.delay_from_rate(n, 0.0);
        assert!(hot < warm);
        assert_eq!(cold, 10.0);
        assert!((hot - 1.0 / (1000.0 * 100.0)).abs() < 1e-12);
    }

    #[test]
    fn rank_form_matches_rate_form_under_zipf() {
        // r_i = rmax * i^-alpha  =>  both formulas agree.
        let p = UpdateDelayPolicy::new(2.0).with_cap(f64::INFINITY);
        let (n, alpha, rmax) = (10_000u64, 1.2, 5.0);
        for rank in [1u64, 3, 10, 100, 5000] {
            let rate = rmax * (rank as f64).powf(-alpha);
            let a = p.delay_for_rank(n, rank, alpha, rmax);
            let b = p.delay_from_rate(n, rate);
            assert!((a - b).abs() / a < 1e-12, "rank {rank}: {a} vs {b}");
        }
    }

    #[test]
    fn smax_matches_paper_equation() {
        // S_max = (c/(1+alpha))^(1/alpha)
        let p = UpdateDelayPolicy::new(1.5);
        let alpha = 1.0;
        assert!((p.smax(alpha) - 0.75).abs() < 1e-12);
        // Higher alpha (more focused updates) -> smaller stale fraction.
        assert!(p.smax(2.5) < p.smax(0.5));
    }

    #[test]
    fn for_staleness_round_trips() {
        for (s, alpha) in [(0.5, 1.0), (0.9, 1.5), (0.25, 0.75)] {
            let p = UpdateDelayPolicy::for_staleness(s, alpha);
            assert!((p.smax(alpha) - s).abs() < 1e-9, "s={s}, alpha={alpha}");
        }
    }

    #[test]
    fn smax_clamped_to_one() {
        let p = UpdateDelayPolicy::new(1e6);
        assert_eq!(p.smax(1.0), 1.0);
    }

    #[test]
    fn learned_delay_uses_window() {
        use delayguard_popularity::FrequencyTracker;
        let mut updates = FrequencyTracker::no_decay();
        for _ in 0..100 {
            updates.record(1);
        }
        let p = UpdateDelayPolicy::new(1.0).with_cap(10.0);
        // 100 updates over 50 s -> rate 2/s -> d = 1/(10*2) = 0.05.
        let d = p.delay(&updates, 10, 1, 50.0);
        assert!((d - 0.05).abs() < 1e-12);
        // Unknown key -> cap.
        assert_eq!(p.delay(&updates, 10, 2, 50.0), 10.0);
        // Degenerate window -> cap.
        assert_eq!(p.delay(&updates, 10, 1, 0.0), 10.0);
    }

    #[test]
    #[should_panic]
    fn non_positive_c_rejected() {
        UpdateDelayPolicy::new(0.0);
    }

    #[test]
    fn smax_limits_at_extreme_alpha() {
        // α → 0⁺ with c below 1+α: the exponent 1/α blows up on a base
        // below one, so the guarantee collapses to (numerically) zero —
        // uniform updates give extraction no time to go stale.
        let p = UpdateDelayPolicy::new(0.5);
        assert!(p.smax(0.01) < 1e-20, "got {}", p.smax(0.01));
        // α → 0⁺ with c above 1+α: base above one, the clamp engages and
        // the whole copy is guaranteed stale.
        let loud = UpdateDelayPolicy::new(2.0);
        assert_eq!(loud.smax(0.01), 1.0);
        // α ≥ 1: exact at the paper's α = 1 (c/2), approaches 1 from
        // below as the update skew concentrates everything on rank 1.
        let p = UpdateDelayPolicy::new(0.9);
        assert!((p.smax(1.0) - 0.45).abs() < 1e-12);
        for alpha in [1.0, 2.0, 8.0, 64.0] {
            let s = p.smax(alpha);
            assert!(s > 0.0 && s < 1.0, "alpha {alpha}: {s}");
        }
        assert!(p.smax(64.0) > 0.9, "got {}", p.smax(64.0));
    }

    #[test]
    fn for_staleness_round_trips_at_the_edges() {
        // Near-zero and near-total staleness targets, and the steep-skew
        // corner where c = s^α·(1+α) is tiny — the inversion must hold
        // everywhere new(c) accepts the result.
        for (s, alpha) in [(0.05, 2.0), (0.99, 1.0), (0.5, 8.0), (0.01, 0.5)] {
            let p = UpdateDelayPolicy::for_staleness(s, alpha);
            assert!(p.c > 0.0);
            assert!((p.smax(alpha) - s).abs() < 1e-9, "s={s}, alpha={alpha}");
        }
    }

    #[test]
    fn zero_rate_always_pays_the_cap() {
        // Never-updated tuples pay exactly the configured cap through
        // every entry point: empty tracker, empty relation, zero and
        // negative rates.
        let updates = FrequencyTracker::no_decay();
        for cap in [0.0, 0.5, 10.0, 3600.0] {
            let p = UpdateDelayPolicy::new(0.3).with_cap(cap);
            assert_eq!(p.delay(&updates, 1000, 7, 1e6), cap);
            assert_eq!(p.delay_from_rate(0, 5.0), cap);
            assert_eq!(p.delay_from_rate(1000, 0.0), cap);
            assert_eq!(p.delay_from_rate(1000, -1.0), cap);
        }
        // A zero cap also nulls positive-rate delays — the knob that
        // makes the combined policy's update term provably inert.
        let off = UpdateDelayPolicy::new(0.3).with_cap(0.0);
        assert_eq!(off.delay_from_rate(1000, 2.0), 0.0);
    }
}
