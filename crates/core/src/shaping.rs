//! Shaped delays: closing the timing side channel.
//!
//! The per-tuple delay of Eq. 1 is a *monotone* function of popularity
//! rank, so an adversary who merely times responses recovers the rank
//! order for free — and the rank order is exactly the targeting oracle
//! the rank-based-inference attacks need to aim extraction at the
//! high-value unpopular tail. [`DelayShaping`] breaks the monotone map
//! while preserving the economics:
//!
//! * **Geometric quantization.** Raw delays are rounded *up* to the
//!   nearest bucket edge `anchor · γ^m` (`m ∈ ℤ`). Within a bucket every
//!   tuple pays the same base price, so timing distinguishes at most
//!   `O(log_γ(d_max/d_min))` classes instead of `n` ranks. Rounding up
//!   (never down) keeps the Eq. 4 adversary total a lower bound: shaping
//!   can only make extraction *more* expensive.
//! * **Seeded deterministic jitter.** The bucket edge is multiplied by
//!   `1 + jitter_frac · u` where `u ∈ [0, 1)` is a hash of
//!   `(seed, query nonce, tuple key)`. Two queries for the same tuple see
//!   different delays (the attacker cannot average jitter away within one
//!   crawl pass we simulate), yet the whole schedule is a pure function
//!   of the seed — same seed ⇒ bit-identical runs, the testkit's replay
//!   contract.
//!
//! The validation constraint `jitter_frac ≤ γ − 1` makes the shaped
//! delay **monotone non-decreasing across bucket boundaries** for *any*
//! jitter draw: the largest value a bucket can emit,
//! `edge · (1 + jitter_frac) ≤ edge · γ`, never exceeds the next
//! bucket's smallest. Within a bucket, order is jitter-noise — which is
//! the point.
//!
//! Shaping is applied at the charge sites (the streaming
//! [`DeadlineStream`](crate::guarded::DeadlineStream) pricing paths and
//! the locked/snapshot select paths) *before* the charging-model fold,
//! so the deadline schedule, the server's timer wheel, DONE trailers and
//! the cluster replicas all speak the shaped schedule. With
//! `enabled = false` (the default) [`DelayShaping::shape`] returns the
//! raw delay bit-exactly: every pre-existing digest and property suite
//! is unchanged.

use crate::error::{GuardError, Result};

/// Quantize-and-jitter policy for shaping per-tuple delays.
///
/// Carried on [`GuardConfig`](crate::GuardConfig) and stamped onto each
/// published [`PolicySnapshot`](crate::PolicySnapshot) so observers can
/// tell which schedule a snapshot prices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayShaping {
    /// Master switch. `false` ⇒ [`shape`](DelayShaping::shape) is the
    /// bit-exact identity on the raw delay.
    pub enabled: bool,
    /// Top bucket edge, in seconds. Bucket edges are
    /// `anchor_secs · gamma^m` for integer `m ≤ 0` (and `m > 0` for raw
    /// delays above the anchor). Choose it at or above the policy cap so
    /// the most expensive tuples share one bucket.
    pub anchor_secs: f64,
    /// Geometric bucket ratio (> 1). Larger γ ⇒ fewer, coarser buckets
    /// ⇒ less rank information leaks, at more honest-user inflation.
    pub gamma: f64,
    /// Jitter amplitude as a fraction of the bucket edge, in
    /// `[0, gamma − 1]`. The shaped delay is
    /// `edge · (1 + jitter_frac · u)`, `u ∈ [0, 1)`.
    pub jitter_frac: f64,
    /// Seed for the jitter hash. Part of the deterministic-replay
    /// contract: `(seed, query nonce, tuple key)` fully determine `u`.
    pub seed: u64,
}

impl DelayShaping {
    /// Shaping disabled: `shape` is the identity. The default.
    pub fn off() -> DelayShaping {
        DelayShaping {
            enabled: false,
            anchor_secs: 1.0,
            gamma: 4.0,
            jitter_frac: 0.0,
            seed: 0,
        }
    }

    /// Enabled shaping with the given bucket geometry and jitter.
    pub fn new(anchor_secs: f64, gamma: f64, jitter_frac: f64, seed: u64) -> DelayShaping {
        DelayShaping {
            enabled: true,
            anchor_secs,
            gamma,
            jitter_frac,
            seed,
        }
    }

    /// Validate parameter ranges (called from `GuardConfig::validate`).
    pub fn validate(&self) -> Result<()> {
        if !self.enabled {
            return Ok(());
        }
        if self.anchor_secs <= 0.0 || !self.anchor_secs.is_finite() {
            return Err(GuardError::Config(format!(
                "shaping anchor_secs must be positive and finite, got {}",
                self.anchor_secs
            )));
        }
        if self.gamma <= 1.0 || !self.gamma.is_finite() {
            return Err(GuardError::Config(format!(
                "shaping gamma must be > 1, got {}",
                self.gamma
            )));
        }
        if !(0.0..=self.gamma - 1.0).contains(&self.jitter_frac) || !self.jitter_frac.is_finite() {
            return Err(GuardError::Config(format!(
                "shaping jitter_frac must be in [0, gamma - 1] = [0, {}], got {} \
                 (the bound is what makes shaped delays monotone across buckets)",
                self.gamma - 1.0,
                self.jitter_frac
            )));
        }
        Ok(())
    }

    /// The bucket edge for a raw delay: the smallest `anchor · γ^m`
    /// (`m ∈ ℤ`) that is ≥ `raw`. Non-positive and non-finite raw delays
    /// pass through untouched (zero-delay tuples stay free; an infinite
    /// cap stays infinite).
    pub fn quantize(&self, raw: f64) -> f64 {
        if !self.enabled || raw <= 0.0 || !raw.is_finite() {
            return raw;
        }
        // m = ceil(log_γ(raw / anchor)); float log can land a hair under
        // the true integer, so correct upward until the edge covers raw.
        let m = (raw / self.anchor_secs).ln() / self.gamma.ln();
        let mut k = m.ceil() as i32;
        let mut edge = self.anchor_secs * self.gamma.powi(k);
        while edge < raw {
            k += 1;
            edge = self.anchor_secs * self.gamma.powi(k);
        }
        // Same guard downward: if the next-lower edge still covers raw,
        // ceil() overshot by one (raw exactly on an edge, log rounded up).
        loop {
            let lower = self.anchor_secs * self.gamma.powi(k - 1);
            if lower >= raw {
                k -= 1;
                edge = lower;
            } else {
                break;
            }
        }
        edge
    }

    /// The jitter draw `u ∈ [0, 1)` for `(seed, nonce, key)` —
    /// splitmix64-finalized so every input bit diffuses.
    pub fn jitter_u(&self, nonce: u64, key: u64) -> f64 {
        let mut h = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(nonce);
        h = splitmix(h);
        h = splitmix(h ^ key.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        // Top 53 bits → [0, 1) exactly representable in f64.
        (h >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// The shaped delay for one tuple: quantized bucket edge times
    /// `1 + jitter_frac · u`. Identity when disabled. The result is
    /// always ≥ `raw`, and monotone non-decreasing in `raw` across
    /// bucket boundaries for any `(nonce, key)` pair (see module docs).
    pub fn shape(&self, raw: f64, nonce: u64, key: u64) -> f64 {
        if !self.enabled {
            return raw;
        }
        let edge = self.quantize(raw);
        if edge <= 0.0 || !edge.is_finite() {
            return edge;
        }
        edge * (1.0 + self.jitter_frac * self.jitter_u(nonce, key))
    }

    /// Expected shaped delay for a raw delay, averaging over the uniform
    /// jitter draw: `quantize(raw) · (1 + jitter_frac / 2)`. The noisy
    /// closed forms in [`analysis`](crate::analysis) are built on this.
    pub fn expected(&self, raw: f64) -> f64 {
        if !self.enabled {
            return raw;
        }
        let edge = self.quantize(raw);
        if edge <= 0.0 || !edge.is_finite() {
            return edge;
        }
        edge * (1.0 + self.jitter_frac / 2.0)
    }
}

impl Default for DelayShaping {
    fn default() -> Self {
        DelayShaping::off()
    }
}

/// splitmix64 finalizer (public-domain constant schedule).
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_bit_exact_identity() {
        let s = DelayShaping::off();
        for raw in [0.0, 1e-9, 0.37, 1.0, 10.0, f64::INFINITY, -1.0] {
            assert_eq!(s.shape(raw, 7, 42).to_bits(), raw.to_bits());
            assert_eq!(s.quantize(raw).to_bits(), raw.to_bits());
            assert_eq!(s.expected(raw).to_bits(), raw.to_bits());
        }
    }

    #[test]
    fn quantize_rounds_up_to_geometric_edge() {
        let s = DelayShaping::new(8.0, 2.0, 0.0, 1);
        assert_eq!(s.quantize(8.0), 8.0);
        assert_eq!(s.quantize(5.0), 8.0);
        assert_eq!(s.quantize(4.0), 4.0);
        assert_eq!(s.quantize(3.9), 4.0);
        assert_eq!(s.quantize(9.0), 16.0);
        assert_eq!(s.quantize(0.6), 1.0);
        // Never below raw, never more than γ× above.
        for i in 1..2000 {
            let raw = i as f64 * 0.013;
            let q = s.quantize(raw);
            assert!(q >= raw, "quantize({raw}) = {q} < raw");
            assert!(
                q < raw * 2.0 * (1.0 + 1e-12),
                "quantize({raw}) = {q} too big"
            );
        }
    }

    #[test]
    fn quantize_passes_degenerate_inputs_through() {
        let s = DelayShaping::new(8.0, 2.0, 0.0, 1);
        assert_eq!(s.quantize(0.0), 0.0);
        assert_eq!(s.quantize(-3.0), -3.0);
        assert!(s.quantize(f64::INFINITY).is_infinite());
        assert!(s.quantize(f64::NAN).is_nan());
    }

    #[test]
    fn shape_is_at_least_raw_and_bounded() {
        let s = DelayShaping::new(10.0, 3.0, 0.5, 99);
        for i in 1..500 {
            let raw = i as f64 * 0.07;
            let d = s.shape(raw, i, i * 31);
            assert!(d >= raw);
            let edge = s.quantize(raw);
            assert!(d >= edge && d < edge * 1.5);
        }
    }

    #[test]
    fn shape_monotone_across_buckets_any_jitter() {
        // jitter_frac = γ − 1, the extreme allowed value: max of one
        // bucket equals min of the next. Sample adversarial key pairs.
        let s = DelayShaping::new(16.0, 2.0, 1.0, 5);
        for a in 1..200u64 {
            for &b in &[a + 1, a * 2, a + 37] {
                let (ra, rb) = (a as f64 * 0.11, b as f64 * 0.11);
                let (qa, qb) = (s.quantize(ra), s.quantize(rb));
                if qa < qb {
                    let da = s.shape(ra, 1, a);
                    let db = s.shape(rb, 2, b);
                    assert!(
                        da <= db,
                        "cross-bucket order violated: shape({ra})={da} > shape({rb})={db}"
                    );
                }
            }
        }
    }

    #[test]
    fn jitter_is_deterministic_and_spread() {
        let s = DelayShaping::new(1.0, 4.0, 0.3, 12345);
        assert_eq!(
            s.shape(0.7, 9, 100).to_bits(),
            s.shape(0.7, 9, 100).to_bits(),
            "same (seed, nonce, key) must re-price identically"
        );
        assert_ne!(
            s.shape(0.7, 9, 100).to_bits(),
            s.shape(0.7, 10, 100).to_bits(),
            "different nonce must draw different jitter"
        );
        let mut us: Vec<f64> = (0..64).map(|k| s.jitter_u(1, k)).collect();
        us.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(us[0] >= 0.0 && *us.last().unwrap() < 1.0);
        let mean = us.iter().sum::<f64>() / us.len() as f64;
        assert!((mean - 0.5).abs() < 0.15, "jitter mean {mean} far from 1/2");
    }

    #[test]
    fn expected_is_edge_times_half_jitter() {
        let s = DelayShaping::new(10.0, 5.0, 0.4, 0);
        assert_eq!(s.expected(7.0), 10.0 * 1.2);
        assert_eq!(s.expected(10.0), 10.0 * 1.2);
        assert_eq!(s.expected(0.5), 2.0 * 1.2);
    }

    #[test]
    fn validation_catches_bad_geometry() {
        assert!(DelayShaping::off().validate().is_ok());
        assert!(DelayShaping::new(1.0, 4.0, 0.25, 0).validate().is_ok());
        assert!(DelayShaping::new(0.0, 4.0, 0.25, 0).validate().is_err());
        assert!(DelayShaping::new(1.0, 1.0, 0.0, 0).validate().is_err());
        assert!(DelayShaping::new(1.0, f64::NAN, 0.0, 0).validate().is_err());
        assert!(DelayShaping::new(1.0, 4.0, -0.1, 0).validate().is_err());
        assert!(
            DelayShaping::new(1.0, 4.0, 3.0 + 1e-9, 0)
                .validate()
                .is_err(),
            "jitter_frac above gamma - 1 breaks cross-bucket monotonicity"
        );
        assert!(DelayShaping::new(1.0, 4.0, 3.0, 0).validate().is_ok());
        let mut bad = DelayShaping::new(0.0, 0.5, 9.0, 0);
        bad.enabled = false;
        assert!(bad.validate().is_ok(), "disabled shaping is never rejected");
    }
}
