//! Guard configuration.

use crate::access::AccessDelayPolicy;
use crate::error::{GuardError, Result};
use crate::policy::{ChargingModel, GuardPolicy};
use crate::shaping::DelayShaping;
use crate::snapshot::{ReadPath, SnapshotPolicy};

/// Configuration of a [`crate::GuardedDatabase`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// Which delay scheme to apply.
    pub policy: GuardPolicy,
    /// How multi-tuple queries are charged.
    pub charging: ChargingModel,
    /// Decay rate for access counts (`1.0` = no decay; paper Table 3
    /// sweeps `1.0..=1.00002` per request).
    pub access_decay_rate: f64,
    /// Decay rate for update counts.
    pub update_decay_rate: f64,
    /// How the wall-clock (`execute_with_deadline`) path prices and
    /// records accesses. The virtual-time simulation path (`execute_at`)
    /// always uses the exact locked path.
    pub read_path: ReadPath,
    /// Bounded-staleness knobs for the snapshot read path.
    pub snapshot: SnapshotPolicy,
    /// Number of shards the per-table guard state (and the record queue)
    /// is split across. Rounded up to a power of two; `1` reproduces the
    /// original global-mutex guard.
    pub shards: usize,
    /// Timing-side-channel defense: quantize delays into geometric
    /// buckets and add seeded per-(query, tuple) jitter so response
    /// times stop revealing popularity rank. Off by default —
    /// [`DelayShaping::off`] makes pricing bit-identical to the
    /// unshaped pipeline.
    pub shaping: DelayShaping,
}

impl GuardConfig {
    /// The paper's canonical configuration: access-rate delays with
    /// `α = 1.5`, `β = 1.0`, a 10-second cap, per-tuple-sum charging and
    /// no decay; snapshot read path with default staleness bounds.
    pub fn paper_default() -> GuardConfig {
        GuardConfig {
            policy: GuardPolicy::AccessRate(AccessDelayPolicy::new(1.5, 1.0)),
            charging: ChargingModel::PerTupleSum,
            access_decay_rate: 1.0,
            update_decay_rate: 1.0,
            read_path: ReadPath::Snapshot,
            snapshot: SnapshotPolicy::default(),
            shards: 16,
            shaping: DelayShaping::off(),
        }
    }

    /// Replace the policy.
    pub fn with_policy(mut self, policy: GuardPolicy) -> GuardConfig {
        self.policy = policy;
        self
    }

    /// Replace the access decay rate.
    pub fn with_access_decay(mut self, rate: f64) -> GuardConfig {
        self.access_decay_rate = rate;
        self
    }

    /// Replace the charging model.
    pub fn with_charging(mut self, charging: ChargingModel) -> GuardConfig {
        self.charging = charging;
        self
    }

    /// Replace the wall-clock read path.
    pub fn with_read_path(mut self, read_path: ReadPath) -> GuardConfig {
        self.read_path = read_path;
        self
    }

    /// Replace the snapshot staleness bounds.
    pub fn with_snapshot_policy(mut self, snapshot: SnapshotPolicy) -> GuardConfig {
        self.snapshot = snapshot;
        self
    }

    /// Replace the guard shard count.
    pub fn with_shards(mut self, shards: usize) -> GuardConfig {
        self.shards = shards;
        self
    }

    /// Replace the delay-shaping policy.
    pub fn with_shaping(mut self, shaping: DelayShaping) -> GuardConfig {
        self.shaping = shaping;
        self
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<()> {
        if self.access_decay_rate < 1.0 || !self.access_decay_rate.is_finite() {
            return Err(GuardError::Config(format!(
                "access decay rate must be >= 1.0, got {}",
                self.access_decay_rate
            )));
        }
        if self.update_decay_rate < 1.0 || !self.update_decay_rate.is_finite() {
            return Err(GuardError::Config(format!(
                "update decay rate must be >= 1.0, got {}",
                self.update_decay_rate
            )));
        }
        if let GuardPolicy::AccessRate(p) | GuardPolicy::Hybrid(p, _) = self.policy {
            if p.alpha < 0.0 || p.beta < 0.0 || p.cap_secs < 0.0 {
                return Err(GuardError::Config(
                    "access policy parameters must be non-negative".into(),
                ));
            }
        }
        if self.shards == 0 {
            return Err(GuardError::Config("shard count must be at least 1".into()));
        }
        if self.snapshot.max_pending_events == 0 {
            return Err(GuardError::Config(
                "snapshot max_pending_events must be at least 1".into(),
            ));
        }
        if self.snapshot.max_age_secs <= 0.0 || !self.snapshot.max_age_secs.is_finite() {
            return Err(GuardError::Config(format!(
                "snapshot max_age_secs must be positive and finite, got {}",
                self.snapshot.max_age_secs
            )));
        }
        self.shaping.validate()?;
        Ok(())
    }
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        assert!(GuardConfig::paper_default().validate().is_ok());
    }

    #[test]
    fn builders_compose() {
        let c = GuardConfig::paper_default()
            .with_access_decay(1.00001)
            .with_charging(ChargingModel::PerQueryMax)
            .with_policy(GuardPolicy::None);
        assert_eq!(c.access_decay_rate, 1.00001);
        assert_eq!(c.charging, ChargingModel::PerQueryMax);
        assert_eq!(c.policy, GuardPolicy::None);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn bad_decay_rejected() {
        let c = GuardConfig::paper_default().with_access_decay(0.5);
        assert!(c.validate().is_err());
        let mut c = GuardConfig::paper_default();
        c.update_decay_rate = f64::NAN;
        assert!(c.validate().is_err());
    }

    #[test]
    fn bad_policy_rejected() {
        let mut c = GuardConfig::paper_default();
        c.policy = GuardPolicy::AccessRate(crate::access::AccessDelayPolicy::new(-1.0, 1.0));
        assert!(c.validate().is_err());
    }

    #[test]
    fn bad_concurrency_knobs_rejected() {
        let mut c = GuardConfig::paper_default();
        c.shards = 0;
        assert!(c.validate().is_err());
        let mut c = GuardConfig::paper_default();
        c.snapshot.max_pending_events = 0;
        assert!(c.validate().is_err());
        let mut c = GuardConfig::paper_default();
        c.snapshot.max_age_secs = 0.0;
        assert!(c.validate().is_err());
        let c = GuardConfig::paper_default()
            .with_read_path(ReadPath::Locked)
            .with_shards(1)
            .with_snapshot_policy(SnapshotPolicy::new(64, 0.01));
        assert!(c.validate().is_ok());
        assert_eq!(c.read_path, ReadPath::Locked);
        assert_eq!(c.snapshot.max_pending_events, 64);
    }

    #[test]
    fn shaping_knob_validates_through_config() {
        let c = GuardConfig::paper_default().with_shaping(DelayShaping::new(10.0, 4.0, 0.25, 7));
        assert!(c.validate().is_ok());
        assert!(c.shaping.enabled);
        let bad = GuardConfig::paper_default().with_shaping(DelayShaping::new(10.0, 0.5, 0.0, 7));
        assert!(bad.validate().is_err());
        assert_eq!(GuardConfig::paper_default().shaping, DelayShaping::off());
    }
}
