//! Guard configuration.

use crate::access::AccessDelayPolicy;
use crate::error::{GuardError, Result};
use crate::policy::{ChargingModel, GuardPolicy};

/// Configuration of a [`crate::GuardedDatabase`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// Which delay scheme to apply.
    pub policy: GuardPolicy,
    /// How multi-tuple queries are charged.
    pub charging: ChargingModel,
    /// Decay rate for access counts (`1.0` = no decay; paper Table 3
    /// sweeps `1.0..=1.00002` per request).
    pub access_decay_rate: f64,
    /// Decay rate for update counts.
    pub update_decay_rate: f64,
}

impl GuardConfig {
    /// The paper's canonical configuration: access-rate delays with
    /// `α = 1.5`, `β = 1.0`, a 10-second cap, per-tuple-sum charging and
    /// no decay.
    pub fn paper_default() -> GuardConfig {
        GuardConfig {
            policy: GuardPolicy::AccessRate(AccessDelayPolicy::new(1.5, 1.0)),
            charging: ChargingModel::PerTupleSum,
            access_decay_rate: 1.0,
            update_decay_rate: 1.0,
        }
    }

    /// Replace the policy.
    pub fn with_policy(mut self, policy: GuardPolicy) -> GuardConfig {
        self.policy = policy;
        self
    }

    /// Replace the access decay rate.
    pub fn with_access_decay(mut self, rate: f64) -> GuardConfig {
        self.access_decay_rate = rate;
        self
    }

    /// Replace the charging model.
    pub fn with_charging(mut self, charging: ChargingModel) -> GuardConfig {
        self.charging = charging;
        self
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<()> {
        if self.access_decay_rate < 1.0 || !self.access_decay_rate.is_finite() {
            return Err(GuardError::Config(format!(
                "access decay rate must be >= 1.0, got {}",
                self.access_decay_rate
            )));
        }
        if self.update_decay_rate < 1.0 || !self.update_decay_rate.is_finite() {
            return Err(GuardError::Config(format!(
                "update decay rate must be >= 1.0, got {}",
                self.update_decay_rate
            )));
        }
        if let GuardPolicy::AccessRate(p) | GuardPolicy::Hybrid(p, _) = self.policy {
            if p.alpha < 0.0 || p.beta < 0.0 || p.cap_secs < 0.0 {
                return Err(GuardError::Config(
                    "access policy parameters must be non-negative".into(),
                ));
            }
        }
        Ok(())
    }
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        assert!(GuardConfig::paper_default().validate().is_ok());
    }

    #[test]
    fn builders_compose() {
        let c = GuardConfig::paper_default()
            .with_access_decay(1.00001)
            .with_charging(ChargingModel::PerQueryMax)
            .with_policy(GuardPolicy::None);
        assert_eq!(c.access_decay_rate, 1.00001);
        assert_eq!(c.charging, ChargingModel::PerQueryMax);
        assert_eq!(c.policy, GuardPolicy::None);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn bad_decay_rejected() {
        let c = GuardConfig::paper_default().with_access_decay(0.5);
        assert!(c.validate().is_err());
        let mut c = GuardConfig::paper_default();
        c.update_decay_rate = f64::NAN;
        assert!(c.validate().is_err());
    }

    #[test]
    fn bad_policy_rejected() {
        let mut c = GuardConfig::paper_default();
        c.policy = GuardPolicy::AccessRate(crate::access::AccessDelayPolicy::new(-1.0, 1.0));
        assert!(c.validate().is_err());
    }
}
