//! The guarded database: the paper's scheme wrapped around the engine.
//!
//! [`GuardedDatabase`] executes SQL through [`delayguard_query::Engine`]
//! and, for every *returned tuple*, (a) charges a delay according to the
//! configured [`GuardPolicy`] and (b) records the access in the table's
//! popularity tracker. Updates feed the update-rate tracker; inserts
//! pre-register tuples at zero popularity (start-up transient, §2.3).
//!
//! The computed delay is *returned*, not slept, so simulations can account
//! years of adversary delay instantly. Deployments enforce it through
//! [`GuardedDatabase::execute_with_deadline`], which converts the policy's
//! per-tuple delays into wall-clock [`Instant`] deadlines the caller (a
//! server event loop, a timer wheel, ...) schedules however it likes;
//! [`GuardedDatabase::execute_blocking`] is the trivial enforcement —
//! sleep until the query deadline — kept for library callers.

use crate::config::GuardConfig;
use crate::error::Result;
use crate::policy::ChargingModel;
use delayguard_popularity::{DecaySchedule, FrequencyTracker};
use delayguard_query::ast::Statement;
use delayguard_query::{parse, Engine, StatementOutput};
use delayguard_storage::RowId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Per-table guard state.
struct TableGuard {
    access: FrequencyTracker,
    updates: FrequencyTracker,
    /// Virtual time when this table first came under observation; the
    /// update-rate window is measured from here.
    epoch: Option<f64>,
}

impl TableGuard {
    fn new(config: &GuardConfig) -> TableGuard {
        TableGuard {
            access: FrequencyTracker::new(DecaySchedule::new(config.access_decay_rate)),
            updates: FrequencyTracker::new(DecaySchedule::new(config.update_decay_rate)),
            epoch: None,
        }
    }

    fn window(&self, now: f64) -> f64 {
        match self.epoch {
            Some(e) => (now - e).max(1e-9),
            None => 1e-9,
        }
    }
}

/// Outcome of a guarded statement.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardedResponse {
    /// The engine's output (rows, affected RowIds, ...).
    pub output: StatementOutput,
    /// Total delay charged to this statement, in seconds.
    pub delay_secs: f64,
    /// How many tuples contributed to the delay.
    pub tuples_charged: usize,
}

/// Outcome of a guarded statement with wall-clock enforcement deadlines.
///
/// Returned by [`GuardedDatabase::execute_with_deadline`]: instead of
/// sleeping, the guard hands the caller the [`Instant`]s before which each
/// tuple (and the statement as a whole) must not be released. A server
/// schedules these on a timer wheel; a simple caller sleeps until
/// [`DeadlineResponse::deadline`].
#[derive(Debug, Clone)]
pub struct DeadlineResponse {
    /// The engine's output (rows, affected RowIds, ...).
    pub output: StatementOutput,
    /// Raw per-tuple policy delays in row order, in seconds.
    pub tuple_delays: Vec<f64>,
    /// Per-tuple release offsets from `issued_at`, in seconds, under the
    /// configured charging model: `PerTupleSum` streams tuples at prefix
    /// sums (the query completes after the sum), `PerQueryMax` releases
    /// each tuple at its own delay (the query completes at the max).
    pub tuple_offsets: Vec<f64>,
    /// Total delay charged to the statement, in seconds (the largest
    /// tuple offset).
    pub delay_secs: f64,
    /// When the statement was executed; all offsets are relative to this.
    pub issued_at: Instant,
}

impl DeadlineResponse {
    /// The wall-clock instant at which the whole statement may complete.
    pub fn deadline(&self) -> Instant {
        self.issued_at + Duration::from_secs_f64(self.delay_secs)
    }

    /// Per-tuple wall-clock release instants, in row order.
    pub fn tuple_deadlines(&self) -> impl Iterator<Item = Instant> + '_ {
        self.tuple_offsets
            .iter()
            .map(move |&off| self.issued_at + Duration::from_secs_f64(off))
    }

    /// Collapse to the summary form used by simulations and library code.
    pub fn into_response(self) -> GuardedResponse {
        GuardedResponse {
            output: self.output,
            delay_secs: self.delay_secs,
            tuples_charged: self.tuple_delays.len(),
        }
    }
}

/// Release offsets for each tuple under a charging model (see
/// [`DeadlineResponse::tuple_offsets`]).
fn release_offsets(charging: ChargingModel, delays: &[f64]) -> Vec<f64> {
    match charging {
        ChargingModel::PerTupleSum => {
            let mut acc = 0.0;
            delays
                .iter()
                .map(|d| {
                    acc += d;
                    acc
                })
                .collect()
        }
        ChargingModel::PerQueryMax => delays.to_vec(),
    }
}

/// A database whose front door is defended by delay.
pub struct GuardedDatabase {
    engine: Engine,
    config: GuardConfig,
    guards: Mutex<HashMap<String, TableGuard>>,
    started: Instant,
}

impl GuardedDatabase {
    /// A guarded database over a fresh engine.
    pub fn new(config: GuardConfig) -> GuardedDatabase {
        GuardedDatabase::with_engine(Engine::new(), config)
    }

    /// Guard an existing engine (e.g. with pre-loaded data).
    pub fn with_engine(engine: Engine, config: GuardConfig) -> GuardedDatabase {
        GuardedDatabase {
            engine,
            config,
            guards: Mutex::new(HashMap::new()),
            started: Instant::now(),
        }
    }

    /// The underlying engine (unguarded access for administration).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The guard configuration.
    pub fn config(&self) -> &GuardConfig {
        &self.config
    }

    /// Execute at an explicit virtual time (simulation entry point).
    pub fn execute_at(&self, sql: &str, now_secs: f64) -> Result<GuardedResponse> {
        let stmt = parse(sql)?;
        self.execute_stmt_at(&stmt, now_secs)
    }

    /// Execute a pre-parsed statement at a virtual time.
    pub fn execute_stmt_at(&self, stmt: &Statement, now_secs: f64) -> Result<GuardedResponse> {
        let (output, tuple_delays) = self.execute_stmt_detailed(stmt, now_secs)?;
        let delay_secs = self.config.charging.combine(tuple_delays.iter().copied());
        Ok(GuardedResponse {
            output,
            delay_secs,
            tuples_charged: tuple_delays.len(),
        })
    }

    /// Execute, recording accesses and computing the per-tuple delays the
    /// policy charges, without sleeping or combining.
    fn execute_stmt_detailed(
        &self,
        stmt: &Statement,
        now_secs: f64,
    ) -> Result<(StatementOutput, Vec<f64>)> {
        let output = self.engine.execute_stmt(stmt)?;
        let table = statement_table(stmt);
        let tuple_delays = match (&output, table) {
            (StatementOutput::Rows(rows), Some(table)) => {
                self.charge_select(table, rows.row_ids(), now_secs)?
            }
            (StatementOutput::Updated { rids }, Some(table)) => {
                self.note_updates(table, rids, now_secs);
                Vec::new()
            }
            (StatementOutput::Inserted { rids }, Some(table)) => {
                self.note_inserts(table, rids, now_secs);
                Vec::new()
            }
            _ => Vec::new(),
        };
        Ok((output, tuple_delays))
    }

    /// Execute using wall-clock time since the guard was created.
    pub fn execute(&self, sql: &str) -> Result<GuardedResponse> {
        self.execute_at(sql, self.started.elapsed().as_secs_f64())
    }

    /// Execute at wall-clock time and return enforcement deadlines instead
    /// of sleeping: the single shared path for servers (which schedule the
    /// deadlines on a timer wheel) and for [`Self::execute_blocking`].
    pub fn execute_with_deadline(&self, sql: &str) -> Result<DeadlineResponse> {
        let stmt = parse(sql)?;
        self.execute_stmt_with_deadline(&stmt)
    }

    /// [`Self::execute_with_deadline`] over a pre-parsed statement.
    pub fn execute_stmt_with_deadline(&self, stmt: &Statement) -> Result<DeadlineResponse> {
        let issued_at = Instant::now();
        let now_secs = self.started.elapsed().as_secs_f64();
        let (output, tuple_delays) = self.execute_stmt_detailed(stmt, now_secs)?;
        let tuple_offsets = release_offsets(self.config.charging, &tuple_delays);
        let delay_secs = self.config.charging.combine(tuple_delays.iter().copied());
        Ok(DeadlineResponse {
            output,
            tuple_delays,
            tuple_offsets,
            delay_secs,
            issued_at,
        })
    }

    /// Execute and actually sleep until the deadline (library deployment
    /// mode): a thin wrapper over [`Self::execute_with_deadline`].
    pub fn execute_blocking(&self, sql: &str) -> Result<GuardedResponse> {
        let resp = self.execute_with_deadline(sql)?;
        let deadline = resp.deadline();
        let now = Instant::now();
        if deadline > now {
            std::thread::sleep(deadline - now);
        }
        Ok(resp.into_response())
    }

    /// Compute the per-tuple delays for a set of returned tuples, then
    /// record their accesses.
    fn charge_select(
        &self,
        table: &str,
        rids: impl Iterator<Item = RowId>,
        now: f64,
    ) -> Result<Vec<f64>> {
        let n = self.table_len(table)?;
        let mut guards = self.guards.lock();
        let guard = guards
            .entry(table.to_owned())
            .or_insert_with(|| TableGuard::new(&self.config));
        guard.epoch.get_or_insert(now);
        let window = guard.window(now);
        let mut delays = Vec::new();
        for rid in rids {
            let key = rid.raw();
            // Delay reflects popularity *before* this access.
            let d = self
                .config
                .policy
                .tuple_delay(&guard.access, &guard.updates, n, key, window);
            delays.push(d);
            guard.access.record(key);
        }
        Ok(delays)
    }

    fn note_updates(&self, table: &str, rids: &[RowId], now: f64) {
        let mut guards = self.guards.lock();
        let guard = guards
            .entry(table.to_owned())
            .or_insert_with(|| TableGuard::new(&self.config));
        guard.epoch.get_or_insert(now);
        for rid in rids {
            guard.updates.record(rid.raw());
        }
    }

    fn note_inserts(&self, table: &str, rids: &[RowId], now: f64) {
        let mut guards = self.guards.lock();
        let guard = guards
            .entry(table.to_owned())
            .or_insert_with(|| TableGuard::new(&self.config));
        guard.epoch.get_or_insert(now);
        for rid in rids {
            guard.access.ensure_tracked(rid.raw());
        }
    }

    /// The delay one tuple would currently be charged (without executing a
    /// query) — used by extraction accounting and by operators inspecting
    /// the policy.
    pub fn tuple_delay(&self, table: &str, rid: RowId, now: f64) -> Result<f64> {
        let n = self.table_len(table)?;
        let mut guards = self.guards.lock();
        let guard = guards
            .entry(table.to_owned())
            .or_insert_with(|| TableGuard::new(&self.config));
        let window = guard.window(now);
        Ok(self
            .config
            .policy
            .tuple_delay(&guard.access, &guard.updates, n, rid.raw(), window))
    }

    /// Popularity rank of a tuple (1 = most popular), if the table has been
    /// observed.
    pub fn popularity_rank(&self, table: &str, rid: RowId) -> Option<usize> {
        let guards = self.guards.lock();
        guards.get(table).map(|g| g.access.rank(rid.raw()))
    }

    /// Number of accesses recorded against a table.
    pub fn access_events(&self, table: &str) -> u64 {
        let guards = self.guards.lock();
        guards.get(table).map(|g| g.access.events()).unwrap_or(0)
    }

    fn table_len(&self, table: &str) -> Result<u64> {
        let t = self.engine.catalog().table(table)?;
        let len = t.read().len() as u64;
        Ok(len)
    }
}

/// The table a statement touches, if any.
fn statement_table(stmt: &Statement) -> Option<&str> {
    match stmt {
        Statement::Select { table, .. }
        | Statement::Insert { table, .. }
        | Statement::Update { table, .. }
        | Statement::Delete { table, .. }
        | Statement::CreateIndex { table, .. } => Some(table),
        Statement::CreateTable { name, .. } | Statement::DropTable { name } => Some(name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessDelayPolicy;
    use crate::policy::{ChargingModel, GuardPolicy};
    use crate::update::UpdateDelayPolicy;

    fn setup(policy: GuardPolicy) -> GuardedDatabase {
        let config = GuardConfig {
            policy,
            charging: ChargingModel::PerTupleSum,
            access_decay_rate: 1.0,
            update_decay_rate: 1.0,
        };
        let db = GuardedDatabase::new(config);
        db.execute_at("CREATE TABLE items (id INT NOT NULL, body TEXT)", 0.0)
            .unwrap();
        db.execute_at("CREATE UNIQUE INDEX items_pk ON items (id)", 0.0)
            .unwrap();
        for i in 0..100 {
            db.execute_at(&format!("INSERT INTO items VALUES ({i}, 'row-{i}')"), 0.0)
                .unwrap();
        }
        db
    }

    fn access_policy() -> GuardPolicy {
        GuardPolicy::AccessRate(AccessDelayPolicy::new(1.0, 1.0).with_cap(10.0))
    }

    #[test]
    fn first_touch_pays_cap_then_popular_gets_fast() {
        let db = setup(access_policy());
        // Start-up: everything at cap.
        let r = db
            .execute_at("SELECT * FROM items WHERE id = 1", 1.0)
            .unwrap();
        assert_eq!(r.delay_secs, 10.0);
        assert_eq!(r.tuples_charged, 1);
        // Hammer tuple 1; its delay collapses.
        for t in 0..200 {
            db.execute_at("SELECT * FROM items WHERE id = 1", 2.0 + t as f64)
                .unwrap();
        }
        let fast = db
            .execute_at("SELECT * FROM items WHERE id = 1", 300.0)
            .unwrap();
        assert!(fast.delay_secs < 0.1, "got {}", fast.delay_secs);
        // An unrequested tuple still pays the cap.
        let slow = db
            .execute_at("SELECT * FROM items WHERE id = 77", 301.0)
            .unwrap();
        assert_eq!(slow.delay_secs, 10.0);
    }

    #[test]
    fn multi_tuple_query_charged_as_aggregate() {
        let db = setup(access_policy());
        let r = db
            .execute_at("SELECT * FROM items WHERE id < 5", 1.0)
            .unwrap();
        assert_eq!(r.tuples_charged, 5);
        assert_eq!(r.delay_secs, 50.0, "5 unknown tuples at the 10s cap");
    }

    #[test]
    fn per_query_max_charging() {
        let config = GuardConfig {
            policy: access_policy(),
            charging: ChargingModel::PerQueryMax,
            access_decay_rate: 1.0,
            update_decay_rate: 1.0,
        };
        let db = GuardedDatabase::new(config);
        db.execute_at("CREATE TABLE t (id INT)", 0.0).unwrap();
        for i in 0..10 {
            db.execute_at(&format!("INSERT INTO t VALUES ({i})"), 0.0)
                .unwrap();
        }
        let r = db.execute_at("SELECT * FROM t", 1.0).unwrap();
        assert_eq!(r.delay_secs, 10.0, "max, not sum");
    }

    #[test]
    fn update_policy_tracks_update_rates() {
        let db = setup(GuardPolicy::UpdateRate(
            UpdateDelayPolicy::new(1.0).with_cap(10.0),
        ));
        // Update tuple 1 frequently over 100 seconds.
        for t in 0..100 {
            db.execute_at("UPDATE items SET body = 'fresh' WHERE id = 1", t as f64)
                .unwrap();
        }
        let hot = db
            .execute_at("SELECT * FROM items WHERE id = 1", 100.0)
            .unwrap();
        let cold = db
            .execute_at("SELECT * FROM items WHERE id = 50", 100.0)
            .unwrap();
        assert!(hot.delay_secs < 0.1, "hot {}", hot.delay_secs);
        assert_eq!(cold.delay_secs, 10.0, "never-updated pays cap");
    }

    #[test]
    fn none_policy_charges_nothing_but_tracks() {
        let db = setup(GuardPolicy::None);
        let r = db
            .execute_at("SELECT * FROM items WHERE id = 3", 1.0)
            .unwrap();
        assert_eq!(r.delay_secs, 0.0);
        assert_eq!(db.access_events("items"), 1);
    }

    #[test]
    fn popularity_rank_reflects_traffic() {
        let db = setup(access_policy());
        for _ in 0..50 {
            db.execute_at("SELECT * FROM items WHERE id = 9", 1.0)
                .unwrap();
        }
        db.execute_at("SELECT * FROM items WHERE id = 8", 2.0)
            .unwrap();
        // Find rid of tuple 9 via a query.
        let out = db
            .execute_at("SELECT * FROM items WHERE id = 9", 3.0)
            .unwrap();
        let rid = match &out.output {
            StatementOutput::Rows(rows) => rows.rows[0].0,
            other => panic!("{other:?}"),
        };
        assert_eq!(db.popularity_rank("items", rid), Some(1));
    }

    #[test]
    fn non_row_statements_are_free() {
        let db = setup(access_policy());
        let r = db
            .execute_at("DELETE FROM items WHERE id = 99", 1.0)
            .unwrap();
        assert_eq!(r.delay_secs, 0.0);
        let r = db
            .execute_at("INSERT INTO items VALUES (500, 'x')", 1.0)
            .unwrap();
        assert_eq!(r.delay_secs, 0.0);
    }

    #[test]
    fn deadline_api_exposes_per_tuple_schedule() {
        let db = setup(access_policy());
        let r = db
            .execute_with_deadline("SELECT * FROM items WHERE id < 3")
            .unwrap();
        assert_eq!(
            r.tuple_delays,
            vec![10.0, 10.0, 10.0],
            "3 cold tuples at cap"
        );
        // PerTupleSum streams at prefix sums; the query deadline is the sum.
        assert_eq!(r.tuple_offsets, vec![10.0, 20.0, 30.0]);
        assert_eq!(r.delay_secs, 30.0);
        let deadlines: Vec<_> = r.tuple_deadlines().collect();
        assert_eq!(deadlines.len(), 3);
        assert!(deadlines.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*deadlines.last().unwrap(), r.deadline());
        let summary = r.into_response();
        assert_eq!(summary.tuples_charged, 3);
        assert_eq!(summary.delay_secs, 30.0);
    }

    #[test]
    fn deadline_offsets_under_max_charging() {
        let config = GuardConfig {
            policy: access_policy(),
            charging: ChargingModel::PerQueryMax,
            access_decay_rate: 1.0,
            update_decay_rate: 1.0,
        };
        let db = GuardedDatabase::new(config);
        db.execute_at("CREATE TABLE t (id INT)", 0.0).unwrap();
        for i in 0..4 {
            db.execute_at(&format!("INSERT INTO t VALUES ({i})"), 0.0)
                .unwrap();
        }
        let r = db.execute_with_deadline("SELECT * FROM t").unwrap();
        // Every tuple releases at its own delay; completion at the max.
        assert_eq!(r.tuple_offsets, r.tuple_delays);
        assert_eq!(r.delay_secs, 10.0);
    }

    #[test]
    fn blocking_wrapper_matches_deadline_path() {
        // Zero-delay policy: the wrapper must not sleep and must agree
        // with the non-blocking result shape.
        let db = setup(GuardPolicy::None);
        let start = Instant::now();
        let r = db
            .execute_blocking("SELECT * FROM items WHERE id = 1")
            .unwrap();
        assert!(start.elapsed() < Duration::from_secs(1));
        assert_eq!(r.delay_secs, 0.0);
        assert_eq!(r.tuples_charged, 1);
    }

    #[test]
    fn errors_propagate() {
        let db = setup(access_policy());
        assert!(db.execute_at("SELECT * FROM missing", 0.0).is_err());
        assert!(db.execute_at("NOT SQL AT ALL", 0.0).is_err());
    }
}
