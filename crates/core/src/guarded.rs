//! The guarded database: the paper's scheme wrapped around the engine.
//!
//! [`GuardedDatabase`] executes SQL through [`delayguard_query::Engine`]
//! and, for every *returned tuple*, (a) charges a delay according to the
//! configured [`GuardPolicy`] and (b) records the access in the table's
//! popularity tracker. Updates feed the update-rate tracker; inserts
//! pre-register tuples at zero popularity (start-up transient, §2.3).
//!
//! The computed delay is *returned*, not slept, so simulations can account
//! years of adversary delay instantly. Deployments enforce it through
//! [`GuardedDatabase::execute_with_deadline`], which converts the policy's
//! per-tuple delays into [`Clock`]-relative nanosecond deadlines the
//! caller (a server event loop, a timer wheel, ...) schedules however it
//! likes;
//! [`GuardedDatabase::execute_blocking`] is the trivial enforcement —
//! sleep until the query deadline — kept for library callers.
//!
//! # Concurrency model
//!
//! Guard state is split into a **read-mostly snapshot path** and a
//! **write-behind count path** so concurrent queries never contend on a
//! global lock:
//!
//! * The authoritative per-table [`TableGuard`]s live in hash-sharded
//!   mutexes ([`GuardConfig::shards`]); only the refresher and the exact
//!   virtual-time path touch them.
//! * The wall-clock path ([`ReadPath::Snapshot`], the default for
//!   `execute_with_deadline`) prices every tuple from an immutable
//!   [`PolicySnapshot`] behind an atomic-swap cell and records accesses
//!   into a lock-free [`ShardedEventQueue`] — zero locked work beyond the
//!   snapshot load.
//! * A refresher — the server's background thread, or any query thread
//!   that trips the [`SnapshotPolicy`] staleness bounds (then via a
//!   non-blocking `try_lock`, so queries never wait) — drains the queue
//!   into the trackers *in global sequence order* (preserving the decay
//!   inflated-increment arithmetic exactly) and publishes a new snapshot.
//!
//! The virtual-time simulation path (`execute_at`) keeps exact
//! sequential semantics: it applies pending events and then works under
//! the table's shard lock, so every existing experiment reproduces
//! bit-for-bit. After at most one refresh epoch the snapshot path's
//! master state — and therefore its delays — converges to exactly what
//! the sequential path would have produced for the same event sequence
//! (asserted in `tests/snapshot_concurrency.rs`).

use crate::access::PackedScalars;
use crate::clock::{nanos_to_secs, secs_to_nanos, Clock, RealClock};
use crate::config::GuardConfig;
use crate::error::Result;
use crate::policy::{ChargingModel, GuardPolicy};
use crate::replica::{tag_remote_key, ReplicaDelta, TableDelta};
use crate::snapshot::{
    empty_table_snapshot, PolicySnapshot, ReadPath, SnapshotStats, TableSnapshot,
};
use arc_swap::ArcSwap;
use delayguard_popularity::{DecaySchedule, FrequencyTracker, ShardedEventQueue};
use delayguard_query::ast::Statement;
use delayguard_query::{
    parse, Engine, ExecScratch, PreparedSelect, RowBuf, SelectCursor, SelectOutput,
    StatementOutput, StreamedStatement,
};
use delayguard_storage::{Row, RowId};
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-table guard state.
struct TableGuard {
    access: FrequencyTracker,
    updates: FrequencyTracker,
    /// Virtual time when this table first came under observation; the
    /// update-rate window is measured from here.
    epoch: Option<f64>,
    /// Mutated since the last snapshot rebuild (cleared by the rebuild,
    /// which re-clones dirty tables only).
    dirty: bool,
}

impl TableGuard {
    fn new(config: &GuardConfig) -> TableGuard {
        TableGuard {
            access: FrequencyTracker::new(DecaySchedule::new(config.access_decay_rate)),
            updates: FrequencyTracker::new(DecaySchedule::new(config.update_decay_rate)),
            epoch: None,
            dirty: false,
        }
    }

    fn window(&self, now: f64) -> f64 {
        match self.epoch {
            Some(e) => (now - e).max(1e-9),
            None => 1e-9,
        }
    }
}

/// The latest cumulative state received from one remote origin
/// (replace-if-newer by `seq`; see [`crate::replica`]).
#[derive(Default)]
struct RemoteState {
    seq: u64,
    tables: BTreeMap<String, TableDelta>,
}

/// Build one table's published snapshot: the local guard's trackers plus
/// every remote origin's latest cumulative delta, folded in ascending
/// origin order. Full-state replace upstream plus this fixed fold order
/// makes the result independent of delta arrival order — the same set of
/// per-origin states always rebuilds bit-identically.
fn merged_table_snapshot(
    guard: &TableGuard,
    name: &str,
    remote: &BTreeMap<u16, RemoteState>,
    policy: &GuardPolicy,
) -> TableSnapshot {
    let mut access = guard.access.clone();
    let mut updates = guard.updates.clone();
    let mut extra_rows = 0u64;
    let mut epoch = guard.epoch;
    for (&origin, state) in remote.iter() {
        if let Some(td) = state.tables.get(name) {
            for &(key, units) in &td.accesses {
                access.record_static_weighted(tag_remote_key(origin, key), units);
            }
            for &(key, units) in &td.updates {
                updates.record_static_weighted(tag_remote_key(origin, key), units);
            }
            extra_rows += td.rows;
            epoch = match (epoch, td.epoch) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
    }
    // Pure access-rate pricing depends only on the frozen tracker, so it
    // can be flattened once per rebuild; update-rate and hybrid delays
    // depend on the per-query window and keep the generic tracker walk.
    let packed_access = match policy {
        GuardPolicy::AccessRate(p) => Some(p.pack(&access)),
        _ => None,
    };
    TableSnapshot {
        access,
        updates,
        epoch,
        extra_rows,
        packed_access,
    }
}

/// One recorded guard mutation, queued by the snapshot path and applied
/// by the refresher. A whole statement's keys ride in one event so the
/// queue sees one push per query, not one per row.
struct AccessEvent {
    table: Arc<str>,
    now_secs: f64,
    kind: EventKind,
}

enum EventKind {
    /// Rows returned by a SELECT: record accesses.
    Select(Vec<u64>),
    /// Rows touched by an UPDATE: record update events.
    Update(Vec<u64>),
    /// Rows inserted: pre-register at zero popularity (§2.3).
    Insert(Vec<u64>),
}

impl EventKind {
    fn len(&self) -> usize {
        match self {
            EventKind::Select(keys) | EventKind::Update(keys) | EventKind::Insert(keys) => {
                keys.len()
            }
        }
    }
}

/// Outcome of a guarded statement.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardedResponse {
    /// The engine's output (rows, affected RowIds, ...).
    pub output: StatementOutput,
    /// Total delay charged to this statement, in seconds.
    pub delay_secs: f64,
    /// How many tuples contributed to the delay.
    pub tuples_charged: usize,
}

/// Outcome of a guarded statement with clock enforcement deadlines.
///
/// Returned by [`GuardedDatabase::execute_with_deadline`]: instead of
/// sleeping, the guard hands the caller the [`Clock`]-relative nanosecond
/// times before which each tuple (and the statement as a whole) must not
/// be released. A server schedules these on a timer wheel; a simple
/// caller sleeps until [`DeadlineResponse::deadline_nanos`]. All times
/// are nanoseconds since the guard clock's epoch, so they are meaningful
/// under the real clock and a simulated one alike.
#[derive(Debug, Clone)]
pub struct DeadlineResponse {
    /// The engine's output (rows, affected RowIds, ...).
    pub output: StatementOutput,
    /// Raw per-tuple policy delays in row order, in seconds.
    pub tuple_delays: Vec<f64>,
    /// Per-tuple release offsets from `issued_at_nanos`, in seconds,
    /// under the configured charging model: `PerTupleSum` streams tuples
    /// at prefix sums (the query completes after the sum), `PerQueryMax`
    /// releases each tuple at its own delay (the query completes at the
    /// max).
    pub tuple_offsets: Vec<f64>,
    /// Total delay charged to the statement, in seconds (the largest
    /// tuple offset).
    pub delay_secs: f64,
    /// Guard-clock time when the statement was executed, in nanoseconds;
    /// all offsets are relative to this.
    pub issued_at_nanos: u64,
}

impl DeadlineResponse {
    /// The guard-clock time (nanoseconds) at which the whole statement
    /// may complete.
    pub fn deadline_nanos(&self) -> u64 {
        self.issued_at_nanos
            .saturating_add(secs_to_nanos(self.delay_secs))
    }

    /// Per-tuple guard-clock release times (nanoseconds), in row order.
    pub fn tuple_deadline_nanos(&self) -> impl Iterator<Item = u64> + '_ {
        self.tuple_offsets
            .iter()
            .map(move |&off| self.issued_at_nanos.saturating_add(secs_to_nanos(off)))
    }

    /// Collapse to the summary form used by simulations and library code.
    pub fn into_response(self) -> GuardedResponse {
        GuardedResponse {
            output: self.output,
            delay_secs: self.delay_secs,
            tuples_charged: self.tuple_delays.len(),
        }
    }
}

/// A guarded statement being executed in streaming mode.
///
/// Handed to the closure of [`GuardedDatabase::execute_streaming`]:
/// SELECTs arrive as an open [`DeadlineStream`] to pull and price in
/// chunks; everything else has already run and carries its finished
/// [`DeadlineResponse`] (non-SELECT statements are never delayed, so
/// their deadline is the issue time).
pub enum StreamedQuery<'s, 'c> {
    /// An open, priced SELECT pipeline.
    Rows(DeadlineStream<'s, 'c>),
    /// A non-SELECT statement that already ran to completion.
    Finished(DeadlineResponse),
}

/// A SELECT parsed, planned, and name-interned once for repeated guarded
/// execution via [`GuardedDatabase::execute_prepared_streaming`].
pub struct PreparedQuery {
    inner: PreparedSelect,
    /// The table name shared with every access event this query emits,
    /// so recording an access never copies the string.
    table: Arc<str>,
}

impl PreparedQuery {
    /// The table this query reads.
    pub fn table(&self) -> &str {
        &self.table
    }
}

/// One chunk's worth of pricing, returned by [`DeadlineStream::charge`].
#[derive(Debug, Clone, Default)]
pub struct ChargedChunk {
    /// Raw per-tuple policy delays for the chunk, in row order (seconds).
    pub delays: Vec<f64>,
    /// Per-tuple release offsets from
    /// [`DeadlineStream::issued_at_nanos`], in seconds, under the
    /// configured charging model — the streaming continuation of
    /// [`DeadlineResponse::tuple_offsets`].
    pub offsets: Vec<f64>,
}

/// Pricing state pinned when a [`DeadlineStream`] opens.
///
/// The snapshot path pins the `Arc<TableSnapshot>` (and its window) once
/// so a concurrent refresh cannot reprice a query mid-stream; the locked
/// path re-enters the shard lock per chunk, which is exact because the
/// epoch and `now` are fixed for the whole statement.
enum StreamPricing {
    Locked,
    Snapshot {
        stats: Arc<TableSnapshot>,
        window: f64,
        /// Relation-size scalars for the packed access-rate fast path,
        /// fixed at open when the snapshot carries a pack built for the
        /// active policy. `None` falls back to the generic tracker walk
        /// (identical bits, more cache misses).
        fast: Option<PackedScalars>,
    },
}

/// An open SELECT whose tuples are priced as they are pulled.
///
/// Pull uncharged rows with [`DeadlineStream::next_chunk`], then price
/// and record them with [`DeadlineStream::charge`] — in that order, so a
/// caller that must shed load (a full send queue, say) can refuse the
/// chunk *before* the requester's popularity ledger is charged for it.
/// The charging model folds online: after any prefix of chunks,
/// [`DeadlineStream::delay_secs`] equals exactly what
/// [`DeadlineResponse::delay_secs`] would be for that prefix.
pub struct DeadlineStream<'s, 'c> {
    db: &'s GuardedDatabase,
    cursor: &'s mut SelectCursor<'c>,
    table: Arc<str>,
    /// Table cardinality captured at open (the policy's `n`).
    n: u64,
    now_secs: f64,
    issued_at_nanos: u64,
    pricing: StreamPricing,
    /// Per-query shaping nonce, pinned at open so every chunk of one
    /// statement draws jitter from the same `(seed, nonce, key)` inputs
    /// — chunking cannot change a query's shaped schedule.
    nonce: u64,
    /// Running combine of every delay charged so far: the prefix sum
    /// under `PerTupleSum`, the running max under `PerQueryMax`.
    total_delay_secs: f64,
    tuples_charged: u64,
}

impl DeadlineStream<'_, '_> {
    /// Output column names, in projection order.
    pub fn columns(&self) -> &[String] {
        self.cursor.columns()
    }

    /// Guard-clock time when the statement was issued (nanoseconds); all
    /// offsets are relative to this.
    pub fn issued_at_nanos(&self) -> u64 {
        self.issued_at_nanos
    }

    /// Pull up to `max_rows` projected rows from the executor without
    /// charging them. Returns `None` once the pipeline is exhausted.
    pub fn next_chunk(&mut self, max_rows: usize) -> Result<Option<Vec<(RowId, Row)>>> {
        let mut buf = RowBuf::new();
        if self.next_chunk_into(max_rows, &mut buf)? == 0 {
            Ok(None)
        } else {
            Ok(Some(buf.rows().to_vec()))
        }
    }

    /// Pull up to `max_rows` projected rows into a caller-owned buffer,
    /// reusing its row allocations; returns how many were filled (0 once
    /// the pipeline is exhausted). The steady-state form of
    /// [`DeadlineStream::next_chunk`]: a connection that recycles its
    /// [`RowBuf`] decodes every tuple into storage it already owns.
    pub fn next_chunk_into(&mut self, max_rows: usize, buf: &mut RowBuf) -> Result<usize> {
        Ok(self.cursor.fill_chunk(max_rows.max(1), buf)?)
    }

    /// Price a pulled chunk and record its accesses in the popularity
    /// ledger, folding the delays into the running charging model.
    pub fn charge(&mut self, rows: &[(RowId, Row)]) -> ChargedChunk {
        let mut out = ChargedChunk {
            delays: Vec::new(),
            offsets: Vec::new(),
        };
        self.charge_into(rows, &mut out);
        out
    }

    /// [`DeadlineStream::charge`] into a caller-owned chunk, reusing its
    /// vectors. On the snapshot read path the only allocation left is
    /// the access event itself (one queue node and one key vector per
    /// chunk — the record the refresher folds into the trackers).
    pub fn charge_into(&mut self, rows: &[(RowId, Row)], out: &mut ChargedChunk) {
        out.delays.clear();
        out.offsets.clear();
        // Shaping wraps every raw policy delay *before* the charging-model
        // fold below, so deadlines, DONE trailers, the server wheel and
        // the cluster all speak the shaped schedule. With shaping off,
        // `shape` is the bit-exact identity.
        let shaping = self.db.config.shaping;
        let nonce = self.nonce;
        match &self.pricing {
            StreamPricing::Snapshot {
                stats,
                window,
                fast,
            } => {
                let mut keys = Vec::with_capacity(rows.len());
                match (fast, stats.packed_access.as_ref()) {
                    (Some(scalars), Some(packed)) => {
                        // Chunks from range scans arrive in key order, so
                        // a positional hint prices each tuple in O(1).
                        let mut hint = 0usize;
                        for (rid, _) in rows {
                            let key = rid.raw();
                            let raw = packed.delay_seq(scalars, key, &mut hint);
                            out.delays.push(shaping.shape(raw, nonce, key));
                            keys.push(key);
                        }
                    }
                    _ => {
                        for (rid, _) in rows {
                            let key = rid.raw();
                            let raw = self.db.config.policy.tuple_delay(
                                &stats.access,
                                &stats.updates,
                                self.n,
                                key,
                                *window,
                            );
                            out.delays.push(shaping.shape(raw, nonce, key));
                            keys.push(key);
                        }
                    }
                }
                if !keys.is_empty() {
                    self.db.queue.push(AccessEvent {
                        table: Arc::clone(&self.table),
                        now_secs: self.now_secs,
                        kind: EventKind::Select(keys),
                    });
                }
            }
            StreamPricing::Locked => out.delays.extend(self.db.charge_chunk_locked(
                &self.table,
                rows.iter().map(|(rid, _)| *rid),
                self.now_secs,
                self.n,
                nonce,
            )),
        }
        out.offsets.reserve(out.delays.len());
        for &d in &out.delays {
            match self.db.config.charging {
                ChargingModel::PerTupleSum => {
                    self.total_delay_secs += d;
                    out.offsets.push(self.total_delay_secs);
                }
                ChargingModel::PerQueryMax => {
                    self.total_delay_secs = self.total_delay_secs.max(d);
                    out.offsets.push(d);
                }
            }
        }
        self.tuples_charged += out.delays.len() as u64;
    }

    /// Total delay charged so far, in seconds (the statement-level
    /// combine over every chunk charged to date).
    pub fn delay_secs(&self) -> f64 {
        self.total_delay_secs
    }

    /// Tuples charged so far.
    pub fn tuples_charged(&self) -> u64 {
        self.tuples_charged
    }

    /// The guard-clock time (nanoseconds) before which the statement, as
    /// charged so far, must not complete.
    pub fn deadline_nanos(&self) -> u64 {
        self.issued_at_nanos
            .saturating_add(secs_to_nanos(self.total_delay_secs))
    }
}

/// Release offsets for each tuple under a charging model (see
/// [`DeadlineResponse::tuple_offsets`]).
#[cfg(test)]
fn release_offsets(charging: ChargingModel, delays: &[f64]) -> Vec<f64> {
    match charging {
        ChargingModel::PerTupleSum => {
            let mut acc = 0.0;
            delays
                .iter()
                .map(|d| {
                    acc += d;
                    acc
                })
                .collect()
        }
        ChargingModel::PerQueryMax => delays.to_vec(),
    }
}

/// A database whose front door is defended by delay.
pub struct GuardedDatabase {
    engine: Engine,
    config: GuardConfig,
    /// Authoritative per-table guard state, hash-sharded by table name.
    shards: Box<[Mutex<HashMap<String, TableGuard>>]>,
    /// Lock-free record queue filled by the snapshot path.
    queue: ShardedEventQueue<AccessEvent>,
    /// The immutable read view, atomically replaced by the refresher.
    snapshot: ArcSwap<PolicySnapshot>,
    /// Serializes drain/apply/rebuild. Query threads only ever `try_lock`
    /// it, so the hot path never blocks here.
    refresh_lock: Mutex<()>,
    /// Bumped on every master-tracker mutation; snapshots record the value
    /// they reflect so staleness from the exact path is detectable.
    mutations: AtomicU64,
    rebuilds: AtomicU64,
    events_applied: AtomicU64,
    /// Latest cumulative delta per remote origin (cluster replication).
    /// Locked only on the delta-sync path and during snapshot rebuilds —
    /// never by query threads.
    remote: Mutex<BTreeMap<u16, RemoteState>>,
    /// Bumped whenever `remote` changes; the refresher compares it
    /// against `remote_applied` to know merged snapshots need a rebuild.
    remote_version: AtomicU64,
    /// `remote_version` value the current snapshot generation reflects
    /// (written only under `refresh_lock`).
    remote_applied: AtomicU64,
    /// Monotone per-statement counter feeding the shaping jitter hash:
    /// each statement (or open stream) draws one nonce, so re-querying
    /// the same tuple re-draws its jitter. Only advanced when shaping is
    /// enabled, keeping the unshaped hot path untouched.
    shaping_nonce: AtomicU64,
    /// The guard's one time source: every deadline-path read goes through
    /// here, so a simulated clock makes the whole guard deterministic.
    clock: Arc<dyn Clock>,
}

impl GuardedDatabase {
    /// A guarded database over a fresh engine.
    pub fn new(config: GuardConfig) -> GuardedDatabase {
        GuardedDatabase::with_engine(Engine::new(), config)
    }

    /// Guard an existing engine (e.g. with pre-loaded data).
    pub fn with_engine(engine: Engine, config: GuardConfig) -> GuardedDatabase {
        GuardedDatabase::with_engine_and_clock(engine, config, RealClock::shared())
    }

    /// Guard an existing engine reading time from an explicit [`Clock`]
    /// (the deterministic-simulation entry point).
    pub fn with_engine_and_clock(
        engine: Engine,
        config: GuardConfig,
        clock: Arc<dyn Clock>,
    ) -> GuardedDatabase {
        let shard_count = config.shards.max(1).next_power_of_two();
        let shards = (0..shard_count)
            .map(|_| Mutex::new(HashMap::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        GuardedDatabase {
            engine,
            queue: ShardedEventQueue::new(shard_count),
            snapshot: ArcSwap::from_pointee(PolicySnapshot::empty()),
            refresh_lock: Mutex::new(()),
            mutations: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
            events_applied: AtomicU64::new(0),
            remote: Mutex::new(BTreeMap::new()),
            remote_version: AtomicU64::new(0),
            remote_applied: AtomicU64::new(0),
            shaping_nonce: AtomicU64::new(0),
            config,
            shards,
            clock,
        }
    }

    /// The underlying engine (unguarded access for administration).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The guard configuration.
    pub fn config(&self) -> &GuardConfig {
        &self.config
    }

    /// Seconds since the guard clock's epoch (the time source every
    /// deadline-path operation uses).
    pub fn now_secs(&self) -> f64 {
        self.clock.now_secs()
    }

    /// The guard's time source (shared with servers so scheduler
    /// deadlines and guard deadlines live on the same clock).
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }

    /// Draw the shaping nonce for one statement. A no-op zero when
    /// shaping is disabled so the unshaped pipeline stays bit-identical
    /// (and free of the extra atomic).
    fn next_shaping_nonce(&self) -> u64 {
        if self.config.shaping.enabled {
            self.shaping_nonce.fetch_add(1, Ordering::Relaxed)
        } else {
            0
        }
    }

    fn shard(&self, table: &str) -> &Mutex<HashMap<String, TableGuard>> {
        let mut h = DefaultHasher::new();
        table.hash(&mut h);
        &self.shards[(h.finish() as usize) & (self.shards.len() - 1)]
    }

    // ---- execution entry points -----------------------------------------

    /// Execute at an explicit virtual time (simulation entry point).
    /// Always uses the exact locked path, so simulations are sequential
    /// and deterministic regardless of [`GuardConfig::read_path`].
    pub fn execute_at(&self, sql: &str, now_secs: f64) -> Result<GuardedResponse> {
        let stmt = parse(sql)?;
        self.execute_stmt_at(&stmt, now_secs)
    }

    /// Execute a pre-parsed statement at a virtual time (exact path).
    pub fn execute_stmt_at(&self, stmt: &Statement, now_secs: f64) -> Result<GuardedResponse> {
        let (output, tuple_delays) =
            self.execute_stmt_detailed(stmt, now_secs, ReadPath::Locked)?;
        let delay_secs = self.config.charging.combine(tuple_delays.iter().copied());
        Ok(GuardedResponse {
            output,
            delay_secs,
            tuples_charged: tuple_delays.len(),
        })
    }

    /// Execute at an explicit virtual time over the snapshot read path
    /// (benches and staleness tests; servers use
    /// [`Self::execute_with_deadline`]).
    pub fn execute_snapshot_at(&self, sql: &str, now_secs: f64) -> Result<GuardedResponse> {
        let stmt = parse(sql)?;
        let (output, tuple_delays) =
            self.execute_stmt_detailed(&stmt, now_secs, ReadPath::Snapshot)?;
        self.maybe_refresh();
        let delay_secs = self.config.charging.combine(tuple_delays.iter().copied());
        Ok(GuardedResponse {
            output,
            delay_secs,
            tuples_charged: tuple_delays.len(),
        })
    }

    /// Execute, recording accesses and computing the per-tuple delays the
    /// policy charges, without sleeping or combining.
    fn execute_stmt_detailed(
        &self,
        stmt: &Statement,
        now_secs: f64,
        path: ReadPath,
    ) -> Result<(StatementOutput, Vec<f64>)> {
        let output = self.engine.execute_stmt(stmt)?;
        let table = statement_table(stmt);
        let nonce = self.next_shaping_nonce();
        let tuple_delays = match (&output, table) {
            (StatementOutput::Rows(rows), Some(table)) => match path {
                ReadPath::Locked => {
                    self.charge_select_locked(table, rows.row_ids(), now_secs, nonce)?
                }
                ReadPath::Snapshot => {
                    self.charge_select_snapshot(table, rows.row_ids(), now_secs, nonce)?
                }
            },
            (StatementOutput::Updated { rids }, Some(table)) => {
                self.note_rows(table, rids, now_secs, path, RowNote::Update);
                Vec::new()
            }
            (StatementOutput::Inserted { rids }, Some(table)) => {
                self.note_rows(table, rids, now_secs, path, RowNote::Insert);
                Vec::new()
            }
            // A delete changes the tuple's value (to "gone") — for the §3
            // staleness guarantee it is an update event like any other.
            (StatementOutput::Deleted { rids }, Some(table)) => {
                self.note_rows(table, rids, now_secs, path, RowNote::Update);
                Vec::new()
            }
            _ => Vec::new(),
        };
        Ok((output, tuple_delays))
    }

    /// Execute using wall-clock time since the guard was created (exact
    /// locked path, like every virtual-time entry point).
    pub fn execute(&self, sql: &str) -> Result<GuardedResponse> {
        self.execute_at(sql, self.now_secs())
    }

    /// Execute at wall-clock time and return enforcement deadlines instead
    /// of sleeping: the single shared path for servers (which schedule the
    /// deadlines on a timer wheel) and for [`Self::execute_blocking`].
    /// Routed through [`GuardConfig::read_path`] — by default the
    /// lock-free snapshot path.
    pub fn execute_with_deadline(&self, sql: &str) -> Result<DeadlineResponse> {
        let stmt = parse(sql)?;
        self.execute_stmt_with_deadline(&stmt)
    }

    /// [`Self::execute_with_deadline`] over a pre-parsed statement.
    ///
    /// Implemented as a single-chunk drain of the streaming pipeline, so
    /// the materialized and streaming paths cannot diverge: identical
    /// rows, identical delays, identical offsets, one access event.
    pub fn execute_stmt_with_deadline(&self, stmt: &Statement) -> Result<DeadlineResponse> {
        self.execute_stmt_streaming(stmt, |query| match query {
            StreamedQuery::Rows(mut stream) => {
                let columns = stream.columns().to_vec();
                let mut rows = Vec::new();
                let mut tuple_delays = Vec::new();
                let mut tuple_offsets = Vec::new();
                loop {
                    match stream.next_chunk(usize::MAX) {
                        Ok(Some(chunk)) => {
                            let charged = stream.charge(&chunk);
                            tuple_delays.extend(charged.delays);
                            tuple_offsets.extend(charged.offsets);
                            rows.extend(chunk);
                        }
                        Ok(None) => break,
                        Err(e) => return Err(e),
                    }
                }
                Ok(DeadlineResponse {
                    output: StatementOutput::Rows(SelectOutput { columns, rows }),
                    tuple_delays,
                    tuple_offsets,
                    delay_secs: stream.delay_secs(),
                    issued_at_nanos: stream.issued_at_nanos(),
                })
            }
            StreamedQuery::Finished(resp) => Ok(resp),
        })?
    }

    /// Parse and execute one statement in streaming mode. See
    /// [`Self::execute_stmt_streaming`].
    pub fn execute_streaming<R>(
        &self,
        sql: &str,
        f: impl FnOnce(StreamedQuery<'_, '_>) -> R,
    ) -> Result<R> {
        let stmt = parse(sql)?;
        self.execute_stmt_streaming(&stmt, f)
    }

    /// Execute a statement in streaming mode: a SELECT is handed to `f`
    /// as an open [`DeadlineStream`] that prices tuples chunk by chunk as
    /// they are pulled from the executor, instead of materializing and
    /// pricing the whole result up front.
    ///
    /// Pricing state (table cardinality, the policy snapshot and its
    /// window on the default read path) is pinned when the stream opens,
    /// so a query's delays are independent of how it is chunked; a stream
    /// dropped mid-result charges — and records in the popularity
    /// trackers — exactly the tuples that were passed to
    /// [`DeadlineStream::charge`], nothing more. The underlying table
    /// lock is held for the duration of `f`, as it is for a materialized
    /// execution, so `f` must not call back into this database.
    pub fn execute_stmt_streaming<R>(
        &self,
        stmt: &Statement,
        f: impl FnOnce(StreamedQuery<'_, '_>) -> R,
    ) -> Result<R> {
        // One clock read: `issued_at_nanos` (deadline base) and `now_secs`
        // (popularity timestamp) must agree or simulated replays drift.
        let issued_at_nanos = self.clock.now_nanos();
        let now_secs = nanos_to_secs(issued_at_nanos);
        let path = self.config.read_path;
        let nonce = self.next_shaping_nonce();
        let table = statement_table(stmt).map(str::to_owned);
        let result = self
            .engine
            .execute_stmt_streaming(stmt, |streamed| match streamed {
                StreamedStatement::Rows(cursor) => {
                    let table: Arc<str> = Arc::from(table.clone().unwrap_or_default());
                    // The policy's `n` comes from the cursor, not
                    // `Self::table_len`: the engine already holds the table's
                    // write lock, so re-reading the catalog here would
                    // self-deadlock. A SELECT never changes cardinality, so
                    // the open-time capture equals the materialized value.
                    // On the snapshot path, peers' replicated row counts
                    // are added so `n` is the global table size.
                    let mut n = cursor.table_rows();
                    let pricing = self.open_pricing(path, &table, now_secs, &mut n);
                    f(StreamedQuery::Rows(DeadlineStream {
                        db: self,
                        cursor,
                        table,
                        n,
                        now_secs,
                        issued_at_nanos,
                        pricing,
                        nonce,
                        total_delay_secs: 0.0,
                        tuples_charged: 0,
                    }))
                }
                StreamedStatement::Finished(out) => {
                    let output = std::mem::replace(out, StatementOutput::TableCreated);
                    match (&output, table.as_deref()) {
                        (StatementOutput::Updated { rids }, Some(t)) => {
                            self.note_rows(t, rids, now_secs, path, RowNote::Update)
                        }
                        (StatementOutput::Inserted { rids }, Some(t)) => {
                            self.note_rows(t, rids, now_secs, path, RowNote::Insert)
                        }
                        // Deletes are update events for §3 staleness.
                        (StatementOutput::Deleted { rids }, Some(t)) => {
                            self.note_rows(t, rids, now_secs, path, RowNote::Update)
                        }
                        _ => {}
                    }
                    f(StreamedQuery::Finished(DeadlineResponse {
                        output,
                        tuple_delays: Vec::new(),
                        tuple_offsets: Vec::new(),
                        delay_secs: 0.0,
                        issued_at_nanos,
                    }))
                }
            })?;
        if path == ReadPath::Snapshot {
            self.maybe_refresh();
        }
        Ok(result)
    }

    /// Pin a stream's pricing state at open: on the snapshot path, the
    /// table's frozen statistics plus — when the snapshot carries a
    /// packed access table built for the active policy — the relation
    /// scalars of the allocation-free fast path. Grows `n` by peers'
    /// replicated rows so Eq. 1 sees the global table size.
    fn open_pricing(
        &self,
        path: ReadPath,
        table: &str,
        now_secs: f64,
        n: &mut u64,
    ) -> StreamPricing {
        match path {
            ReadPath::Locked => StreamPricing::Locked,
            ReadPath::Snapshot => {
                let snap = self.snapshot.load_full();
                let stats = match snap.table(table) {
                    Some(t) => Arc::clone(t),
                    None => empty_table_snapshot(),
                };
                let window = stats.window(now_secs);
                *n += stats.extra_rows;
                let fast = match (&self.config.policy, &stats.packed_access) {
                    (GuardPolicy::AccessRate(p), Some(packed)) if packed.matches(p) => {
                        Some(packed.scalars(*n))
                    }
                    _ => None,
                };
                StreamPricing::Snapshot {
                    stats,
                    window,
                    fast,
                }
            }
        }
    }

    /// Prepare a SELECT for repeated guarded execution: parsed, planned,
    /// and its table name interned once. Re-run it with
    /// [`Self::execute_prepared_streaming`]; the plan revalidates (and
    /// transparently replans) against the table's DDL version on every
    /// execution.
    pub fn prepare(&self, sql: &str) -> Result<PreparedQuery> {
        let inner = self.engine.prepare_select(sql)?;
        let table: Arc<str> = Arc::from(inner.table());
        Ok(PreparedQuery { inner, table })
    }

    /// Execute a prepared SELECT in streaming mode: the steady-state hot
    /// path. Identical pricing, recording, and results to
    /// [`Self::execute_stmt_streaming`] on the same statement — but no
    /// parse, no plan, no per-query scratch: the cursor fills rows into
    /// `scratch`'s recycled buffers and the access event reuses the
    /// prepared table name.
    pub fn execute_prepared_streaming<R>(
        &self,
        prep: &mut PreparedQuery,
        scratch: &mut ExecScratch,
        f: impl FnOnce(DeadlineStream<'_, '_>) -> R,
    ) -> Result<R> {
        // One clock read, exactly like the ad-hoc path.
        let issued_at_nanos = self.clock.now_nanos();
        let now_secs = nanos_to_secs(issued_at_nanos);
        let path = self.config.read_path;
        let nonce = self.next_shaping_nonce();
        let table = Arc::clone(&prep.table);
        let result =
            self.engine
                .execute_prepared_streaming(&mut prep.inner, scratch, |streamed| {
                    let StreamedStatement::Rows(cursor) = streamed else {
                        unreachable!("prepared statements are always SELECTs");
                    };
                    let mut n = cursor.table_rows();
                    let pricing = self.open_pricing(path, &table, now_secs, &mut n);
                    f(DeadlineStream {
                        db: self,
                        cursor,
                        table,
                        n,
                        now_secs,
                        issued_at_nanos,
                        pricing,
                        nonce,
                        total_delay_secs: 0.0,
                        tuples_charged: 0,
                    })
                })?;
        if path == ReadPath::Snapshot {
            self.maybe_refresh();
        }
        Ok(result)
    }

    /// Execute and actually sleep until the deadline (library deployment
    /// mode): a thin wrapper over [`Self::execute_with_deadline`].
    pub fn execute_blocking(&self, sql: &str) -> Result<GuardedResponse> {
        let resp = self.execute_with_deadline(sql)?;
        self.clock.sleep_until_nanos(resp.deadline_nanos());
        Ok(resp.into_response())
    }

    // ---- exact (locked) path --------------------------------------------

    /// Compute the per-tuple delays for a set of returned tuples, then
    /// record their accesses — exact sequential semantics under the
    /// table's shard lock.
    fn charge_select_locked(
        &self,
        table: &str,
        rids: impl Iterator<Item = RowId>,
        now: f64,
        nonce: u64,
    ) -> Result<Vec<f64>> {
        let n = self.table_len(table)?;
        Ok(self.charge_chunk_locked(table, rids, now, n, nonce))
    }

    /// Exact-path pricing for one chunk of returned tuples, with the
    /// table cardinality supplied by the caller (the streaming path reads
    /// it off the open cursor because the engine still holds the table
    /// lock). `now` and the guard epoch are fixed per statement, so
    /// chunked calls are bit-identical to one whole-result call.
    fn charge_chunk_locked(
        &self,
        table: &str,
        rids: impl Iterator<Item = RowId>,
        now: f64,
        n: u64,
        nonce: u64,
    ) -> Vec<f64> {
        // Events queued by snapshot-path traffic precede this statement;
        // fold them in first so the trackers are exact.
        self.apply_pending();
        let mut guards = self.shard(table).lock();
        let guard = guards
            .entry(table.to_owned())
            .or_insert_with(|| TableGuard::new(&self.config));
        guard.epoch.get_or_insert(now);
        let window = guard.window(now);
        let mut delays = Vec::new();
        for rid in rids {
            let key = rid.raw();
            // Delay reflects popularity *before* this access.
            let d = self
                .config
                .policy
                .tuple_delay(&guard.access, &guard.updates, n, key, window);
            delays.push(self.config.shaping.shape(d, nonce, key));
            guard.access.record(key);
        }
        if !delays.is_empty() {
            guard.dirty = true;
            self.mutations
                .fetch_add(delays.len() as u64, Ordering::Release);
        }
        delays
    }

    /// Record updates/inserts on either path.
    fn note_rows(&self, table: &str, rids: &[RowId], now: f64, path: ReadPath, note: RowNote) {
        if rids.is_empty() {
            return;
        }
        match path {
            ReadPath::Locked => {
                self.apply_pending();
                let mut guards = self.shard(table).lock();
                let guard = guards
                    .entry(table.to_owned())
                    .or_insert_with(|| TableGuard::new(&self.config));
                guard.epoch.get_or_insert(now);
                for rid in rids {
                    match note {
                        RowNote::Update => guard.updates.record(rid.raw()),
                        RowNote::Insert => guard.access.ensure_tracked(rid.raw()),
                    }
                }
                guard.dirty = true;
                self.mutations
                    .fetch_add(rids.len() as u64, Ordering::Release);
            }
            ReadPath::Snapshot => {
                let keys: Vec<u64> = rids.iter().map(|r| r.raw()).collect();
                self.queue.push(AccessEvent {
                    table: Arc::from(table),
                    now_secs: now,
                    kind: match note {
                        RowNote::Update => EventKind::Update(keys),
                        RowNote::Insert => EventKind::Insert(keys),
                    },
                });
            }
        }
    }

    // ---- snapshot (lock-free) path --------------------------------------

    /// Price a result set from the immutable snapshot and queue the
    /// access record — no locks taken.
    fn charge_select_snapshot(
        &self,
        table: &str,
        rids: impl Iterator<Item = RowId>,
        now: f64,
        nonce: u64,
    ) -> Result<Vec<f64>> {
        let snap = self.snapshot.load_full();
        let stats: Arc<TableSnapshot> = match snap.table(table) {
            Some(t) => Arc::clone(t),
            None => empty_table_snapshot(),
        };
        let n = self.table_len(table)? + stats.extra_rows;
        let window = stats.window(now);
        let mut delays = Vec::new();
        let mut keys = Vec::new();
        for rid in rids {
            let key = rid.raw();
            let d = self
                .config
                .policy
                .tuple_delay(&stats.access, &stats.updates, n, key, window);
            delays.push(self.config.shaping.shape(d, nonce, key));
            keys.push(key);
        }
        if !keys.is_empty() {
            self.queue.push(AccessEvent {
                table: Arc::from(table),
                now_secs: now,
                kind: EventKind::Select(keys),
            });
        }
        Ok(delays)
    }

    // ---- refresh machinery ----------------------------------------------

    /// Whether the snapshot is stale under the configured bounds.
    fn is_stale(&self) -> bool {
        let pending = self.queue.pending();
        if pending == 0 {
            return false;
        }
        if pending >= self.config.snapshot.max_pending_events {
            return true;
        }
        let snap = self.snapshot.load_full();
        self.now_secs() - snap.built_at_secs >= self.config.snapshot.max_age_secs
    }

    /// Opportunistic refresh: rebuild only if stale, and only if no other
    /// thread is already refreshing (never blocks).
    fn maybe_refresh(&self) {
        if self.is_stale() {
            if let Some(_guard) = self.refresh_lock.try_lock() {
                self.refresh_inner();
            }
        }
    }

    /// Drain the record queue into the authoritative trackers and publish
    /// a fresh [`PolicySnapshot`]. Blocking (but the only contenders are
    /// other refreshers); query threads trip refreshes via the
    /// non-blocking staleness check instead.
    pub fn refresh(&self) {
        let _guard = self.refresh_lock.lock();
        self.refresh_inner();
    }

    /// Apply queued events without rebuilding the snapshot (the exact
    /// path's pre-step). Cheap no-op when nothing is pending.
    fn apply_pending(&self) {
        if self.queue.is_empty() {
            return;
        }
        let _guard = self.refresh_lock.lock();
        self.apply_batch(self.queue.drain());
    }

    /// Apply a drained batch, in global sequence order, to the master
    /// trackers. Caller must hold `refresh_lock`.
    fn apply_batch(&self, batch: Vec<(u64, AccessEvent)>) {
        let mut applied = 0u64;
        for (_seq, ev) in batch {
            applied += ev.kind.len() as u64;
            let mut guards = self.shard(&ev.table).lock();
            let guard = guards
                .entry(ev.table.as_ref().to_owned())
                .or_insert_with(|| TableGuard::new(&self.config));
            guard.epoch.get_or_insert(ev.now_secs);
            match &ev.kind {
                EventKind::Select(keys) => {
                    for &k in keys {
                        guard.access.record(k);
                    }
                }
                EventKind::Update(keys) => {
                    for &k in keys {
                        guard.updates.record(k);
                    }
                }
                EventKind::Insert(keys) => {
                    for &k in keys {
                        guard.access.ensure_tracked(k);
                    }
                }
            }
            guard.dirty = true;
        }
        if applied > 0 {
            self.events_applied.fetch_add(applied, Ordering::Relaxed);
            self.mutations.fetch_add(applied, Ordering::Release);
        }
    }

    /// Drain + apply + rebuild. Caller must hold `refresh_lock`.
    fn refresh_inner(&self) {
        self.apply_batch(self.queue.drain());
        let seen = self.mutations.load(Ordering::Acquire);
        let remote_ver = self.remote_version.load(Ordering::Acquire);
        let remote_changed = remote_ver != self.remote_applied.load(Ordering::Relaxed);
        let old = self.snapshot.load_full();
        let mut tables = old.tables.clone();
        let remote = self.remote.lock();
        if remote_changed {
            // A peer's delta may name tables this node has never seen
            // traffic on; give them a guard so the loop below publishes a
            // merged (remote-only) snapshot for them too.
            let mut names: Vec<&String> = remote.values().flat_map(|s| s.tables.keys()).collect();
            names.sort();
            names.dedup();
            for name in names {
                self.shard(name)
                    .lock()
                    .entry(name.clone())
                    .or_insert_with(|| TableGuard::new(&self.config));
            }
        }
        for shard in self.shards.iter() {
            let mut guards = shard.lock();
            for (name, guard) in guards.iter_mut() {
                let has_remote = remote.values().any(|s| s.tables.contains_key(name));
                if guard.dirty || !tables.contains_key(name) || (remote_changed && has_remote) {
                    tables.insert(
                        name.clone(),
                        Arc::new(merged_table_snapshot(
                            guard,
                            name,
                            &remote,
                            &self.config.policy,
                        )),
                    );
                    guard.dirty = false;
                }
            }
        }
        drop(remote);
        self.remote_applied.store(remote_ver, Ordering::Release);
        self.snapshot.store(Arc::new(PolicySnapshot {
            tables,
            version: old.version + 1,
            built_at_secs: self.now_secs(),
            mutations_seen: seen,
            shaping: self.config.shaping,
        }));
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
    }

    // ---- cluster replication --------------------------------------------

    /// Fold a peer's replication unit into this node's remote store and
    /// republish merged snapshots.
    ///
    /// Deltas are cumulative per-origin full states ([`crate::replica`]):
    /// only a `seq` strictly greater than the stored one replaces the
    /// origin's entry, so replayed, reordered, or duplicated frames are
    /// no-ops and application commutes across origins. Returns whether
    /// the delta was new. The gatekeeper half of a [`ReplicaDelta`] is
    /// merged by the front door, not here.
    pub fn apply_replica_delta(&self, delta: &ReplicaDelta) -> bool {
        {
            let mut remote = self.remote.lock();
            let state = remote.entry(delta.origin).or_default();
            if delta.seq <= state.seq {
                return false;
            }
            state.seq = delta.seq;
            state.tables = delta
                .tables
                .iter()
                .map(|(name, td)| (name.clone(), td.clone()))
                .collect();
        }
        self.remote_version.fetch_add(1, Ordering::Release);
        // Republish eagerly: delta-sync is a cold path, and queries should
        // price from the converged view as soon as the delta lands.
        self.refresh();
        true
    }

    /// Export this node's locally-originated popularity state, one
    /// [`TableDelta`] per table, sorted by name. Only the pure-local
    /// guards are read — remote folds live in published snapshots, never
    /// in the guards — so gossip can never double-count an access.
    /// Tables that exist in the engine but have seen no traffic export
    /// empty trackers with their row count (peers still need them for
    /// the global `n`).
    pub fn export_table_deltas(&self) -> Vec<(String, TableDelta)> {
        self.apply_pending();
        let mut out: BTreeMap<String, TableDelta> = self
            .engine
            .catalog()
            .table_names()
            .into_iter()
            .map(|name| (name, TableDelta::default()))
            .collect();
        for shard in self.shards.iter() {
            let guards = shard.lock();
            for (name, guard) in guards.iter() {
                let td = out.entry(name.clone()).or_default();
                td.accesses = guard.access.export_counts();
                td.updates = guard.updates.export_counts();
                td.epoch = guard.epoch;
            }
        }
        // Row counts read the engine catalog, which locks tables; take
        // them after the guard shard locks are released (queries lock
        // engine → shard, so the reverse order here could deadlock).
        for (name, td) in out.iter_mut() {
            td.rows = self.table_len(name).unwrap_or(0);
        }
        out.into_iter().collect()
    }

    /// `(origin, latest folded seq)` for every remote origin — delta-sync
    /// bookkeeping and test introspection.
    pub fn remote_origins(&self) -> Vec<(u16, u64)> {
        self.remote
            .lock()
            .iter()
            .map(|(&origin, state)| (origin, state.seq))
            .collect()
    }

    /// Bring the snapshot up to date if any recorded or direct mutation
    /// is not yet reflected, without ever blocking on a concurrent
    /// refresher.
    fn sync_snapshot(&self) {
        let behind = !self.queue.is_empty()
            || self.snapshot.load_full().mutations_seen != self.mutations.load(Ordering::Acquire);
        if behind {
            if let Some(_guard) = self.refresh_lock.try_lock() {
                self.refresh_inner();
            }
        }
    }

    /// Bulk-load popularity state: record `units` worth of accesses
    /// against each row, then publish a fresh snapshot.
    ///
    /// This is the warm-start path (§2.3): a deployment that already
    /// knows its popularity distribution — from logs, or a simulation
    /// that would otherwise replay millions of warm-up queries — seeds
    /// the trackers in one call. Counts are applied at the current decay
    /// weight without advancing decay time, exactly like a flushed batch
    /// of coalesced log entries; under no decay (rate `1.0`) the
    /// resulting state is identical to having recorded each access
    /// individually.
    pub fn warm_accesses(&self, table: &str, counts: &[(RowId, f64)], now_secs: f64) {
        if counts.is_empty() {
            return;
        }
        let _refresh = self.refresh_lock.lock();
        // Events already queued precede the warm-start batch.
        self.apply_batch(self.queue.drain());
        {
            let mut guards = self.shard(table).lock();
            let guard = guards
                .entry(table.to_owned())
                .or_insert_with(|| TableGuard::new(&self.config));
            guard.epoch.get_or_insert(now_secs);
            for &(rid, units) in counts {
                guard.access.record_static_weighted(rid.raw(), units);
            }
            guard.dirty = true;
        }
        self.mutations
            .fetch_add(counts.len() as u64, Ordering::Release);
        self.refresh_inner();
    }

    /// Bulk-load *update-rate* state: record `units` worth of update
    /// events against each row, then publish a fresh snapshot — the §3
    /// counterpart of [`Self::warm_accesses`]. A deployment (or a
    /// staleness campaign) that knows its per-tuple update rates seeds
    /// `count_i = rate_i · window` in one call instead of replaying the
    /// whole update history through the write path.
    pub fn warm_updates(&self, table: &str, counts: &[(RowId, f64)], now_secs: f64) {
        if counts.is_empty() {
            return;
        }
        let _refresh = self.refresh_lock.lock();
        self.apply_batch(self.queue.drain());
        {
            let mut guards = self.shard(table).lock();
            let guard = guards
                .entry(table.to_owned())
                .or_insert_with(|| TableGuard::new(&self.config));
            guard.epoch.get_or_insert(now_secs);
            for &(rid, units) in counts {
                guard.updates.record_static_weighted(rid.raw(), units);
            }
            guard.dirty = true;
        }
        self.mutations
            .fetch_add(counts.len() as u64, Ordering::Release);
        self.refresh_inner();
    }

    // ---- inspection (served from the snapshot) --------------------------

    /// The current policy snapshot (an immutable, consistent view; callers
    /// may hold it as long as they like).
    pub fn snapshot(&self) -> Arc<PolicySnapshot> {
        self.snapshot.load_full()
    }

    /// Observability counters for the snapshot machinery.
    pub fn snapshot_stats(&self) -> SnapshotStats {
        let snap = self.snapshot.load_full();
        let now = self.now_secs();
        SnapshotStats {
            version: snap.version,
            built_at_secs: snap.built_at_secs,
            age_secs: (now - snap.built_at_secs).max(0.0),
            pending_events: self.queue.pending(),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            events_applied: self.events_applied.load(Ordering::Relaxed),
        }
    }

    /// The *raw* (unshaped) delay one tuple would currently be charged
    /// (without executing a query) — used by extraction accounting and by
    /// operators inspecting the policy. Exact: folds in any pending
    /// events first. Deliberately pre-[`DelayShaping`](crate::shaping):
    /// this is the Eq. 1 price the closed forms reason about; only the
    /// charge sites (which face the network) speak the shaped schedule.
    pub fn tuple_delay(&self, table: &str, rid: RowId, now: f64) -> Result<f64> {
        let n = self.table_len(table)?;
        self.apply_pending();
        let mut guards = self.shard(table).lock();
        let guard = guards
            .entry(table.to_owned())
            .or_insert_with(|| TableGuard::new(&self.config));
        let window = guard.window(now);
        Ok(self
            .config
            .policy
            .tuple_delay(&guard.access, &guard.updates, n, rid.raw(), window))
    }

    /// The *raw* (unshaped) delay one tuple would be charged *by the
    /// snapshot path right now*, read purely from the current snapshot
    /// (no refresh, no locks): the pre-shaping price a concurrent query
    /// thread would fold (see [`Self::tuple_delay`] on why raw).
    pub fn snapshot_tuple_delay(&self, table: &str, rid: RowId, now: f64) -> Result<f64> {
        let snap = self.snapshot.load_full();
        let stats = match snap.table(table) {
            Some(t) => Arc::clone(t),
            None => empty_table_snapshot(),
        };
        let n = self.table_len(table)? + stats.extra_rows;
        let window = stats.window(now);
        Ok(self
            .config
            .policy
            .tuple_delay(&stats.access, &stats.updates, n, rid.raw(), window))
    }

    /// Popularity rank of a tuple (1 = most popular), if the table has
    /// been observed. Served from the snapshot — concurrent stats traffic
    /// never takes the locks queries' writers use (a stale-but-bounded
    /// answer is refreshed opportunistically, never by blocking).
    pub fn popularity_rank(&self, table: &str, rid: RowId) -> Option<usize> {
        self.sync_snapshot();
        self.snapshot
            .load_full()
            .table(table)
            .map(|t| t.access.rank(rid.raw()))
    }

    /// Every tracked tuple of `table` as `(key, rank)` pairs, sorted by
    /// rank then key (snapshot-served, like [`Self::popularity_rank`]).
    ///
    /// This is the complete rank order the delay policy prices from —
    /// exactly what a timing adversary works to reconstruct — so servers
    /// must never expose it to unauthenticated peers (see the
    /// `stats_expose_popularity` server knob, off by default).
    pub fn popularity_table(&self, table: &str) -> Vec<(u64, usize)> {
        self.sync_snapshot();
        let snap = self.snapshot.load_full();
        let mut pairs: Vec<(u64, usize)> = match snap.table(table) {
            Some(t) => t.access.rank_table().collect(),
            None => return Vec::new(),
        };
        pairs.sort_unstable_by_key(|&(key, rank)| (rank, key));
        pairs
    }

    /// Number of accesses recorded against a table (snapshot-served, like
    /// [`Self::popularity_rank`]).
    pub fn access_events(&self, table: &str) -> u64 {
        self.sync_snapshot();
        self.snapshot
            .load_full()
            .table(table)
            .map(|t| t.access.events())
            .unwrap_or(0)
    }

    /// Sorted names of every table the guard has observed traffic on
    /// (snapshot-served).
    pub fn tables(&self) -> Vec<String> {
        self.sync_snapshot();
        self.snapshot.load_full().table_names()
    }

    fn table_len(&self, table: &str) -> Result<u64> {
        let t = self.engine.catalog().table(table)?;
        let len = t.read().len() as u64;
        Ok(len)
    }

    /// The table's current data version (bumped by every committed row
    /// mutation) — what the `MUTATED` protocol reply reports so clients
    /// can order their view of the data.
    pub fn table_data_version(&self, table: &str) -> Result<u64> {
        let t = self.engine.catalog().table(table)?;
        let version = t.read().data_version();
        Ok(version)
    }
}

/// What a non-SELECT statement records.
#[derive(Clone, Copy)]
enum RowNote {
    Update,
    Insert,
}

/// The table a statement touches, if any.
fn statement_table(stmt: &Statement) -> Option<&str> {
    match stmt {
        Statement::Select { table, .. }
        | Statement::Insert { table, .. }
        | Statement::Update { table, .. }
        | Statement::Delete { table, .. }
        | Statement::CreateIndex { table, .. } => Some(table),
        Statement::CreateTable { name, .. } | Statement::DropTable { name } => Some(name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessDelayPolicy;
    use crate::policy::{ChargingModel, GuardPolicy};
    use crate::snapshot::SnapshotPolicy;
    use crate::update::UpdateDelayPolicy;

    fn setup(policy: GuardPolicy) -> GuardedDatabase {
        let config = GuardConfig {
            policy,
            charging: ChargingModel::PerTupleSum,
            access_decay_rate: 1.0,
            update_decay_rate: 1.0,
            ..GuardConfig::paper_default()
        };
        let db = GuardedDatabase::new(config);
        db.execute_at("CREATE TABLE items (id INT NOT NULL, body TEXT)", 0.0)
            .unwrap();
        db.execute_at("CREATE UNIQUE INDEX items_pk ON items (id)", 0.0)
            .unwrap();
        for i in 0..100 {
            db.execute_at(&format!("INSERT INTO items VALUES ({i}, 'row-{i}')"), 0.0)
                .unwrap();
        }
        db
    }

    fn access_policy() -> GuardPolicy {
        GuardPolicy::AccessRate(AccessDelayPolicy::new(1.0, 1.0).with_cap(10.0))
    }

    #[test]
    fn first_touch_pays_cap_then_popular_gets_fast() {
        let db = setup(access_policy());
        // Start-up: everything at cap.
        let r = db
            .execute_at("SELECT * FROM items WHERE id = 1", 1.0)
            .unwrap();
        assert_eq!(r.delay_secs, 10.0);
        assert_eq!(r.tuples_charged, 1);
        // Hammer tuple 1; its delay collapses.
        for t in 0..200 {
            db.execute_at("SELECT * FROM items WHERE id = 1", 2.0 + t as f64)
                .unwrap();
        }
        let fast = db
            .execute_at("SELECT * FROM items WHERE id = 1", 300.0)
            .unwrap();
        assert!(fast.delay_secs < 0.1, "got {}", fast.delay_secs);
        // An unrequested tuple still pays the cap.
        let slow = db
            .execute_at("SELECT * FROM items WHERE id = 77", 301.0)
            .unwrap();
        assert_eq!(slow.delay_secs, 10.0);
    }

    #[test]
    fn multi_tuple_query_charged_as_aggregate() {
        let db = setup(access_policy());
        let r = db
            .execute_at("SELECT * FROM items WHERE id < 5", 1.0)
            .unwrap();
        assert_eq!(r.tuples_charged, 5);
        assert_eq!(r.delay_secs, 50.0, "5 unknown tuples at the 10s cap");
    }

    #[test]
    fn per_query_max_charging() {
        let config = GuardConfig {
            policy: access_policy(),
            charging: ChargingModel::PerQueryMax,
            access_decay_rate: 1.0,
            update_decay_rate: 1.0,
            ..GuardConfig::paper_default()
        };
        let db = GuardedDatabase::new(config);
        db.execute_at("CREATE TABLE t (id INT)", 0.0).unwrap();
        for i in 0..10 {
            db.execute_at(&format!("INSERT INTO t VALUES ({i})"), 0.0)
                .unwrap();
        }
        let r = db.execute_at("SELECT * FROM t", 1.0).unwrap();
        assert_eq!(r.delay_secs, 10.0, "max, not sum");
    }

    #[test]
    fn update_policy_tracks_update_rates() {
        let db = setup(GuardPolicy::UpdateRate(
            UpdateDelayPolicy::new(1.0).with_cap(10.0),
        ));
        // Update tuple 1 frequently over 100 seconds.
        for t in 0..100 {
            db.execute_at("UPDATE items SET body = 'fresh' WHERE id = 1", t as f64)
                .unwrap();
        }
        let hot = db
            .execute_at("SELECT * FROM items WHERE id = 1", 100.0)
            .unwrap();
        let cold = db
            .execute_at("SELECT * FROM items WHERE id = 50", 100.0)
            .unwrap();
        assert!(hot.delay_secs < 0.1, "hot {}", hot.delay_secs);
        assert_eq!(cold.delay_secs, 10.0, "never-updated pays cap");
    }

    #[test]
    fn none_policy_charges_nothing_but_tracks() {
        let db = setup(GuardPolicy::None);
        let r = db
            .execute_at("SELECT * FROM items WHERE id = 3", 1.0)
            .unwrap();
        assert_eq!(r.delay_secs, 0.0);
        assert_eq!(db.access_events("items"), 1);
    }

    #[test]
    fn popularity_rank_reflects_traffic() {
        let db = setup(access_policy());
        for _ in 0..50 {
            db.execute_at("SELECT * FROM items WHERE id = 9", 1.0)
                .unwrap();
        }
        db.execute_at("SELECT * FROM items WHERE id = 8", 2.0)
            .unwrap();
        // Find rid of tuple 9 via a query.
        let out = db
            .execute_at("SELECT * FROM items WHERE id = 9", 3.0)
            .unwrap();
        let rid = match &out.output {
            StatementOutput::Rows(rows) => rows.rows[0].0,
            other => panic!("{other:?}"),
        };
        assert_eq!(db.popularity_rank("items", rid), Some(1));
    }

    #[test]
    fn non_row_statements_are_free() {
        let db = setup(access_policy());
        let r = db
            .execute_at("DELETE FROM items WHERE id = 99", 1.0)
            .unwrap();
        assert_eq!(r.delay_secs, 0.0);
        let r = db
            .execute_at("INSERT INTO items VALUES (500, 'x')", 1.0)
            .unwrap();
        assert_eq!(r.delay_secs, 0.0);
    }

    #[test]
    fn deadline_api_exposes_per_tuple_schedule() {
        let db = setup(access_policy());
        let r = db
            .execute_with_deadline("SELECT * FROM items WHERE id < 3")
            .unwrap();
        assert_eq!(
            r.tuple_delays,
            vec![10.0, 10.0, 10.0],
            "3 cold tuples at cap"
        );
        // PerTupleSum streams at prefix sums; the query deadline is the sum.
        assert_eq!(r.tuple_offsets, vec![10.0, 20.0, 30.0]);
        assert_eq!(r.delay_secs, 30.0);
        let deadlines: Vec<_> = r.tuple_deadline_nanos().collect();
        assert_eq!(deadlines.len(), 3);
        assert!(deadlines.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*deadlines.last().unwrap(), r.deadline_nanos());
        let summary = r.into_response();
        assert_eq!(summary.tuples_charged, 3);
        assert_eq!(summary.delay_secs, 30.0);
    }

    #[test]
    fn deadline_offsets_under_max_charging() {
        let config = GuardConfig {
            policy: access_policy(),
            charging: ChargingModel::PerQueryMax,
            access_decay_rate: 1.0,
            update_decay_rate: 1.0,
            ..GuardConfig::paper_default()
        };
        let db = GuardedDatabase::new(config);
        db.execute_at("CREATE TABLE t (id INT)", 0.0).unwrap();
        for i in 0..4 {
            db.execute_at(&format!("INSERT INTO t VALUES ({i})"), 0.0)
                .unwrap();
        }
        let r = db.execute_with_deadline("SELECT * FROM t").unwrap();
        // Every tuple releases at its own delay; completion at the max.
        assert_eq!(r.tuple_offsets, r.tuple_delays);
        assert_eq!(r.delay_secs, 10.0);
    }

    #[test]
    fn blocking_wrapper_matches_deadline_path() {
        // Zero-delay policy: the wrapper must not sleep and must agree
        // with the non-blocking result shape.
        let db = setup(GuardPolicy::None);
        let start = db.now_secs();
        let r = db
            .execute_blocking("SELECT * FROM items WHERE id = 1")
            .unwrap();
        assert!(db.now_secs() - start < 1.0);
        assert_eq!(r.delay_secs, 0.0);
        assert_eq!(r.tuples_charged, 1);
    }

    #[test]
    fn deadline_path_reads_injected_clock() {
        use crate::clock::ManualClock;
        use delayguard_query::Engine;
        let clock = ManualClock::shared();
        let config = GuardConfig {
            policy: access_policy(),
            charging: ChargingModel::PerTupleSum,
            access_decay_rate: 1.0,
            update_decay_rate: 1.0,
            ..GuardConfig::paper_default()
        };
        let db = GuardedDatabase::with_engine_and_clock(
            Engine::new(),
            config,
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        db.execute_at("CREATE TABLE t (id INT)", 0.0).unwrap();
        db.execute_at("INSERT INTO t VALUES (1)", 0.0).unwrap();
        clock.advance_to_secs(42.0);
        let r = db.execute_with_deadline("SELECT * FROM t").unwrap();
        assert_eq!(r.issued_at_nanos, secs_to_nanos(42.0));
        assert_eq!(r.delay_secs, 10.0, "cold tuple pays the cap");
        assert_eq!(r.deadline_nanos(), secs_to_nanos(52.0));
        // The blocking wrapper "sleeps" by jumping the manual clock.
        let r2 = db.execute_blocking("SELECT * FROM t").unwrap();
        assert!(db.now_secs() >= 42.0 + r2.delay_secs);
        assert!(r2.delay_secs > 0.0);
    }

    #[test]
    fn warm_accesses_seeds_popularity_in_bulk() {
        let db = setup(access_policy());
        // RowIds for tuples 0..3 via queries (free of recording side
        // effects on ranks large enough to matter).
        let rid_of = |id: i64| {
            let out = db
                .execute_at(&format!("SELECT * FROM items WHERE id = {id}"), 0.5)
                .unwrap();
            match &out.output {
                StatementOutput::Rows(rows) => rows.rows[0].0,
                other => panic!("{other:?}"),
            }
        };
        let (a, b, c) = (rid_of(0), rid_of(1), rid_of(2));
        // A genuinely unwarmed tuple: an INSERT yields the RowId without
        // recording any access (a SELECT here would count one and leak
        // into the refreshed snapshot).
        let out = db
            .execute_at("INSERT INTO items VALUES (100, 'row-100')", 0.6)
            .unwrap();
        let cold_rid = match &out.output {
            StatementOutput::Inserted { rids } => rids[0],
            other => panic!("{other:?}"),
        };
        db.warm_accesses("items", &[(a, 1000.0), (b, 100.0), (c, 10.0)], 1.0);
        assert_eq!(db.popularity_rank("items", a), Some(1));
        assert_eq!(db.popularity_rank("items", b), Some(2));
        assert_eq!(db.popularity_rank("items", c), Some(3));
        // The snapshot was rebuilt inside the call: the snapshot path
        // prices the warmed tuple as popular immediately.
        let fast = db.snapshot_tuple_delay("items", a, 2.0).unwrap();
        let cold = db.snapshot_tuple_delay("items", cold_rid, 2.0).unwrap();
        assert!(fast < cold, "warmed {fast} vs cold {cold}");
        assert_eq!(cold, 10.0, "unwarmed tuple still pays the cap");
    }

    #[test]
    fn warm_updates_seeds_update_rate_in_bulk() {
        let db = setup(GuardPolicy::UpdateRate(
            UpdateDelayPolicy::new(1.0).with_cap(10.0),
        ));
        let out = db
            .execute_at("SELECT * FROM items WHERE id = 1", 0.5)
            .unwrap();
        let hot = match &out.output {
            StatementOutput::Rows(rows) => rows.rows[0].0,
            other => panic!("{other:?}"),
        };
        // Seed 1000 update events' worth of weight in one call — as if
        // tuple 1 had been written ten times a second for the whole
        // 100-second window.
        db.warm_updates("items", &[(hot, 1000.0)], 100.0);
        let fast = db
            .execute_at("SELECT * FROM items WHERE id = 1", 100.0)
            .unwrap();
        let cold = db
            .execute_at("SELECT * FROM items WHERE id = 50", 100.0)
            .unwrap();
        assert!(fast.delay_secs < 0.1, "warmed {}", fast.delay_secs);
        assert_eq!(cold.delay_secs, 10.0, "never-updated pays cap");
    }

    #[test]
    fn deletes_count_as_update_events() {
        let db = setup(GuardPolicy::UpdateRate(
            UpdateDelayPolicy::new(1.0).with_cap(10.0),
        ));
        let out = db
            .execute_at("SELECT * FROM items WHERE id = 7", 0.5)
            .unwrap();
        let rid = match &out.output {
            StatementOutput::Rows(rows) => rows.rows[0].0,
            other => panic!("{other:?}"),
        };
        let before = db.tuple_delay("items", rid, 4.0).unwrap();
        assert_eq!(before, 10.0, "never-mutated tuple at the cap");
        db.execute_at("DELETE FROM items WHERE id = 7", 5.0)
            .unwrap();
        let after = db.tuple_delay("items", rid, 10.0).unwrap();
        assert!(
            after < before,
            "delete recorded as an update event: {after} vs {before}"
        );
    }

    #[test]
    fn table_data_version_reflects_mutations() {
        let db = setup(GuardPolicy::None);
        let v0 = db.table_data_version("items").unwrap();
        db.execute_at("UPDATE items SET body = 'x' WHERE id = 1", 1.0)
            .unwrap();
        assert_eq!(db.table_data_version("items").unwrap(), v0 + 1);
        db.execute_at("DELETE FROM items WHERE id = 2", 2.0)
            .unwrap();
        assert_eq!(db.table_data_version("items").unwrap(), v0 + 2);
        db.execute_at("SELECT * FROM items WHERE id = 3", 3.0)
            .unwrap();
        assert_eq!(
            db.table_data_version("items").unwrap(),
            v0 + 2,
            "reads are free"
        );
        assert!(db.table_data_version("missing").is_err());
    }

    #[test]
    fn errors_propagate() {
        let db = setup(access_policy());
        assert!(db.execute_at("SELECT * FROM missing", 0.0).is_err());
        assert!(db.execute_at("NOT SQL AT ALL", 0.0).is_err());
    }

    #[test]
    fn snapshot_path_records_after_refresh() {
        let db = setup(access_policy());
        // Snapshot path: priced from the (empty) boot snapshot, recorded
        // into the queue.
        let r = db
            .execute_snapshot_at("SELECT * FROM items WHERE id = 5", 1.0)
            .unwrap();
        assert_eq!(r.delay_secs, 10.0, "cold snapshot prices at the cap");
        let before = db.snapshot_stats();
        db.refresh();
        let after = db.snapshot_stats();
        assert!(after.version > before.version);
        assert_eq!(after.pending_events, 0);
        assert_eq!(db.access_events("items"), 1);
        assert!(db.tables().contains(&"items".to_owned()));
    }

    #[test]
    fn snapshot_prices_from_last_epoch_until_refresh() {
        let config = GuardConfig {
            policy: access_policy(),
            // Bounds so loose the test controls every refresh itself.
            snapshot: SnapshotPolicy::new(usize::MAX, 1e9),
            ..GuardConfig::paper_default()
        };
        let db = GuardedDatabase::new(config);
        db.execute_at("CREATE TABLE t (id INT NOT NULL)", 0.0)
            .unwrap();
        db.execute_at("CREATE UNIQUE INDEX t_pk ON t (id)", 0.0)
            .unwrap();
        for i in 0..50 {
            db.execute_at(&format!("INSERT INTO t VALUES ({i})"), 0.0)
                .unwrap();
        }
        // Learn popularity for tuple 1 through the snapshot path.
        for t in 0..100 {
            db.execute_snapshot_at("SELECT * FROM t WHERE id = 1", 1.0 + t as f64)
                .unwrap();
        }
        // Still priced at the cap: the snapshot has not been rebuilt.
        let stale = db
            .execute_snapshot_at("SELECT * FROM t WHERE id = 1", 200.0)
            .unwrap();
        assert_eq!(stale.delay_secs, 10.0);
        db.refresh();
        // One refresh epoch later the learned popularity is visible.
        let fresh = db
            .execute_snapshot_at("SELECT * FROM t WHERE id = 1", 201.0)
            .unwrap();
        assert!(fresh.delay_secs < 0.1, "got {}", fresh.delay_secs);
    }

    #[test]
    fn pending_threshold_triggers_inline_refresh() {
        let config = GuardConfig {
            policy: access_policy(),
            snapshot: SnapshotPolicy::new(10, 1e9),
            ..GuardConfig::paper_default()
        };
        let db = GuardedDatabase::new(config);
        db.execute_at("CREATE TABLE t (id INT NOT NULL)", 0.0)
            .unwrap();
        db.execute_at("CREATE UNIQUE INDEX t_pk ON t (id)", 0.0)
            .unwrap();
        for i in 0..20 {
            db.execute_at(&format!("INSERT INTO t VALUES ({i})"), 0.0)
                .unwrap();
        }
        for t in 0..50 {
            db.execute_snapshot_at("SELECT * FROM t WHERE id = 1", 1.0 + t as f64)
                .unwrap();
        }
        let stats = db.snapshot_stats();
        assert!(
            stats.rebuilds >= 4,
            "50 single-row queries over a 10-event bound: got {} rebuilds",
            stats.rebuilds
        );
        assert!(stats.pending_events < 10);
    }

    #[test]
    fn mixed_paths_stay_consistent() {
        // Sequential traffic, then snapshot traffic, then a sequential
        // query again: the locked path must fold queued events in before
        // computing, so totals line up.
        let db = setup(access_policy());
        for _ in 0..5 {
            db.execute_at("SELECT * FROM items WHERE id = 2", 1.0)
                .unwrap();
        }
        for _ in 0..5 {
            db.execute_snapshot_at("SELECT * FROM items WHERE id = 2", 2.0)
                .unwrap();
        }
        // The locked path applies the 5 queued events before recording
        // its own, so the master tracker now holds 11.
        db.execute_at("SELECT * FROM items WHERE id = 2", 3.0)
            .unwrap();
        assert_eq!(db.access_events("items"), 11);
    }

    #[test]
    fn online_offset_fold_matches_release_offsets() {
        // The streaming path folds release offsets online as chunks are
        // charged; the batch reference computes them from the full delay
        // vector. One tuple per chunk is the adversarial chunking — the
        // fold state crosses every chunk boundary — and the results must
        // still be bit-identical under both charging models.
        for charging in [ChargingModel::PerTupleSum, ChargingModel::PerQueryMax] {
            let config = GuardConfig {
                policy: access_policy(),
                charging,
                ..GuardConfig::paper_default()
            };
            let db = GuardedDatabase::new(config);
            db.execute_at("CREATE TABLE items (id INT NOT NULL, body TEXT)", 0.0)
                .unwrap();
            for i in 0..8 {
                db.execute_at(&format!("INSERT INTO items VALUES ({i}, 'row-{i}')"), 0.0)
                    .unwrap();
            }
            // Skew the popularity so delays are not all equal.
            for _ in 0..50 {
                db.execute_at("SELECT * FROM items WHERE id = 3", 1.0)
                    .unwrap();
            }
            let (delays, offsets, total) = db
                .execute_streaming("SELECT * FROM items", |query| match query {
                    StreamedQuery::Rows(mut stream) => {
                        let mut delays = Vec::new();
                        let mut offsets = Vec::new();
                        while let Some(chunk) = stream.next_chunk(1).unwrap() {
                            let charged = stream.charge(&chunk);
                            delays.extend(charged.delays);
                            offsets.extend(charged.offsets);
                        }
                        (delays, offsets, stream.delay_secs())
                    }
                    StreamedQuery::Finished(_) => panic!("expected rows"),
                })
                .unwrap();
            let reference = release_offsets(charging, &delays);
            let bits = |v: &[f64]| v.iter().map(|d| d.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&offsets), bits(&reference), "{charging:?}");
            assert_eq!(
                total.to_bits(),
                config.charging.combine(delays.iter().copied()).to_bits(),
                "{charging:?}: combined total"
            );
        }
    }

    #[test]
    fn prepared_snapshot_path_matches_adhoc_bit_for_bit() {
        // Traffic → refresh → the snapshot carries a packed access table.
        // The prepared fast path (packed pricing, recycled buffers) must
        // return the same rows and bit-identical delays as the ad-hoc
        // snapshot path, and keep recording accesses.
        let config = GuardConfig {
            policy: access_policy(),
            charging: ChargingModel::PerTupleSum,
            access_decay_rate: 1.0,
            update_decay_rate: 1.0,
            read_path: ReadPath::Snapshot,
            // The test drives every rebuild itself so both executions are
            // guaranteed to price from the same snapshot generation.
            snapshot: SnapshotPolicy::new(usize::MAX, 1e9),
            ..GuardConfig::paper_default()
        };
        let db = GuardedDatabase::new(config);
        db.execute_at("CREATE TABLE items (id INT NOT NULL, body TEXT)", 0.0)
            .unwrap();
        db.execute_at("CREATE UNIQUE INDEX items_pk ON items (id)", 0.0)
            .unwrap();
        for i in 0..64 {
            db.execute_at(&format!("INSERT INTO items VALUES ({i}, 'row-{i}')"), 0.0)
                .unwrap();
        }
        for _ in 0..40 {
            db.execute_with_deadline("SELECT * FROM items WHERE id = 7")
                .unwrap();
        }
        db.refresh();
        let snap = db.snapshot();
        assert!(
            snap.table("items").unwrap().packed_access.is_some(),
            "access-rate policy must publish a packed table"
        );

        let sql = "SELECT * FROM items WHERE id >= 4 AND id < 12";
        let mut prep = db.prepare(sql).unwrap();
        assert_eq!(prep.table(), "items");
        let mut scratch = ExecScratch::new();
        let mut buf = RowBuf::new();
        let mut charged = ChargedChunk {
            delays: Vec::new(),
            offsets: Vec::new(),
        };
        let events_before = db.access_events("items");
        for _ in 0..3 {
            let reference = db.execute_with_deadline(sql).unwrap();
            let (rows, delays, offsets) = db
                .execute_prepared_streaming(&mut prep, &mut scratch, |mut stream| {
                    let mut rows = Vec::new();
                    let mut delays = Vec::new();
                    let mut offsets = Vec::new();
                    loop {
                        let filled = stream.next_chunk_into(4, &mut buf).unwrap();
                        if filled == 0 {
                            break;
                        }
                        stream.charge_into(buf.rows(), &mut charged);
                        delays.extend_from_slice(&charged.delays);
                        offsets.extend_from_slice(&charged.offsets);
                        rows.extend(buf.rows().iter().cloned());
                    }
                    (rows, delays, offsets)
                })
                .unwrap();
            let ref_rows = match &reference.output {
                StatementOutput::Rows(out) => &out.rows,
                other => panic!("{other:?}"),
            };
            assert_eq!(&rows, ref_rows);
            let bits = |v: &[f64]| v.iter().map(|d| d.to_bits()).collect::<Vec<_>>();
            // Both executions saw the same snapshot generation (refreshes
            // only fire on the staleness bounds, far above this traffic),
            // so delays and offsets must agree to the bit.
            assert_eq!(bits(&delays), bits(&reference.tuple_delays));
            assert_eq!(bits(&offsets), bits(&reference.tuple_offsets));
        }
        db.refresh();
        assert!(
            db.access_events("items") >= events_before + 48,
            "prepared path must keep recording accesses"
        );
    }

    // ---- cluster replication -------------------------------------------

    use crate::gatekeeper::GateDelta;
    use crate::replica::is_remote_key;

    fn replica_node(rows: u64) -> GuardedDatabase {
        let config = GuardConfig {
            policy: access_policy(),
            charging: ChargingModel::PerTupleSum,
            access_decay_rate: 1.0,
            update_decay_rate: 1.0,
            ..GuardConfig::paper_default()
        };
        let db = GuardedDatabase::new(config);
        db.execute_at("CREATE TABLE d (id INT NOT NULL, v TEXT)", 0.0)
            .unwrap();
        for i in 0..rows {
            db.execute_at(&format!("INSERT INTO d VALUES ({i}, 'r')"), 0.0)
                .unwrap();
        }
        db
    }

    fn delta_from(db: &GuardedDatabase, origin: u16, seq: u64) -> ReplicaDelta {
        ReplicaDelta {
            origin,
            seq,
            tables: db.export_table_deltas(),
            gate: GateDelta {
                origin,
                users: Vec::new(),
                subnets: Vec::new(),
            },
        }
    }

    #[test]
    fn replica_delta_folds_remote_popularity_under_tagged_keys() {
        let a = replica_node(10);
        let b = replica_node(6);
        // Node B's row 2 is the cluster's hottest tuple.
        for t in 0..60 {
            b.execute_at("SELECT * FROM d WHERE id = 2", 1.0 + t as f64)
                .unwrap();
        }
        // A has lighter local traffic on row 0.
        for t in 0..5 {
            a.execute_at("SELECT * FROM d WHERE id = 0", 1.0 + t as f64)
                .unwrap();
        }
        let delta = delta_from(&b, 2, 1);
        assert!(a.apply_replica_delta(&delta), "first application is new");
        assert!(!a.apply_replica_delta(&delta), "same seq is a no-op");
        assert_eq!(a.remote_origins(), vec![(2, 1)]);

        let snap = a.snapshot();
        let t = snap.table("d").expect("merged table published");
        assert_eq!(t.extra_rows, 6, "global n carries B's rows");
        // B's hot row ranks first in A's merged view, under a tagged key.
        let (hot_key, _) = delta.tables[0]
            .1
            .accesses
            .iter()
            .copied()
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .unwrap();
        assert!(!is_remote_key(hot_key), "export keys are raw");
        assert_eq!(t.access.rank(tag_remote_key(2, hot_key)), 1);
        assert!(
            t.access.rank(tag_remote_key(2, hot_key))
                < a.popularity_rank("d", RowId::from_raw(hot_key)).unwrap(),
            "A's local row with the same raw key is a different tuple"
        );
    }

    #[test]
    fn replica_delta_rejects_stale_and_duplicate_seqs() {
        let a = replica_node(4);
        let b = replica_node(4);
        b.execute_at("SELECT * FROM d WHERE id = 1", 1.0).unwrap();
        let newer = delta_from(&b, 7, 3);
        b.execute_at("SELECT * FROM d WHERE id = 2", 2.0).unwrap();
        let even_newer = delta_from(&b, 7, 4);
        assert!(a.apply_replica_delta(&even_newer));
        assert!(!a.apply_replica_delta(&newer), "older seq discarded");
        assert_eq!(a.remote_origins(), vec![(7, 4)]);
        let snap = a.snapshot();
        let t = snap.table("d").unwrap();
        // The seq-4 state (which saw both accesses) is what's folded.
        assert!(
            t.access
                .contains(tag_remote_key(7, RowId::from_raw(2).raw()))
                || {
                    // Row ids are engine-assigned; resolve via the delta instead.
                    even_newer.tables[0]
                        .1
                        .accesses
                        .iter()
                        .all(|&(k, _)| t.access.contains(tag_remote_key(7, k)))
                }
        );
    }

    #[test]
    fn replica_application_commutes_and_converges_bit_identically() {
        let mk_receiver = || {
            let db = replica_node(8);
            for t in 0..10 {
                db.execute_at("SELECT * FROM d WHERE id = 3", 1.0 + t as f64)
                    .unwrap();
            }
            db
        };
        let b = replica_node(5);
        for t in 0..20 {
            b.execute_at("SELECT * FROM d WHERE id = 1", 1.0 + t as f64)
                .unwrap();
        }
        let c = replica_node(3);
        for t in 0..7 {
            c.execute_at("SELECT * FROM d WHERE id = 0", 1.0 + t as f64)
                .unwrap();
        }
        let db_delta = delta_from(&b, 2, 1);
        let dc_delta = delta_from(&c, 3, 1);

        let first = mk_receiver();
        first.apply_replica_delta(&db_delta);
        first.apply_replica_delta(&dc_delta);
        first.apply_replica_delta(&db_delta); // replay

        let second = mk_receiver();
        second.apply_replica_delta(&dc_delta);
        second.apply_replica_delta(&db_delta);

        let (s1, s2) = (first.snapshot(), second.snapshot());
        let (t1, t2) = (s1.table("d").unwrap(), s2.table("d").unwrap());
        assert_eq!(t1.extra_rows, t2.extra_rows);
        let bits = |v: Vec<(u64, f64)>| {
            v.into_iter()
                .map(|(k, c)| (k, c.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            bits(t1.access.export_counts()),
            bits(t2.access.export_counts()),
            "merged trackers are bit-identical regardless of arrival order"
        );
        assert_eq!(t1.access.fmax().to_bits(), t2.access.fmax().to_bits());
    }

    #[test]
    fn snapshot_pricing_uses_global_cardinality() {
        let a = replica_node(10);
        for t in 0..100 {
            a.execute_at("SELECT * FROM d WHERE id = 1", 1.0 + t as f64)
                .unwrap();
        }
        a.refresh();
        // Find the hot row's rid from the local export (rank 1).
        let export = a.export_table_deltas();
        let (hot_key, _) = export[0]
            .1
            .accesses
            .iter()
            .copied()
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .unwrap();
        let rid = RowId::from_raw(hot_key);
        let before = a.snapshot_tuple_delay("d", rid, 200.0).unwrap();
        assert!(before < 10.0, "hot row prices below the cap");
        // A peer holding 30 rows (no traffic yet) only grows `n`.
        let delta = ReplicaDelta {
            origin: 9,
            seq: 1,
            tables: vec![(
                "d".to_owned(),
                TableDelta {
                    rows: 30,
                    ..TableDelta::default()
                },
            )],
            gate: GateDelta {
                origin: 9,
                users: Vec::new(),
                subnets: Vec::new(),
            },
        };
        assert!(a.apply_replica_delta(&delta));
        let after = a.snapshot_tuple_delay("d", rid, 200.0).unwrap();
        // d(i) = i^(α+β)/(n·fmax): same rank, same fmax, n goes 10 → 40.
        assert!(
            (after * 4.0 - before).abs() <= 1e-12 * before.max(1.0),
            "expected exactly before/4, got before={before} after={after}"
        );
    }
}
