//! The guarded database: the paper's scheme wrapped around the engine.
//!
//! [`GuardedDatabase`] executes SQL through [`delayguard_query::Engine`]
//! and, for every *returned tuple*, (a) charges a delay according to the
//! configured [`GuardPolicy`] and (b) records the access in the table's
//! popularity tracker. Updates feed the update-rate tracker; inserts
//! pre-register tuples at zero popularity (start-up transient, §2.3).
//!
//! The computed delay is *returned*, not slept, so simulations can account
//! years of adversary delay instantly; [`GuardedDatabase::execute_blocking`]
//! actually sleeps for deployments.

use crate::config::GuardConfig;
use crate::error::Result;
use delayguard_popularity::{DecaySchedule, FrequencyTracker};
use delayguard_query::{parse, Engine, StatementOutput};
use delayguard_query::ast::Statement;
use delayguard_storage::RowId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::Instant;

/// Per-table guard state.
struct TableGuard {
    access: FrequencyTracker,
    updates: FrequencyTracker,
    /// Virtual time when this table first came under observation; the
    /// update-rate window is measured from here.
    epoch: Option<f64>,
}

impl TableGuard {
    fn new(config: &GuardConfig) -> TableGuard {
        TableGuard {
            access: FrequencyTracker::new(DecaySchedule::new(config.access_decay_rate)),
            updates: FrequencyTracker::new(DecaySchedule::new(config.update_decay_rate)),
            epoch: None,
        }
    }

    fn window(&self, now: f64) -> f64 {
        match self.epoch {
            Some(e) => (now - e).max(1e-9),
            None => 1e-9,
        }
    }
}

/// Outcome of a guarded statement.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardedResponse {
    /// The engine's output (rows, affected RowIds, ...).
    pub output: StatementOutput,
    /// Total delay charged to this statement, in seconds.
    pub delay_secs: f64,
    /// How many tuples contributed to the delay.
    pub tuples_charged: usize,
}

/// A database whose front door is defended by delay.
pub struct GuardedDatabase {
    engine: Engine,
    config: GuardConfig,
    guards: Mutex<HashMap<String, TableGuard>>,
    started: Instant,
}

impl GuardedDatabase {
    /// A guarded database over a fresh engine.
    pub fn new(config: GuardConfig) -> GuardedDatabase {
        GuardedDatabase::with_engine(Engine::new(), config)
    }

    /// Guard an existing engine (e.g. with pre-loaded data).
    pub fn with_engine(engine: Engine, config: GuardConfig) -> GuardedDatabase {
        GuardedDatabase {
            engine,
            config,
            guards: Mutex::new(HashMap::new()),
            started: Instant::now(),
        }
    }

    /// The underlying engine (unguarded access for administration).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The guard configuration.
    pub fn config(&self) -> &GuardConfig {
        &self.config
    }

    /// Execute at an explicit virtual time (simulation entry point).
    pub fn execute_at(&self, sql: &str, now_secs: f64) -> Result<GuardedResponse> {
        let stmt = parse(sql)?;
        self.execute_stmt_at(&stmt, now_secs)
    }

    /// Execute a pre-parsed statement at a virtual time.
    pub fn execute_stmt_at(&self, stmt: &Statement, now_secs: f64) -> Result<GuardedResponse> {
        let output = self.engine.execute_stmt(stmt)?;
        let table = statement_table(stmt);
        let (delay_secs, tuples_charged) = match (&output, table) {
            (StatementOutput::Rows(rows), Some(table)) => {
                self.charge_select(table, rows.row_ids(), now_secs)?
            }
            (StatementOutput::Updated { rids }, Some(table)) => {
                self.note_updates(table, rids, now_secs);
                (0.0, 0)
            }
            (StatementOutput::Inserted { rids }, Some(table)) => {
                self.note_inserts(table, rids, now_secs);
                (0.0, 0)
            }
            _ => (0.0, 0),
        };
        Ok(GuardedResponse {
            output,
            delay_secs,
            tuples_charged,
        })
    }

    /// Execute using wall-clock time since the guard was created.
    pub fn execute(&self, sql: &str) -> Result<GuardedResponse> {
        self.execute_at(sql, self.started.elapsed().as_secs_f64())
    }

    /// Execute and actually sleep for the computed delay (deployment mode).
    pub fn execute_blocking(&self, sql: &str) -> Result<GuardedResponse> {
        let resp = self.execute(sql)?;
        if resp.delay_secs > 0.0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(resp.delay_secs));
        }
        Ok(resp)
    }

    /// Compute (and charge) the delay for a set of returned tuples, then
    /// record their accesses.
    fn charge_select(
        &self,
        table: &str,
        rids: impl Iterator<Item = RowId>,
        now: f64,
    ) -> Result<(f64, usize)> {
        let n = self.table_len(table)?;
        let mut guards = self.guards.lock();
        let guard = guards
            .entry(table.to_owned())
            .or_insert_with(|| TableGuard::new(&self.config));
        guard.epoch.get_or_insert(now);
        let window = guard.window(now);
        let mut delays = Vec::new();
        for rid in rids {
            let key = rid.raw();
            // Delay reflects popularity *before* this access.
            let d = self.config.policy.tuple_delay(
                &guard.access,
                &guard.updates,
                n,
                key,
                window,
            );
            delays.push(d);
            guard.access.record(key);
        }
        let total = self.config.charging.combine(delays.iter().copied());
        Ok((total, delays.len()))
    }

    fn note_updates(&self, table: &str, rids: &[RowId], now: f64) {
        let mut guards = self.guards.lock();
        let guard = guards
            .entry(table.to_owned())
            .or_insert_with(|| TableGuard::new(&self.config));
        guard.epoch.get_or_insert(now);
        for rid in rids {
            guard.updates.record(rid.raw());
        }
    }

    fn note_inserts(&self, table: &str, rids: &[RowId], now: f64) {
        let mut guards = self.guards.lock();
        let guard = guards
            .entry(table.to_owned())
            .or_insert_with(|| TableGuard::new(&self.config));
        guard.epoch.get_or_insert(now);
        for rid in rids {
            guard.access.ensure_tracked(rid.raw());
        }
    }

    /// The delay one tuple would currently be charged (without executing a
    /// query) — used by extraction accounting and by operators inspecting
    /// the policy.
    pub fn tuple_delay(&self, table: &str, rid: RowId, now: f64) -> Result<f64> {
        let n = self.table_len(table)?;
        let mut guards = self.guards.lock();
        let guard = guards
            .entry(table.to_owned())
            .or_insert_with(|| TableGuard::new(&self.config));
        let window = guard.window(now);
        Ok(self
            .config
            .policy
            .tuple_delay(&guard.access, &guard.updates, n, rid.raw(), window))
    }

    /// Popularity rank of a tuple (1 = most popular), if the table has been
    /// observed.
    pub fn popularity_rank(&self, table: &str, rid: RowId) -> Option<usize> {
        let guards = self.guards.lock();
        guards.get(table).map(|g| g.access.rank(rid.raw()))
    }

    /// Number of accesses recorded against a table.
    pub fn access_events(&self, table: &str) -> u64 {
        let guards = self.guards.lock();
        guards.get(table).map(|g| g.access.events()).unwrap_or(0)
    }

    fn table_len(&self, table: &str) -> Result<u64> {
        let t = self.engine.catalog().table(table)?;
        let len = t.read().len() as u64;
        Ok(len)
    }
}

/// The table a statement touches, if any.
fn statement_table(stmt: &Statement) -> Option<&str> {
    match stmt {
        Statement::Select { table, .. }
        | Statement::Insert { table, .. }
        | Statement::Update { table, .. }
        | Statement::Delete { table, .. }
        | Statement::CreateIndex { table, .. } => Some(table),
        Statement::CreateTable { name, .. } | Statement::DropTable { name } => Some(name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessDelayPolicy;
    use crate::policy::{ChargingModel, GuardPolicy};
    use crate::update::UpdateDelayPolicy;

    fn setup(policy: GuardPolicy) -> GuardedDatabase {
        let config = GuardConfig {
            policy,
            charging: ChargingModel::PerTupleSum,
            access_decay_rate: 1.0,
            update_decay_rate: 1.0,
        };
        let db = GuardedDatabase::new(config);
        db.execute_at("CREATE TABLE items (id INT NOT NULL, body TEXT)", 0.0)
            .unwrap();
        db.execute_at("CREATE UNIQUE INDEX items_pk ON items (id)", 0.0)
            .unwrap();
        for i in 0..100 {
            db.execute_at(&format!("INSERT INTO items VALUES ({i}, 'row-{i}')"), 0.0)
                .unwrap();
        }
        db
    }

    fn access_policy() -> GuardPolicy {
        GuardPolicy::AccessRate(AccessDelayPolicy::new(1.0, 1.0).with_cap(10.0))
    }

    #[test]
    fn first_touch_pays_cap_then_popular_gets_fast() {
        let db = setup(access_policy());
        // Start-up: everything at cap.
        let r = db
            .execute_at("SELECT * FROM items WHERE id = 1", 1.0)
            .unwrap();
        assert_eq!(r.delay_secs, 10.0);
        assert_eq!(r.tuples_charged, 1);
        // Hammer tuple 1; its delay collapses.
        for t in 0..200 {
            db.execute_at("SELECT * FROM items WHERE id = 1", 2.0 + t as f64)
                .unwrap();
        }
        let fast = db
            .execute_at("SELECT * FROM items WHERE id = 1", 300.0)
            .unwrap();
        assert!(fast.delay_secs < 0.1, "got {}", fast.delay_secs);
        // An unrequested tuple still pays the cap.
        let slow = db
            .execute_at("SELECT * FROM items WHERE id = 77", 301.0)
            .unwrap();
        assert_eq!(slow.delay_secs, 10.0);
    }

    #[test]
    fn multi_tuple_query_charged_as_aggregate() {
        let db = setup(access_policy());
        let r = db
            .execute_at("SELECT * FROM items WHERE id < 5", 1.0)
            .unwrap();
        assert_eq!(r.tuples_charged, 5);
        assert_eq!(r.delay_secs, 50.0, "5 unknown tuples at the 10s cap");
    }

    #[test]
    fn per_query_max_charging() {
        let config = GuardConfig {
            policy: access_policy(),
            charging: ChargingModel::PerQueryMax,
            access_decay_rate: 1.0,
            update_decay_rate: 1.0,
        };
        let db = GuardedDatabase::new(config);
        db.execute_at("CREATE TABLE t (id INT)", 0.0).unwrap();
        for i in 0..10 {
            db.execute_at(&format!("INSERT INTO t VALUES ({i})"), 0.0)
                .unwrap();
        }
        let r = db.execute_at("SELECT * FROM t", 1.0).unwrap();
        assert_eq!(r.delay_secs, 10.0, "max, not sum");
    }

    #[test]
    fn update_policy_tracks_update_rates() {
        let db = setup(GuardPolicy::UpdateRate(
            UpdateDelayPolicy::new(1.0).with_cap(10.0),
        ));
        // Update tuple 1 frequently over 100 seconds.
        for t in 0..100 {
            db.execute_at(
                "UPDATE items SET body = 'fresh' WHERE id = 1",
                t as f64,
            )
            .unwrap();
        }
        let hot = db
            .execute_at("SELECT * FROM items WHERE id = 1", 100.0)
            .unwrap();
        let cold = db
            .execute_at("SELECT * FROM items WHERE id = 50", 100.0)
            .unwrap();
        assert!(hot.delay_secs < 0.1, "hot {}", hot.delay_secs);
        assert_eq!(cold.delay_secs, 10.0, "never-updated pays cap");
    }

    #[test]
    fn none_policy_charges_nothing_but_tracks() {
        let db = setup(GuardPolicy::None);
        let r = db
            .execute_at("SELECT * FROM items WHERE id = 3", 1.0)
            .unwrap();
        assert_eq!(r.delay_secs, 0.0);
        assert_eq!(db.access_events("items"), 1);
    }

    #[test]
    fn popularity_rank_reflects_traffic() {
        let db = setup(access_policy());
        for _ in 0..50 {
            db.execute_at("SELECT * FROM items WHERE id = 9", 1.0).unwrap();
        }
        db.execute_at("SELECT * FROM items WHERE id = 8", 2.0).unwrap();
        // Find rid of tuple 9 via a query.
        let out = db
            .execute_at("SELECT * FROM items WHERE id = 9", 3.0)
            .unwrap();
        let rid = match &out.output {
            StatementOutput::Rows(rows) => rows.rows[0].0,
            other => panic!("{other:?}"),
        };
        assert_eq!(db.popularity_rank("items", rid), Some(1));
    }

    #[test]
    fn non_row_statements_are_free() {
        let db = setup(access_policy());
        let r = db
            .execute_at("DELETE FROM items WHERE id = 99", 1.0)
            .unwrap();
        assert_eq!(r.delay_secs, 0.0);
        let r = db.execute_at("INSERT INTO items VALUES (500, 'x')", 1.0).unwrap();
        assert_eq!(r.delay_secs, 0.0);
    }

    #[test]
    fn errors_propagate() {
        let db = setup(access_policy());
        assert!(db.execute_at("SELECT * FROM missing", 0.0).is_err());
        assert!(db.execute_at("NOT SQL AT ALL", 0.0).is_err());
    }
}
